//! Offline functional stub of the `rand_distr` surface this workspace
//! uses: `Distribution`, Box–Muller `Normal<f32>`, and `StandardNormal`.
//! `f32` impls only — an `f64` impl makes `Normal::new(0.0, 1.0)` callers
//! ambiguous.

use rand::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

fn unit_open_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // (0, 1]: never zero, so ln() below is finite.
    (((rng.next_u64() >> 40) + 1) as f32) / (1u64 << 24) as f32
}

fn box_muller<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    let u1 = unit_open_f32(rng);
    let u2 = unit_open_f32(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[derive(Debug, Clone, Copy)]
pub struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        box_muller(rng)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Normal<T> {
    mean: T,
    std: T,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for Error {}

impl Normal<f32> {
    pub fn new(mean: f32, std: f32) -> Result<Self, Error> {
        if std.is_finite() && std >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f32> for Normal<f32> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        self.mean + self.std * box_muller(rng)
    }
}
