//! Typecheck-only stub of the `criterion` surface the kernel benches use.
//! `cargo bench --no-run` compiles against this; each closure is invoked
//! once if a bench binary is ever actually executed.

pub struct Criterion {
    _priv: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _priv: () }
    }
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup {
        BenchmarkGroup
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<D: std::fmt::Display>(_name: &str, _param: D) -> Self {
        BenchmarkId
    }

    pub fn from_parameter<D: std::fmt::Display>(_param: D) -> Self {
        BenchmarkId
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
