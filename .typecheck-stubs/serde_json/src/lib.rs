//! Typecheck-only stub of the `serde_json` surface this workspace uses.
//! Every body panics: JSON paths are unreachable offline, and a loud
//! panic beats silently wrong data.

#[derive(Debug, Clone)]
pub struct Value;

impl Value {
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        unimplemented!("serde_json stub")
    }
}

#[derive(Debug, Clone)]
pub struct Map<K, V> {
    _marker: std::marker::PhantomData<(K, V)>,
}

impl Map<String, Value> {
    pub fn remove(&mut self, _key: &str) -> Option<Value> {
        unimplemented!("serde_json stub")
    }
}

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>> {
    unimplemented!("serde_json stub")
}

pub fn from_str<T: serde::de::DeserializeOwned>(_s: &str) -> Result<T> {
    unimplemented!("serde_json stub")
}

pub fn from_slice<T: serde::de::DeserializeOwned>(_bytes: &[u8]) -> Result<T> {
    unimplemented!("serde_json stub")
}

pub fn from_value<T: serde::de::DeserializeOwned>(_value: Value) -> Result<T> {
    unimplemented!("serde_json stub")
}
