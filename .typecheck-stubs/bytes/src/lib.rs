//! Offline functional stub of the `bytes` surface this workspace uses:
//! a real `Vec<u8>`-backed `BytesMut` plus the `Buf`/`BufMut` methods the
//! persistence/codec layers call. Semantics match `bytes` for these
//! methods (little-endian accessors, panic on underflow).

use std::ops::{Deref, DerefMut};

#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f32_le(&mut self, v: f32);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        let v = u32::from_le_bytes(head.try_into().unwrap());
        *self = tail;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        let v = u64::from_le_bytes(head.try_into().unwrap());
        *self = tail;
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}
