//! Typecheck-only stub of `proptest`: the `proptest!` macro swallows its
//! body, so property tests compile to nothing offline (they neither run
//! nor fail).

#[macro_export]
macro_rules! proptest {
    ($($tokens:tt)*) => {};
}

pub mod prelude {
    pub use crate::proptest;
}
