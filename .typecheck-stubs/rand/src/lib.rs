//! Offline functional stub of the `rand` 0.8 surface this workspace uses.
//! Deterministic splitmix64 core; NOT the real rand stream (tests that pin
//! exact rand sequences will differ).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
