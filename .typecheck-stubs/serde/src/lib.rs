//! Typecheck-only stub of the `serde` surface this workspace uses:
//! blanket-implemented `Serialize`/`Deserialize` traits plus no-op derive
//! macros. Serialization itself lives in the `serde_json` stub, which
//! panics if actually invoked.

pub use serde_derive_stub::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
}
