//! No-op `Serialize`/`Deserialize` derives (the serde stub's blanket
//! impls provide the trait coverage; these just accept the derive syntax
//! and `#[serde(...)]` attributes).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
