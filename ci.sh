#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repo root.
#
# The test suite runs twice — serial (LT_THREADS=1) and parallel
# (LT_THREADS=4) — because every lt-runtime kernel must be bitwise
# deterministic with respect to the thread count; a result that differs
# between the two runs is a determinism bug, not flakiness.
set -euo pipefail

cargo build --release
LT_THREADS=1 cargo test -q
LT_THREADS=4 cargo test -q
cargo clippy --all-targets -- -D warnings
