#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repo root.
#
# The test suite runs twice — serial (LT_THREADS=1) and parallel
# (LT_THREADS=4) — because every lt-runtime kernel must be bitwise
# deterministic with respect to the thread count; a result that differs
# between the two runs is a determinism bug, not flakiness.
set -euo pipefail

cargo build --release
LT_THREADS=1 cargo test -q
LT_THREADS=4 cargo test -q
cargo clippy --all-targets -- -D warnings

# Benchmarks must keep compiling even when they are not run.
cargo bench --no-run --workspace

# Smoke the ADC benchmark runner on a tiny grid. Writes under target/ so
# the tracked baseline (BENCH_adc.json, full grid) is never overwritten by
# smoke numbers — regenerate that one deliberately with
# `cargo run -p lt-bench --release -- adc`.
cargo run -p lt-bench --release -- adc --smoke --out target/BENCH_adc_smoke.json
