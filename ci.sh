#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repo root.
set -euo pipefail

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
