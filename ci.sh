#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repo root.
#
# The test suite runs twice — serial (LT_THREADS=1) and parallel
# (LT_THREADS=4) — because every lt-runtime kernel must be bitwise
# deterministic with respect to the thread count; a result that differs
# between the two runs is a determinism bug, not flakiness. The two runs
# double as the scan-backend matrix: tests/scan_engine.rs pins the u8
# backend (full-rerank bitwise identity, recall@10, shard x thread
# invariance) at both widths.
set -euo pipefail

cargo build --release --workspace
LT_THREADS=1 cargo test -q
LT_THREADS=4 cargo test -q
cargo clippy --all-targets -- -D warnings

# Benchmarks must keep compiling even when they are not run.
cargo bench --no-run --workspace

# Smoke the ADC benchmark runner on a tiny grid. Writes under target/ so
# the tracked baseline (BENCH_adc.json, full grid) is never overwritten by
# smoke numbers — regenerate that one deliberately with
# `cargo run -p lt-bench --release -- adc`.
cargo run -p lt-bench --release -- adc --smoke --out target/BENCH_adc_smoke.json
# The smoke grid must measure the quantized engine alongside f32.
grep -q '"engine_u8_scan_items_per_s"' target/BENCH_adc_smoke.json
grep -q '"u8_recall_at_10"' target/BENCH_adc_smoke.json
# ... and trace the coarse-routing frontier (nprobe sweep) with its
# throughput and tail-recall columns.
grep -q '"routed_scan_items_per_s"' target/BENCH_adc_smoke.json
grep -q '"routed_recall_at_10"' target/BENCH_adc_smoke.json
grep -q '"routed_tail_recall_at_10"' target/BENCH_adc_smoke.json

# Serving smoke: synthesize a small index image, serve it in the
# background (with a JSONL event trace), run a
# stats/upsert/search/metrics/snapshot round trip over TCP through the CLI
# client, then stop the server with a shutdown request and wait for a
# clean exit. (The serve load benchmark below covers batching throughput;
# this covers the CLI wiring end to end.) `query --metrics --check` exits
# nonzero unless the server recorded at least one search and its
# service-time quantiles are finite with p50 <= p95 <= p99.
SMOKE_DIR=target/serve_smoke
SERVE_ADDR=127.0.0.1:17893
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
cargo run --release --example synth_index -- \
  --out "$SMOKE_DIR/index.bin" --n 500 --m 3 --k 32 --d 8
target/release/lightlt serve --index "$SMOKE_DIR/index.bin" \
  --addr "$SERVE_ADDR" --snapshot "$SMOKE_DIR/live.snap" \
  --events "$SMOKE_DIR/events.jsonl" &
SERVE_PID=$!
target/release/lightlt query --addr "$SERVE_ADDR" --op stats
target/release/lightlt query --addr "$SERVE_ADDR" --op upsert --dim 8 \
  --vector "0.1,0.2,-0.1,0.3,0.0,-0.2,0.1,0.4"
target/release/lightlt query --addr "$SERVE_ADDR" --op search --k 5 \
  --vector "0.1,0.2,-0.1,0.3,0.0,-0.2,0.1,0.4"
target/release/lightlt query --addr "$SERVE_ADDR" --metrics --check
target/release/lightlt query --addr "$SERVE_ADDR" --op snapshot
target/release/lightlt query --addr "$SERVE_ADDR" --op shutdown
wait "$SERVE_PID"
test -f "$SMOKE_DIR/live.snap" # the forced snapshot must exist on disk
test -s "$SMOKE_DIR/events.jsonl" # the event trace must be non-empty
grep -q '"type":"batch_execute"' "$SMOKE_DIR/events.jsonl"

# Crash-recovery smoke: serve the same index in WAL mode, acknowledge
# three upserts over TCP, then kill -9 the server and restart it from the
# same WAL directory. The restarted server must report the acked WAL seq
# (wal seq 3) and assign the next upsert the next id — i.e. all 500 base
# items plus the 3 acknowledged upserts survived the kill. (The in-process
# crash-point matrix lives in tests/wal_recovery.rs; this covers the CLI
# flags and a literal SIGKILL end to end.)
WAL_DIR=$SMOKE_DIR/wal
WAL_ADDR=127.0.0.1:17894
WAL_VEC="0.1,0.2,-0.1,0.3,0.0,-0.2,0.1,0.4"
rm -rf "$WAL_DIR"
mkdir -p "$WAL_DIR"
target/release/lightlt serve --index "$SMOKE_DIR/index.bin" \
  --wal-dir "$WAL_DIR" --fsync-policy always --addr "$WAL_ADDR" &
WAL_PID=$!
for _ in 1 2 3; do
  target/release/lightlt query --addr "$WAL_ADDR" --op upsert --dim 8 \
    --vector "$WAL_VEC"
done
kill -9 "$WAL_PID"
wait "$WAL_PID" || true # SIGKILL: a non-zero exit is the point
target/release/lightlt serve --index "$SMOKE_DIR/index.bin" \
  --wal-dir "$WAL_DIR" --fsync-policy always --addr "$WAL_ADDR" &
WAL_PID=$!
target/release/lightlt query --addr "$WAL_ADDR" --op stats \
  | grep -E 'wal seq +3$' # every acked mutation recovered
target/release/lightlt query --addr "$WAL_ADDR" --op upsert --dim 8 \
  --vector "$WAL_VEC" | grep -F 'upserted ids [503, 504)'
target/release/lightlt query --addr "$WAL_ADDR" --op shutdown
wait "$WAL_PID"

# Sharded smoke: the same kill -9 drill with the index split into 4
# modulo-routed shards. Sharding is semantically invisible (results are
# bitwise-identical at any shard count), so what this pins is the CLI
# flag, sharded recovery, and the stats rows: the restarted server must
# report 4 shards whose item counts partition the recovered total
# (503 items -> 126/126/126/125 under the modulo routing rule).
SHARD_DIR=$SMOKE_DIR/wal_sharded
SHARD_ADDR=127.0.0.1:17895
rm -rf "$SHARD_DIR"
mkdir -p "$SHARD_DIR"
target/release/lightlt serve --index "$SMOKE_DIR/index.bin" \
  --wal-dir "$SHARD_DIR" --fsync-policy always --shards 4 --addr "$SHARD_ADDR" &
SHARD_PID=$!
for _ in 1 2 3; do
  target/release/lightlt query --addr "$SHARD_ADDR" --op upsert --dim 8 \
    --vector "$WAL_VEC"
done
target/release/lightlt query --addr "$SHARD_ADDR" --op search --k 5 \
  --vector "$WAL_VEC"
kill -9 "$SHARD_PID"
wait "$SHARD_PID" || true
target/release/lightlt serve --index "$SMOKE_DIR/index.bin" \
  --wal-dir "$SHARD_DIR" --fsync-policy always --shards 4 --addr "$SHARD_ADDR" &
SHARD_PID=$!
SHARD_STATS=$(target/release/lightlt query --addr "$SHARD_ADDR" --op stats)
echo "$SHARD_STATS" | grep -E 'wal seq +3$'       # every acked mutation recovered
echo "$SHARD_STATS" | grep -E 'shards +4$'
echo "$SHARD_STATS" | grep -E 'shard 0 items +126$'
echo "$SHARD_STATS" | grep -E 'shard 3 items +125$'
target/release/lightlt query --addr "$SHARD_ADDR" --op shutdown
wait "$SHARD_PID"

# Quantized-backend smoke: serve the same index through the u8 scan
# backend (train-free synth_index image -> serve -> query). The u8 engine
# must answer searches, pass the metrics self-check, and show its own
# scan counters in the Prometheus dump — proof the low-precision path is
# actually the one serving. The server also mirrors every completed trace
# to a Chrome trace_event file (--trace-out): after shutdown the file
# must be valid JSON and contain at least one shard-scan and one rerank
# span — the u8 backend's re-rank pass showing up in the waterfall.
U8_ADDR=127.0.0.1:17896
target/release/lightlt serve --index "$SMOKE_DIR/index.bin" \
  --backend u8:16 --addr "$U8_ADDR" --trace-out "$SMOKE_DIR/trace.json" &
U8_PID=$!
target/release/lightlt query --addr "$U8_ADDR" --op search --k 5 \
  --vector "$WAL_VEC"
target/release/lightlt query --addr "$U8_ADDR" --metrics --check
target/release/lightlt query --addr "$U8_ADDR" --metrics \
  | grep -q 'scan_u8_scans'
target/release/lightlt query --addr "$U8_ADDR" --op shutdown
wait "$U8_PID"
python3 -c "import json; json.load(open('$SMOKE_DIR/trace.json'))"
grep -q '"name":"shard-scan"' "$SMOKE_DIR/trace.json"
grep -q '"name":"rerank"' "$SMOKE_DIR/trace.json"

# Routed serving smoke: the same synth image served non-exhaustively — a
# 16-partition coarse quantizer trained at startup, 4 partitions probed
# per query — composed with the u8 scan backend. Stats must report the
# routing parameters, the metrics self-check must pass, and the
# Prometheus dump must show the routing counters (probes recorded means
# the routed path, not the exhaustive one, answered the searches).
ROUTE_ADDR=127.0.0.1:17897
target/release/lightlt serve --index "$SMOKE_DIR/index.bin" \
  --route 16:4 --backend u8:16 --addr "$ROUTE_ADDR" &
ROUTE_PID=$!
ROUTE_STATS=$(target/release/lightlt query --addr "$ROUTE_ADDR" --op stats)
echo "$ROUTE_STATS" | grep -E 'route nlist +16$'
echo "$ROUTE_STATS" | grep -E 'route nprobe +4$'
target/release/lightlt query --addr "$ROUTE_ADDR" --op search --k 5 \
  --vector "$WAL_VEC"
target/release/lightlt query --addr "$ROUTE_ADDR" --metrics --check
target/release/lightlt query --addr "$ROUTE_ADDR" --metrics \
  | grep -q 'route_probes'
# Routed searches tag their trace with the head/tail quartile of the
# top-1 result's partition; the traces waterfall must show the tag.
target/release/lightlt query --addr "$ROUTE_ADDR" --op traces \
  | grep -Eq 'tail_q [0-3]'
target/release/lightlt query --addr "$ROUTE_ADDR" --op shutdown
wait "$ROUTE_PID"

# Routed eval smoke: train a tiny model on a scaled-down Table-I split,
# bake a routed index image (LTINDEX4), and check that `eval --route`
# reports the tail-quartile recall of the non-exhaustive search against
# the exhaustive reference — the guarantee this subsystem is named for.
EVAL_DIR=target/route_eval_smoke
rm -rf "$EVAL_DIR"
mkdir -p "$EVAL_DIR"
target/release/lightlt generate --dataset cifar100 --if 50 --dim 16 \
  --scale 0.05 --out "$EVAL_DIR/split.ltd"
target/release/lightlt train --data "$EVAL_DIR/split.ltd" --epochs 2 \
  --codebooks 2 --codewords 16 --embed-dim 8 --out "$EVAL_DIR/model.json"
target/release/lightlt index --model "$EVAL_DIR/model.json" \
  --data "$EVAL_DIR/split.ltd" --route 8 --out "$EVAL_DIR/index.bin"
target/release/lightlt eval --model "$EVAL_DIR/model.json" \
  --index "$EVAL_DIR/index.bin" --data "$EVAL_DIR/split.ltd" \
  --route 8:2 | grep -E 'routed recall@10 .* tail-quartile'

# Smoke the serve load benchmark (tracked baseline: BENCH_serve.json via
# `cargo run -p lt-bench --release -- serve --durable`; the --durable
# fsync-policy grid rides along in the smoke too so its path keeps
# working).
cargo run -p lt-bench --release -- serve --smoke --durable --out target/BENCH_serve_smoke.json
# The tracing-overhead comparison cell must ride along.
grep -q '"trace_overhead"' target/BENCH_serve_smoke.json
