//! Integration comparison across method families on one shared task — a
//! miniature of the Table-III protocol, asserting the ordering the paper
//! reports: supervised quantization (LightLT) ≥ supervised deep baselines ≥
//! unsupervised shallow baselines ≥ data-independent LSH.

use lightlt::prelude::*;
use lightlt_core::search::adc_rank_all;
use lt_baselines::deep::lthnet::{LthNet, LthNetConfig};
use lt_baselines::shallow::lsh::Lsh;
use lt_baselines::shallow::pq::{Pq, PqIndex};
use lt_baselines::HammingRanker;
use lt_data::synth::{generate_split, Domain};

fn task() -> RetrievalSplit {
    generate_split(&SynthConfig {
        num_classes: 6,
        dim: 24,
        pi1: 60,
        imbalance_factor: 12.0,
        n_query: 30,
        n_database: 300,
        domain: Domain::TextLike,
        intra_class_std: None,
        seed: 99,
    })
}

fn lightlt_map(split: &RetrievalSplit) -> f64 {
    let config = LightLtConfig {
        input_dim: 24,
        backbone_hidden: 48,
        embed_dim: 16,
        num_classes: 6,
        num_codebooks: 4,
        num_codewords: 16,
        ffn_hidden: 24,
        epochs: 30,
        batch_size: 32,
        learning_rate: 5e-3,
        alpha: 0.03, // grid-searched for this text task (the paper tunes α per dataset)
        ensemble_size: 4,
        ensemble_branch_epochs: 8,
        finetune_epochs: 4,
        schedule: lightlt_core::ScheduleKind::Linear,
        seed: 3,
        ..Default::default()
    };
    let result = train_ensemble(&config, &split.train).expect("training failed");
    let db_emb = result.model.embed(&result.store, &split.database.features);
    let q_emb = result.model.embed(&result.store, &split.query.features);
    let index = QuantizedIndex::build(&result.model.dsq, &result.store, &db_emb);
    let rankings: Vec<Vec<usize>> =
        (0..q_emb.rows()).map(|i| adc_rank_all(&index, q_emb.row(i))).collect();
    mean_average_precision(&rankings, &split.query.labels, &split.database.labels)
}

fn lsh_map(split: &RetrievalSplit) -> f64 {
    let lsh = Lsh::new(24, 16, 1);
    let ranker = HammingRanker::new(&lsh, &split.database.features);
    evaluate_map(&ranker, &split.query.features, &split.query.labels, &split.database.labels)
}

fn pq_map(split: &RetrievalSplit) -> f64 {
    let pq = Pq::fit(&split.train.features, 4, 16, 2);
    let index = PqIndex::build(pq, &split.database.features);
    evaluate_map(&index, &split.query.features, &split.query.labels, &split.database.labels)
}

fn lthnet_map(split: &RetrievalSplit) -> f64 {
    let model = LthNet::fit(
        LthNetConfig {
            input_dim: 24,
            hidden: 48,
            feat_dim: 16,
            bits: 16,
            num_classes: 6,
            epochs: 20,
            batch_size: 32,
            ..Default::default()
        },
        &split.train,
    );
    let ranker = HammingRanker::new(&model, &split.database.features);
    evaluate_map(&ranker, &split.query.features, &split.query.labels, &split.database.labels)
}

#[test]
fn method_ordering_matches_table3_shape() {
    let split = task();
    let lightlt = lightlt_map(&split);
    let lthnet = lthnet_map(&split);
    let pq = pq_map(&split);
    let lsh = lsh_map(&split);
    eprintln!("LightLT {lightlt:.4}  LTHNet {lthnet:.4}  PQ {pq:.4}  LSH {lsh:.4}");

    // Paper Table III ordering, with a noise margin: this is a single-seed
    // 6-class micro task where the two long-tail methods trade places run
    // to run (the full-scale comparison lives in the table3 bench, where
    // LightLT leads every column).
    assert!(lightlt > lsh + 0.05, "LightLT {lightlt:.3} vs LSH {lsh:.3}");
    assert!(lightlt > pq - 0.02, "LightLT {lightlt:.3} vs PQ {pq:.3}");
    assert!(lightlt > lthnet - 0.07, "LightLT {lightlt:.3} vs LTHNet {lthnet:.3}");
    assert!(lthnet > lsh, "LTHNet {lthnet:.3} vs LSH {lsh:.3}");
    assert!(pq > lsh, "PQ {pq:.3} vs LSH {lsh:.3}");
}
