//! Crash-recovery integration suite for the lt-serve write-ahead log.
//!
//! The durability contract under test: **an acknowledged mutation is never
//! lost**. Each crash test re-executes this test binary as a child process
//! (the [`crash_child`] workload, gated on `LT_WAL_CHILD_DIR`) with
//! `LT_CRASH_POINT` armed, lets the child abort mid-operation, then
//! recovers the WAL directory in the parent and checks three things:
//!
//! 1. every mutation the child acknowledged (printed `ACK <seq>` before
//!    the crash) is present in the recovered state — acked ⊆ recovered;
//! 2. the recovered index is **bitwise identical** (`serialize_index`
//!    byte equality, plus a search probe on score bits) to a mirror built
//!    by applying the same deterministic schedule up to the recovered
//!    epoch — snapshot + WAL-suffix replay reconstructs the pre-crash
//!    state exactly, never a plausible approximation;
//! 3. the recovered state keeps working: the writer continues the seq
//!    chain and the next mutation is accepted.
//!
//! The corrupt-artifact matrix flips bytes in the newest WAL segment, the
//! newest snapshot image, and the manifest, pinning truncate-and-continue
//! (recover the longest valid prefix, fall back a candidate, never panic).
//! The fsync-policy grid pins that every policy recovers all acked
//! mutations across a *clean* process exit (policies only differ in what
//! power loss — not `kill -9` — may take).

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use lightlt::prelude::*;
use lightlt::serve::{
    recover, FsyncPolicy, IndexState, MutationError, RecoverySource, RetryClient, RetryPolicy,
    ServeClient, ServeConfig, Server,
};
use lightlt_core::persist::{serialize_index, serialize_routed_index};
use lightlt_core::route::{RoutedIndex, DEFAULT_TRAIN_SEED};
use lightlt_core::search::adc_search;
use lt_linalg::random::{randn, rng};
use lt_linalg::Matrix;

const DIM: usize = 12;
const BASE_N: usize = 60;
const BASE_SEED: u64 = 41;

/// Synthetic base index — same construction as the serve suite; recovery
/// behaviour does not depend on how codewords were trained. Deterministic:
/// the child process and the parent's mirror build the identical index.
fn base_index() -> QuantizedIndex {
    let (n, m, k, d) = (BASE_N, 3, 16, DIM);
    let mut r = rng(BASE_SEED);
    let codebooks: Vec<Matrix> = (0..m).map(|_| randn(k, d, &mut r).scale(0.3)).collect();
    let mut state = BASE_SEED.wrapping_mul(6364136223846793005).wrapping_add(1);
    let ids: Vec<u16> = (0..n * m)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize % k) as u16
        })
        .collect();
    let codes = Codes::new(ids, m);
    let norms = (0..n)
        .map(|i| {
            let mut recon = vec![0.0f32; d];
            for (level, &id) in codes.item(i).iter().enumerate() {
                for (v, &c) in recon.iter_mut().zip(codebooks[level].row(id as usize)) {
                    *v += c;
                }
            }
            lt_linalg::gemm::dot(&recon, &recon)
        })
        .collect();
    QuantizedIndex::from_parts(codebooks, codes, norms, Metric::NegSquaredL2, d, k)
}

/// One step of the deterministic mutation schedule. The op for step `i`
/// depends only on `i` and the index length after steps `1..i`, so the
/// child, a restarted child, and the parent's mirror all derive the same
/// sequence — WAL seq `i` always carries the same mutation.
enum Op {
    Upsert(Matrix),
    Delete(usize),
}

fn op_for(step: u64, len: usize) -> Op {
    if step % 4 == 3 && len > 8 {
        Op::Delete((step as usize).wrapping_mul(7) % len)
    } else {
        let rows = 1 + (step as usize % 2);
        Op::Upsert(randn(rows, DIM, &mut rng(1_000 + step)).scale(0.3))
    }
}

fn apply_to_state(state: &IndexState, step: u64) -> Result<(), MutationError> {
    match op_for(step, state.snapshot().len()) {
        Op::Upsert(rows) => state.upsert(&rows).map(|_| ()),
        Op::Delete(id) => state.delete(id).map(|_| ()),
    }
}

/// The index the schedule produces after steps `1..=epoch` — ground truth
/// for bitwise comparison against a recovered state.
fn mirror_after(epoch: u64) -> QuantizedIndex {
    let mut index = base_index();
    for step in 1..=epoch {
        match op_for(step, index.len()) {
            Op::Upsert(rows) => {
                index.append(&rows);
            }
            Op::Delete(id) => {
                index.swap_remove(id);
            }
        }
    }
    index
}

fn assert_bitwise_identical(state: &IndexState, epoch: u64, context: &str) {
    let mirror = mirror_after(epoch);
    assert_eq!(
        serialize_index(&state.snapshot()),
        serialize_index(&mirror),
        "recovered state not bitwise-identical to the pre-crash state ({context})"
    );
    // Belt and braces: the property users observe is search results.
    let q = randn(1, DIM, &mut rng(7)).scale(0.5);
    let a = adc_search(&state.snapshot(), q.row(0), 5);
    let b = adc_search(&mirror, q.row(0), 5);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.index, y.index, "hit id diverged ({context})");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits diverged ({context})");
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lt_wal_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---- the child workload --------------------------------------------------

/// Child-process workload for the crash tests. A no-op (instantly passing
/// test) unless `LT_WAL_CHILD_DIR` is set; the crash tests spawn this test
/// binary filtered down to exactly this test, with `LT_CRASH_POINT` armed,
/// and read the `ACK <seq>` lines the child manages to print before the
/// armed point aborts it. Protocol on stdout, one line each, flushed
/// before the next fallible step:
///
/// - `RECOVERED <epoch>` — recovery finished, continuing from `epoch + 1`
/// - `ACK <seq>`         — mutation `seq` was acknowledged (durable)
/// - `SNAP <seq>`        — a durable snapshot covering `seq` committed
/// - `DONE`              — the whole schedule completed without crashing
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("LT_WAL_CHILD_DIR") else { return };
    let dir = PathBuf::from(dir);
    let total: u64 = std::env::var("LT_WAL_CHILD_OPS").unwrap().parse().unwrap();
    let snap_at: u64 =
        std::env::var("LT_WAL_CHILD_SNAP_AT").unwrap_or_default().parse().unwrap_or(0);

    let shards: usize =
        std::env::var("LT_WAL_CHILD_SHARDS").unwrap_or_default().parse().unwrap_or(1);
    let (mut state, report) =
        recover(Some(base_index()), &dir, FsyncPolicy::Always, shards).unwrap();
    // With routing enabled, every mutation below also maintains the routed
    // overlay — the crash can land mid-schedule with the overlay live.
    if std::env::var("LT_WAL_CHILD_ROUTE").is_ok() {
        state.enable_routing(6, 2, DEFAULT_TRAIN_SEED);
    }
    emit(&format!("RECOVERED {}", report.epoch));
    for step in report.epoch + 1..=total {
        apply_to_state(&state, step).unwrap();
        emit(&format!("ACK {step}"));
        if step == snap_at {
            state.write_durable_snapshot().unwrap();
            emit(&format!("SNAP {step}"));
        }
    }
    emit("DONE");
}

fn emit(line: &str) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    writeln!(out, "{line}").unwrap();
    out.flush().unwrap();
}

struct ChildRun {
    recovered: u64,
    acked: Vec<u64>,
    snapped: Vec<u64>,
    done: bool,
    clean_exit: bool,
}

impl ChildRun {
    fn max_acked(&self) -> u64 {
        self.acked.iter().copied().max().unwrap_or(0)
    }
}

/// Runs [`crash_child`] in a fresh process against `dir`, optionally with
/// an armed crash point (`"<point>"` or `"<point>:<nth>"`).
fn run_child(dir: &Path, total: u64, snap_at: u64, crash: Option<&str>) -> ChildRun {
    run_child_sharded(dir, total, snap_at, crash, 1)
}

/// [`run_child`] with the child's state split into `shards` shards.
fn run_child_sharded(
    dir: &Path,
    total: u64,
    snap_at: u64,
    crash: Option<&str>,
    shards: usize,
) -> ChildRun {
    run_child_inner(dir, total, snap_at, crash, shards, false)
}

/// [`run_child`] with a 6-partition routing overlay enabled in the child,
/// so every mutation exercises the routed maintenance path before the
/// crash lands.
fn run_child_routed(dir: &Path, total: u64, snap_at: u64, crash: Option<&str>) -> ChildRun {
    run_child_inner(dir, total, snap_at, crash, 1, true)
}

fn run_child_inner(
    dir: &Path,
    total: u64,
    snap_at: u64,
    crash: Option<&str>,
    shards: usize,
    routed: bool,
) -> ChildRun {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args(["crash_child", "--exact", "--nocapture", "--test-threads=1"])
        .env("LT_WAL_CHILD_DIR", dir)
        .env("LT_WAL_CHILD_OPS", total.to_string())
        .env("LT_WAL_CHILD_SNAP_AT", snap_at.to_string())
        .env("LT_WAL_CHILD_SHARDS", shards.to_string())
        .env_remove("LT_WAL_CHILD_ROUTE")
        .env_remove("LT_CRASH_POINT")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if routed {
        cmd.env("LT_WAL_CHILD_ROUTE", "1");
    }
    if let Some(spec) = crash {
        cmd.env("LT_CRASH_POINT", spec);
    }
    let mut child = cmd.spawn().unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut run =
        ChildRun { recovered: 0, acked: Vec::new(), snapped: Vec::new(), done: false, clean_exit: false };
    for line in std::io::BufReader::new(stdout).lines() {
        // Token-wise scan: with `--nocapture` the libtest harness prints
        // `test crash_child ... ` with no newline, so the child's first
        // line arrives glued to that prefix.
        let line = line.unwrap();
        let tokens: Vec<&str> = line.split_whitespace().collect();
        for w in tokens.windows(2) {
            match (w[0], w[1].parse::<u64>()) {
                ("ACK", Ok(n)) => run.acked.push(n),
                ("SNAP", Ok(n)) => run.snapped.push(n),
                ("RECOVERED", Ok(n)) => run.recovered = n,
                _ => {}
            }
        }
        if tokens.contains(&"DONE") {
            run.done = true;
        }
    }
    run.clean_exit = child.wait().unwrap().success();
    run
}

// ---- crash-point matrix --------------------------------------------------

/// The headline acceptance test: a kill at every append-path crash point
/// loses zero acknowledged mutations under `fsync = always`, and restart
/// reconstructs a bitwise-identical index.
#[test]
fn kill_at_every_append_crash_point_loses_no_acked_mutations() {
    for point in ["pre_append", "post_append_pre_fsync", "torn_tail"] {
        let dir = tmp_dir(&format!("kill_{point}"));
        let run = run_child(&dir, 40, 0, Some(&format!("{point}:7")));
        assert!(!run.clean_exit, "{point}: the armed child must die, not finish");
        assert!(!run.done);
        let max_acked = run.max_acked();
        assert!(max_acked >= 1, "{point}: some mutations must be acked before the crash");
        assert!(max_acked < 40, "{point}: the crash must interrupt the schedule");

        let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
        // acked ⊆ recovered: an ack the client saw can never be rolled
        // back. (The other direction is legitimately loose — a process
        // kill preserves page-cache writes, so a logged-but-unacked
        // mutation may survive.)
        assert!(
            report.epoch >= max_acked,
            "{point}: acked seq {max_acked} lost — recovered only to epoch {}",
            report.epoch
        );
        assert!(report.epoch <= 40);
        assert_eq!(state.epoch(), report.epoch);
        assert_bitwise_identical(&state, report.epoch, point);

        // The recovered writer continues the seq chain.
        apply_to_state(&state, report.epoch + 1).unwrap();
        assert_eq!(state.epoch(), report.epoch + 1, "{point}: writer must continue after recovery");
        drop(state);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A sharded child killed mid-schedule recovers into ANY shard count:
/// the WAL is logically global (shard tags are diagnostic), so a log
/// written by a 4-shard server replays bitwise-identically into 1, 2, or
/// 4 shards, with each shard's epoch equal to the seq of the last record
/// that touched it.
#[test]
fn sharded_state_survives_kill_and_recovers_at_any_shard_count() {
    let dir = tmp_dir("kill_sharded");
    // Arm the 20th append-path crash so the durable snapshot at seq 12
    // commits first: recovery then seeds from the snapshot and replays
    // the WAL suffix into the sharded layout.
    let run = run_child_sharded(&dir, 40, 12, Some("post_append_pre_fsync:20"), 4);
    assert!(!run.clean_exit, "the armed child must die, not finish");
    assert!(!run.done);
    let max_acked = run.max_acked();
    assert!(max_acked >= 12, "the snapshot step must be reached before the crash");
    assert!(max_acked < 40, "the crash must interrupt the schedule");
    assert_eq!(run.snapped, vec![12]);

    for shards in [4usize, 1, 2] {
        let (state, report) =
            recover(Some(base_index()), &dir, FsyncPolicy::Always, shards).unwrap();
        assert!(
            report.epoch >= max_acked,
            "shards={shards}: acked seq {max_acked} lost — recovered only to epoch {}",
            report.epoch
        );
        assert_eq!(state.num_shards(), shards);
        assert_bitwise_identical(&state, report.epoch, &format!("shards={shards}"));
        // epoch ≡ seq per shard: the newest shard epoch is the last
        // replayed seq, and none runs ahead of the global epoch.
        let epochs = state.shard_epochs();
        assert_eq!(epochs.len(), shards);
        assert_eq!(epochs.iter().copied().max().unwrap(), report.epoch);
        assert!(epochs.iter().all(|&e| e <= report.epoch));
        drop(state);
    }

    // The recovered sharded writer continues the seq chain and stamps the
    // shards the next mutation touches.
    let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 4).unwrap();
    apply_to_state(&state, report.epoch + 1).unwrap();
    assert_eq!(state.epoch(), report.epoch + 1);
    assert_eq!(state.shard_epochs().into_iter().max().unwrap(), report.epoch + 1);
    drop(state);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The routed acceptance drill: kill -9 a child whose mutations flow
/// through a live routing overlay, recover, and check (1) acked ⊆
/// recovered with the flat state bitwise-identical to the mirror, and
/// (2) restart-time centroid retraining on the recovered corpus lands on
/// the **identical partitioning** a deterministic mirror derives — same
/// assignments, byte-equal `LTINDEX4` image. Routing adds no recovery
/// machinery of its own: the overlay is a pure function of recovered
/// state, so determinism of recovery + determinism of training is the
/// whole proof.
#[test]
fn routed_state_survives_kill_and_retrains_the_mirror_partitioning() {
    let dir = tmp_dir("kill_routed");
    let run = run_child_routed(&dir, 40, 12, Some("post_append_pre_fsync:20"));
    assert!(!run.clean_exit, "the armed child must die, not finish");
    assert!(!run.done);
    let max_acked = run.max_acked();
    assert!(max_acked >= 12, "the snapshot step must be reached before the crash");
    assert!(max_acked < 40, "the crash must interrupt the schedule");

    let (mut state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
    assert!(
        report.epoch >= max_acked,
        "acked seq {max_acked} lost — recovered only to epoch {}",
        report.epoch
    );
    assert_bitwise_identical(&state, report.epoch, "routed kill");

    let mirror = mirror_after(report.epoch);
    let recovered_route = RoutedIndex::from_index(&state.snapshot(), 6, DEFAULT_TRAIN_SEED);
    let mirror_route = RoutedIndex::from_index(&mirror, 6, DEFAULT_TRAIN_SEED);
    assert_eq!(
        recovered_route.assignments(),
        mirror_route.assignments(),
        "recovered partitioning diverged from the deterministic mirror"
    );
    assert_eq!(
        serialize_routed_index(&recovered_route),
        serialize_routed_index(&mirror_route),
        "routed images diverged"
    );

    // The recovered server re-enables routing and keeps serving the
    // schedule: the overlay accepts the next mutation in lockstep.
    state.enable_routing(6, 2, DEFAULT_TRAIN_SEED);
    apply_to_state(&state, report.epoch + 1).unwrap();
    assert_eq!(state.epoch(), report.epoch + 1);
    drop(state);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kill inside the durable-snapshot commit sequence (before the rename,
/// or after the rename but before the manifest) preserves every acked
/// mutation: the manifest is the commit point, so the previous snapshot's
/// WAL suffix is still intact and nothing replays twice.
#[test]
fn kill_during_durable_snapshot_preserves_every_acked_mutation() {
    for point in ["mid_rename", "post_snapshot_pre_manifest"] {
        let dir = tmp_dir(&format!("snapkill_{point}"));
        let run = run_child(&dir, 40, 12, Some(point));
        assert!(!run.clean_exit, "{point}: the armed child must die inside the snapshot");
        assert_eq!(run.max_acked(), 12, "{point}: ops up to the snapshot trigger are acked");
        assert!(run.snapped.is_empty(), "{point}: the snapshot must not have committed");

        let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
        assert_eq!(report.epoch, 12, "{point}: every acked mutation must survive");
        match point {
            // Nothing was renamed into place: recovery seeds from the
            // base image and replays the whole log.
            "mid_rename" => assert_eq!(report.source, RecoverySource::Base),
            // The image landed but the manifest did not: the orphan
            // snapshot seeds recovery, and replay starts after its
            // covered seq — the double-replay hazard this design avoids.
            _ => assert!(
                matches!(report.source, RecoverySource::SnapshotFile(_)),
                "{point}: expected the orphan snapshot to seed recovery, got {:?}",
                report.source
            ),
        }
        assert_bitwise_identical(&state, 12, point);
        apply_to_state(&state, 13).unwrap();
        assert_eq!(state.epoch(), 13);
        drop(state);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash, restart the server process, let it finish the schedule, then
/// recover a third time: the full snapshot + rotated-segment + replay
/// composition converges to the complete deterministic state.
#[test]
fn restart_after_crash_resumes_and_completes_the_schedule() {
    let dir = tmp_dir("restart_resume");
    // Run 1: snapshot (and rotate) at 20, die mid-append on op 30.
    let run1 = run_child(&dir, 40, 20, Some("post_append_pre_fsync:30"));
    assert!(!run1.clean_exit);
    assert!(run1.snapped.contains(&20), "the durable snapshot at 20 must commit before the crash");
    assert_eq!(run1.max_acked(), 29);

    // Run 2: no crash armed — recovers (snapshot 20 + suffix) and finishes.
    let run2 = run_child(&dir, 40, 0, None);
    assert!(run2.clean_exit && run2.done, "the restarted child must complete the schedule");
    assert!(
        (29..=30).contains(&run2.recovered),
        "restart must resume at the crash frontier, got epoch {}",
        run2.recovered
    );

    let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
    assert_eq!(report.epoch, 40);
    assert!(
        matches!(report.source, RecoverySource::Manifest(_)),
        "the committed snapshot must seed recovery, got {:?}",
        report.source
    );
    assert_bitwise_identical(&state, 40, "restart_resume");
    drop(state);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- corrupt-artifact matrix ---------------------------------------------

/// Builds a WAL directory with two committed snapshots (covering 6 and
/// 12) and a replay suffix 13..=15, then returns it.
fn durable_setup(dir: &Path) {
    let (state, _) = recover(Some(base_index()), dir, FsyncPolicy::Always, 1).unwrap();
    for step in 1..=6 {
        apply_to_state(&state, step).unwrap();
    }
    state.write_durable_snapshot().unwrap();
    for step in 7..=12 {
        apply_to_state(&state, step).unwrap();
    }
    state.write_durable_snapshot().unwrap();
    for step in 13..=15 {
        apply_to_state(&state, step).unwrap();
    }
}

fn flip_byte_mid(path: &Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(path, &bytes).unwrap();
}

fn newest_file_with(dir: &Path, prefix: &str, suffix: &str) -> PathBuf {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.starts_with(prefix) && n.ends_with(suffix))
        .collect();
    names.sort();
    dir.join(names.last().expect("no matching file"))
}

/// A flipped byte in the newest WAL segment stops replay at that frame:
/// the longest valid prefix is recovered bitwise-exactly, the torn tail
/// is truncated off, and the writer continues — never a panic, never a
/// half-applied record.
#[test]
fn bit_flip_in_wal_segment_recovers_the_valid_prefix() {
    let dir = tmp_dir("flip_wal");
    durable_setup(&dir);
    flip_byte_mid(&newest_file_with(&dir, "wal-", ".log"));

    let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
    assert!(
        report.replay.stopped.is_some(),
        "replay must report the corruption, got {:?}",
        report.replay
    );
    assert!(
        (12..15).contains(&report.epoch),
        "the valid prefix ends at the flipped frame, got epoch {}",
        report.epoch
    );
    assert_bitwise_identical(&state, report.epoch, "flip_wal");
    apply_to_state(&state, report.epoch + 1).unwrap();
    drop(state);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt newest snapshot falls back to the previous retained snapshot
/// and replays its longer WAL suffix — full recovery, one candidate back.
#[test]
fn bit_flip_in_snapshot_falls_back_to_older_snapshot() {
    let dir = tmp_dir("flip_snap");
    durable_setup(&dir);
    flip_byte_mid(&newest_file_with(&dir, "snap-", ".ltidx"));

    let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
    assert!(!report.fallbacks.is_empty(), "the corrupt image must be counted as a fallback");
    assert!(
        matches!(report.source, RecoverySource::SnapshotFile(_)),
        "expected the older retained snapshot, got {:?}",
        report.source
    );
    assert_eq!(report.covered_seq, 6);
    assert_eq!(report.epoch, 15, "the longer WAL suffix rebuilds everything");
    assert_bitwise_identical(&state, 15, "flip_snap");
    drop(state);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt manifest falls back to the newest orphan snapshot by name;
/// its seq-encoded file name still tells replay where to start.
#[test]
fn bit_flip_in_manifest_falls_back_to_orphan_snapshot() {
    let dir = tmp_dir("flip_manifest");
    durable_setup(&dir);
    flip_byte_mid(&dir.join("MANIFEST"));

    let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
    assert!(!report.fallbacks.is_empty());
    assert!(
        matches!(report.source, RecoverySource::SnapshotFile(_)),
        "expected the orphan snapshot, got {:?}",
        report.source
    );
    assert_eq!(report.covered_seq, 12);
    assert_eq!(report.epoch, 15);
    assert_bitwise_identical(&state, 15, "flip_manifest");
    drop(state);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- fsync-policy grid ---------------------------------------------------

/// Every fsync policy recovers every acknowledged mutation across a clean
/// process exit: the policies trade off what a *power loss* may take, but
/// bytes handed to the kernel survive the process, so the recovered state
/// is identical across the grid.
#[test]
fn fsync_policy_grid_recovers_all_acked_mutations() {
    let policies = [
        ("always", FsyncPolicy::Always),
        ("group", FsyncPolicy::Group { records: 3, micros: 0 }),
        ("never", FsyncPolicy::Never),
    ];
    for (tag, policy) in policies {
        let dir = tmp_dir(&format!("grid_{tag}"));
        {
            let (state, _) = recover(Some(base_index()), &dir, policy, 1).unwrap();
            for step in 1..=9 {
                apply_to_state(&state, step).unwrap();
            }
            state.write_durable_snapshot().unwrap();
            for step in 10..=15 {
                apply_to_state(&state, step).unwrap();
            }
        }
        let (state, report) = recover(Some(base_index()), &dir, FsyncPolicy::Always, 1).unwrap();
        assert_eq!(report.epoch, 15, "{tag}: all acked mutations must recover");
        assert_eq!(report.covered_seq, 9, "{tag}: the snapshot covers the pre-rotation prefix");
        assert_bitwise_identical(&state, 15, tag);
        drop(state);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---- server-level durability ---------------------------------------------

/// End-to-end over TCP: a WAL-mode server acknowledges mutations, commits
/// a durable snapshot on request, and a restarted server recovered purely
/// from the WAL directory serves bitwise-identical results and continues
/// the epoch/seq chain (visible as `wal_last_seq` in stats).
#[test]
fn wal_mode_server_recovers_over_restart() {
    let dir = tmp_dir("server_wal");
    let index = base_index();
    let n0 = index.len();
    let config = || ServeConfig {
        wal_dir: Some(dir.clone()),
        fsync_policy: FsyncPolicy::Always,
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        ..ServeConfig::default()
    };

    let server = Server::start(index, config()).unwrap();
    let mut client = ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5))
        .unwrap();
    let rows = randn(2, DIM, &mut rng(77)).scale(0.4);
    let (start, end) = client.upsert(DIM, rows.as_slice()).unwrap();
    assert_eq!((start, end), (n0 as u64, n0 as u64 + 2));
    client.delete(0).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.wal_last_seq, 2, "the stats report the last logged seq");
    // Commit a durable snapshot so the restart can recover with no base
    // index at all — the WAL directory alone carries the state.
    assert_eq!(client.snapshot().unwrap(), 2);
    let q = randn(1, DIM, &mut rng(78)).scale(0.5);
    let expected = client.search(q.row(0), 6).unwrap();
    server.shutdown();

    let server2 = Server::start_recovered(config()).unwrap();
    let mut client2 =
        ServeClient::connect_with_retry(server2.local_addr(), Duration::from_secs(5)).unwrap();
    let hits = client2.search(q.row(0), 6).unwrap();
    assert_eq!(hits.len(), expected.len());
    for (h, e) in hits.iter().zip(&expected) {
        assert_eq!(h.0, e.0, "hit ids must survive the restart");
        assert_eq!(h.1.to_bits(), e.1.to_bits(), "score bits must survive the restart");
    }
    let stats2 = client2.stats().unwrap();
    assert_eq!(stats2.wal_last_seq, 2, "the recovered server continues the seq chain");
    // And keeps going: the next mutation gets seq 3.
    client2.upsert(DIM, rows.as_slice()).unwrap();
    assert_eq!(client2.stats().unwrap().wal_last_seq, 3);
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `RetryClient` rides out a full server restart on the same address:
/// connect-phase failures are retried with backoff until the new process
/// is listening, and the answer is bitwise-identical to before.
#[test]
fn retry_client_survives_server_restart() {
    let index = base_index();
    let server = Server::start(
        index.clone(),
        ServeConfig { max_batch: 4, max_delay: Duration::from_millis(1), ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = RetryClient::new(
        addr.to_string(),
        RetryPolicy {
            max_attempts: 60,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(30),
        },
    );
    let q = randn(1, DIM, &mut rng(79)).scale(0.5);
    let before = client.search(q.row(0), 5).unwrap();
    server.shutdown();

    // Bring a new server up on the same port after a gap the client must
    // bridge with connect retries.
    let addr_str = addr.to_string();
    let restarted = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        Server::start(index, ServeConfig { addr: addr_str, ..ServeConfig::default() }).unwrap()
    });
    let after = client.search(q.row(0), 5).unwrap();
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.0, a.0, "hit ids must match across the restart");
        assert_eq!(b.1.to_bits(), a.1.to_bits(), "score bits must match across the restart");
    }
    restarted.join().unwrap().shutdown();
}
