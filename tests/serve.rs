//! Integration suite for the lt-serve query-serving subsystem.
//!
//! The serving layer must be a pure transport: batching, concurrency, and
//! snapshot reload may change throughput but never results. Every test
//! here pins *bitwise* agreement between what a client receives over TCP
//! and what a single-threaded local [`adc_search`] returns — across
//! concurrent clients, across online mutations (against a locally
//! maintained mirror index), and across a snapshot-reload restart. The
//! backpressure test pins the typed `Overloaded` refusal (never a hang),
//! and the validation test pins typed `BadRequest` refusals for malformed
//! wire requests.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use lightlt::prelude::*;
use lightlt::serve::protocol::{read_frame, write_frame, Request, Response};
use lightlt::serve::{load_index_with_snapshot, ServeClient, ServeConfig, Server};
use lightlt_core::persist::serialize_index;
use lightlt_core::search::adc_search;
use lt_linalg::random::{randn, rng};
use lt_linalg::Matrix;

/// Synthetic index at an arbitrary (n, M, K): same construction as the
/// scan-engine suite — serving behaviour does not depend on how codewords
/// were trained.
fn synth_index(n: usize, m: usize, k: usize, d: usize, seed: u64) -> QuantizedIndex {
    let mut r = rng(seed);
    let codebooks: Vec<Matrix> = (0..m).map(|_| randn(k, d, &mut r).scale(0.3)).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let ids: Vec<u16> = (0..n * m)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize % k) as u16
        })
        .collect();
    let codes = Codes::new(ids, m);
    let norms = (0..n)
        .map(|i| {
            let mut recon = vec![0.0f32; d];
            for (level, &id) in codes.item(i).iter().enumerate() {
                for (v, &c) in recon.iter_mut().zip(codebooks[level].row(id as usize)) {
                    *v += c;
                }
            }
            lt_linalg::gemm::dot(&recon, &recon)
        })
        .collect();
    QuantizedIndex::from_parts(codebooks, codes, norms, Metric::NegSquaredL2, d, k)
}

fn assert_hits_match(hits: &[(u64, f32)], expected: &[lt_linalg::topk::Scored]) {
    assert_eq!(hits.len(), expected.len(), "result length differs");
    for (h, e) in hits.iter().zip(expected) {
        assert_eq!(h.0, e.index as u64, "hit id differs");
        assert_eq!(h.1.to_bits(), e.score.to_bits(), "score bits differ");
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lt_serve_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn concurrent_clients_get_bitwise_identical_results() {
    let d = 16;
    let index = synth_index(400, 3, 24, d, 11);
    let reference = index.clone();
    let server = Server::start(
        index,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let clients = 8;
    let per_client = 10;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let reference = &reference;
            scope.spawn(move || {
                let mut client =
                    ServeClient::connect_with_retry(addr, Duration::from_secs(5)).unwrap();
                let queries = randn(per_client, d, &mut rng(100 + c as u64)).scale(0.5);
                for i in 0..per_client {
                    let q = queries.row(i);
                    let k = 1 + (i % 7);
                    let hits = client.search(q, k).unwrap();
                    // The batch executor must be a pure transport: bitwise
                    // identical to a local single-threaded search.
                    assert_hits_match(&hits, &adc_search(reference, q, k));
                }
            });
        }
    });

    let mut probe = ServeClient::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    assert_eq!(stats.searches, (clients * per_client) as u64);
    assert!(stats.batches <= stats.searches);
    server.shutdown();
}

#[test]
fn sharded_servers_answer_bitwise_identically_at_any_shard_count() {
    // The shard count (and executor width) is a deployment knob, never a
    // semantic one: the same mutation schedule + query set against 1-, 2-,
    // 4-, and 8-shard servers must return byte-identical hits, all equal
    // to a local unsharded mirror.
    let d = 16;
    let base = synth_index(300, 3, 24, d, 21);
    let mut mirror = base.clone();
    let rows = randn(5, d, &mut rng(210)).scale(0.4);
    mirror.append(&rows);
    mirror.swap_remove(7);
    let total = mirror.len() as u64;

    let queries = randn(6, d, &mut rng(211)).scale(0.5);
    for (shards, threads) in [(1usize, 1usize), (2, 4), (4, 1), (8, 4)] {
        let server = Server::start(
            base.clone(),
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                shards,
                threads,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client =
            ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5)).unwrap();
        client.upsert(d, rows.as_slice()).unwrap();
        client.delete(7).unwrap();
        for i in 0..queries.rows() {
            let q = queries.row(i);
            let k = 1 + i * 3;
            assert_hits_match(&client.search(q, k).unwrap(), &adc_search(&mirror, q, k));
        }
        // The Stats reply exposes the shard layout: counts must partition
        // the id space under the modulo routing rule.
        let stats = client.stats().unwrap();
        assert_eq!(stats.shards, shards as u64, "shards={shards}");
        assert_eq!(stats.shard_items.len(), shards);
        assert_eq!(stats.shard_items.iter().sum::<u64>(), total);
        for (i, &got) in stats.shard_items.iter().enumerate() {
            let expect = (total as usize + shards - 1 - i) / shards;
            assert_eq!(got, expect as u64, "shard {i} of {shards}");
        }
        server.shutdown();
    }
}

#[test]
fn upserts_and_deletes_are_visible_and_match_local_mirror() {
    let d = 16;
    let index = synth_index(120, 3, 24, d, 12);
    let mut mirror = index.clone();
    let server = Server::start(index, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect_with_retry(
        server.local_addr(),
        Duration::from_secs(5),
    )
    .unwrap();

    let q: Vec<f32> = randn(1, d, &mut rng(77)).into_vec();

    // Upsert three rows; the acknowledged id range must match the local
    // mirror's append, and a search submitted after the ack must see them.
    let rows = randn(3, d, &mut rng(78)).scale(0.4);
    let (start, end) = client.upsert(d, rows.as_slice()).unwrap();
    let local_range = mirror.append(&rows);
    assert_eq!((start, end), (local_range.start as u64, local_range.end as u64));
    assert_hits_match(&client.search(&q, 10).unwrap(), &adc_search(&mirror, &q, 10));

    // Swap-remove two items (one from the middle, one freshly upserted);
    // the moved-id acknowledgements and all later searches must agree with
    // the mirror.
    for id in [5u64, start] {
        let moved = client.delete(id).unwrap();
        let local_moved = mirror.swap_remove(id as usize);
        assert_eq!(moved, local_moved.map(|m| m as u64));
        assert_hits_match(&client.search(&q, 10).unwrap(), &adc_search(&mirror, &q, 10));
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.items, mirror.len() as u64);
    assert_eq!(stats.upserts, 1);
    assert_eq!(stats.deletes, 2);
    assert_eq!(stats.epoch, 3);
    server.shutdown();
}

#[test]
fn restarted_server_reloads_latest_snapshot_and_answers_identically() {
    let d = 16;
    let dir = tmp_dir("restart");
    let base_path = dir.join("base.bin");
    let snap_path = dir.join("live.snap");
    let index = synth_index(150, 3, 24, d, 13);
    std::fs::write(&base_path, serialize_index(&index)).unwrap();

    let q: Vec<f32> = randn(1, d, &mut rng(88)).into_vec();

    // First server life: mutate, snapshot, record answers, then go down.
    let first_answers = {
        let server = Server::start(
            index,
            ServeConfig {
                snapshot_path: Some(snap_path.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client =
            ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5)).unwrap();
        let rows = randn(4, d, &mut rng(89)).scale(0.4);
        client.upsert(d, rows.as_slice()).unwrap();
        client.delete(3).unwrap();
        let epoch = client.snapshot().unwrap();
        assert_eq!(epoch, 2);
        let answers = client.search(&q, 12).unwrap();
        server.shutdown(); // the durable state is the snapshot, not RAM
        answers
    };

    // Restart from disk: the startup loader must prefer the snapshot over
    // the stale base image and answer bit-for-bit as before the restart.
    let (reloaded, from_snapshot) =
        load_index_with_snapshot(Some(&base_path), Some(&snap_path)).unwrap();
    assert!(from_snapshot, "restart must load the newer snapshot, not the base image");
    assert_eq!(reloaded.len(), 153); // 150 + 4 upserted - 1 deleted
    let server = Server::start(reloaded, ServeConfig::default()).unwrap();
    let mut client =
        ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5)).unwrap();
    let second_answers = client.search(&q, 12).unwrap();
    assert_eq!(first_answers.len(), second_answers.len());
    for (a, b) in first_answers.iter().zip(&second_answers) {
        assert_eq!(a.0, b.0, "hit ids differ across restart");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "score bits differ across restart");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Raw-socket search submission that does not wait for the response, so
/// the test can hold multiple searches in the server's queue at once.
fn submit_search_raw(addr: std::net::SocketAddr, query: &[f32], k: u32) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let req = Request::Search { k, query: query.to_vec() };
    write_frame(&mut stream, &req.encode()).unwrap();
    stream
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = read_frame(stream).unwrap().expect("server closed connection");
    Response::decode(&payload).unwrap()
}

#[test]
fn overload_returns_typed_refusal_not_a_hang() {
    let d = 16;
    let index = synth_index(100, 3, 24, d, 14);
    // Trigger thresholds no load here can reach: admitted jobs stay queued
    // until the deadline, so admission outcomes are fully deterministic.
    let server = Server::start(
        index,
        ServeConfig {
            queue_cap: 4,
            max_batch: 64,
            max_delay: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let q: Vec<f32> = randn(1, d, &mut rng(99)).into_vec();

    let mut stats_probe = ServeClient::connect_with_retry(addr, Duration::from_secs(5)).unwrap();
    // Fill the queue to capacity, confirming occupancy after each submit so
    // the refusals below cannot race with handler scheduling.
    let mut queued = Vec::new();
    for i in 0..4 {
        queued.push(submit_search_raw(addr, &q, 5));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = stats_probe.stats().unwrap();
            if stats.queue_len == (i + 1) as u64 {
                break;
            }
            assert!(Instant::now() < deadline, "queue never reached {} jobs", i + 1);
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Queue full: the next submissions must be refused immediately with the
    // typed Overloaded response — never block, never drop the connection.
    for _ in 0..2 {
        let mut conn = submit_search_raw(addr, &q, 5);
        assert_eq!(read_response(&mut conn), Response::Overloaded);
    }

    // The admitted four still complete (deadline drain) with real results.
    for conn in &mut queued {
        match read_response(conn) {
            Response::Search { hits, .. } => assert_eq!(hits.len(), 5),
            other => panic!("queued search got {other:?}"),
        }
    }
    let stats = stats_probe.stats().unwrap();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.searches, 4);
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_bad_request() {
    let d = 16;
    let index = synth_index(80, 3, 24, d, 15);
    let server = Server::start(index, ServeConfig::default()).unwrap();
    let mut client =
        ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5)).unwrap();

    // Wrong query dimensionality.
    let long = vec![0.1f32; d + 3];
    match client.search(&long, 5) {
        Err(lightlt::serve::ServeError::BadRequest(m)) => assert!(m.contains("dimension")),
        other => panic!("dim mismatch got {other:?}"),
    }
    // k == 0.
    let ok_dim = vec![0.1f32; d];
    match client.search(&ok_dim, 0) {
        Err(lightlt::serve::ServeError::BadRequest(m)) => assert!(m.contains("k must be")),
        other => panic!("k = 0 got {other:?}"),
    }
    // Upsert payload not a multiple of dim.
    let ragged = vec![0.0f32; d + 1];
    match client.upsert(d, &ragged) {
        Err(lightlt::serve::ServeError::BadRequest(_)) => {}
        other => panic!("ragged upsert got {other:?}"),
    }
    // Delete out of bounds.
    match client.delete(10_000) {
        Err(lightlt::serve::ServeError::BadRequest(m)) => assert!(m.contains("out of bounds")),
        other => panic!("oob delete got {other:?}"),
    }
    // Snapshot without a configured snapshot path.
    match client.snapshot() {
        Err(lightlt::serve::ServeError::BadRequest(m)) => assert!(m.contains("snapshot")),
        other => panic!("pathless snapshot got {other:?}"),
    }
    // A typed refusal must not poison the connection: the same client gets
    // real results afterwards.
    let q: Vec<f32> = randn(1, d, &mut rng(16)).into_vec();
    assert_eq!(client.search(&q, 5).unwrap().len(), 5);

    let stats = client.stats().unwrap();
    assert!(stats.rejected >= 4);
    server.shutdown();
}

#[test]
fn shutdown_request_stops_the_server() {
    let index = synth_index(60, 3, 24, 16, 17);
    let server = Server::start(index, ServeConfig::default()).unwrap();
    let mut client =
        ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5)).unwrap();
    client.shutdown().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !server.stop_requested() {
        assert!(Instant::now() < deadline, "shutdown request never observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
}
