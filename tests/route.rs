//! Integration suite for lt-route, the IVF-style coarse routing layer.
//!
//! The contract mirrors the sharding one: routing is a *deployment* knob
//! until `nprobe` drops below `nlist` — at full probe depth the routed
//! search must be bitwise identical to the exhaustive scan, at any thread
//! count, through any scan backend. Training and online maintenance must
//! both be pure functions of the corpus, so a crashed server (or a second
//! machine) re-derives the exact same partitioning.

use lightlt::prelude::*;
use lightlt_core::persist::{deserialize_routed_index, serialize_index, serialize_routed_index};
use lightlt_core::route::{RoutedIndex, DEFAULT_TRAIN_SEED};
use lightlt_core::search::adc_search_batch_with_backend;
use lt_linalg::random::{randn, rng};
use lt_linalg::scan::BackendKind;
use lt_linalg::Matrix;

/// Synthetic index at an arbitrary (n, M, K) — same fixture as the scan
/// engine suite.
fn synth_index(n: usize, m: usize, k: usize, d: usize, metric: Metric, seed: u64) -> QuantizedIndex {
    let mut r = rng(seed);
    let codebooks: Vec<Matrix> = (0..m).map(|_| randn(k, d, &mut r).scale(0.3)).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let ids: Vec<u16> = (0..n * m)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize % k) as u16
        })
        .collect();
    let codes = Codes::new(ids, m);
    let norms = (0..n)
        .map(|i| {
            let mut recon = vec![0.0f32; d];
            for (level, &id) in codes.item(i).iter().enumerate() {
                for (v, &c) in recon.iter_mut().zip(codebooks[level].row(id as usize)) {
                    *v += c;
                }
            }
            lt_linalg::gemm::dot(&recon, &recon)
        })
        .collect();
    QuantizedIndex::from_parts(codebooks, codes, norms, metric, d, k)
}

fn hit_bits(hits: &[Vec<lt_linalg::Scored>]) -> Vec<Vec<(usize, u32)>> {
    hits.iter()
        .map(|q| q.iter().map(|s| (s.index, s.score.to_bits())).collect())
        .collect()
}

#[test]
fn full_probe_routed_search_is_bitwise_identical_to_exhaustive() {
    let d = 12;
    for metric in [Metric::NegSquaredL2, Metric::InnerProduct] {
        let idx = synth_index(900, 3, 24, d, metric, 31);
        let routed = RoutedIndex::from_index(&idx, 7, DEFAULT_TRAIN_SEED);
        let queries = randn(6, d, &mut rng(32)).scale(0.4);
        for backend in [BackendKind::F32, BackendKind::U8 { rerank: Some(usize::MAX) }] {
            let engine = backend.create();
            let baseline = {
                let _serial = lightlt::runtime::scoped_threads(1);
                hit_bits(&adc_search_batch_with_backend(&idx, engine.as_ref(), &queries, 10))
            };
            for threads in [1usize, 4] {
                let _width = lightlt::runtime::scoped_threads(threads);
                // nprobe == nlist (and anything above, which clamps) scans
                // every partition: the sharded-merge argument makes the
                // fold byte-equal to the flat scan.
                let got = hit_bits(&routed.search_batch(engine.as_ref(), &queries, 10, 7));
                assert_eq!(got, baseline, "{metric:?} {backend} threads={threads}");
            }
        }
    }
}

#[test]
fn training_is_deterministic_across_thread_counts() {
    let idx = synth_index(600, 3, 16, 10, Metric::NegSquaredL2, 33);
    let baseline = {
        let _serial = lightlt::runtime::scoped_threads(1);
        RoutedIndex::from_index(&idx, 5, DEFAULT_TRAIN_SEED)
    };
    for threads in [2usize, 4] {
        let _width = lightlt::runtime::scoped_threads(threads);
        let again = RoutedIndex::from_index(&idx, 5, DEFAULT_TRAIN_SEED);
        let a: Vec<u32> = baseline.centroids().as_slice().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = again.centroids().as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b, "centroid bits diverged at threads={threads}");
        assert_eq!(baseline.assignments(), again.assignments(), "threads={threads}");
    }
}

#[test]
fn online_mutations_match_deterministic_rebuild() {
    let d = 10;
    let idx = synth_index(300, 3, 16, d, Metric::NegSquaredL2, 34);
    let mut routed = RoutedIndex::from_index(&idx, 6, DEFAULT_TRAIN_SEED);
    let mut mirror = idx.clone();

    // Interleave appends and swap-removes, keeping a flat mirror under the
    // exact same schedule. The routed overlay must report the same ids and
    // relabellings as the flat contract at every step.
    let fresh = randn(20, d, &mut rng(35)).scale(0.4);
    for i in 0..fresh.rows() {
        let (codes, norm_sq) = mirror.encode_item(fresh.row(i));
        let flat_id = mirror.push_encoded(&codes, norm_sq);
        let routed_id = routed.push_encoded(&codes, norm_sq);
        assert_eq!(routed_id, flat_id);
        if i % 3 == 2 {
            let victim = (i * 37) % mirror.len();
            assert_eq!(routed.swap_remove(victim), mirror.swap_remove(victim));
        }
    }
    assert_eq!(routed.len(), mirror.len());

    // A deterministic mirror that never saw the mutation stream — rebuilt
    // from the final flat corpus under the same centroids — lands on the
    // identical partitioning and the identical serialized image. This is
    // the recovery contract: restart-time retraining on recovered state
    // reproduces what incremental maintenance built.
    let rebuilt = RoutedIndex::from_assignable(&mirror, routed.centroids().clone());
    assert_eq!(routed.assignments(), rebuilt.assignments());
    assert_eq!(serialize_index(&routed.flatten()), serialize_index(&mirror));
    assert_eq!(serialize_routed_index(&routed), serialize_routed_index(&rebuilt));
}

#[test]
fn routed_image_roundtrips_with_identical_search_results() {
    let d = 8;
    let idx = synth_index(400, 3, 16, d, Metric::NegSquaredL2, 36);
    let routed = RoutedIndex::from_index(&idx, 5, DEFAULT_TRAIN_SEED);
    let reloaded = deserialize_routed_index(&serialize_routed_index(&routed))
        .expect("routed image roundtrip");
    assert_eq!(reloaded.nlist(), routed.nlist());
    assert_eq!(reloaded.assignments(), routed.assignments());
    let queries = randn(4, d, &mut rng(37)).scale(0.4);
    let engine = BackendKind::F32.create();
    for nprobe in [1usize, 2, 5] {
        assert_eq!(
            hit_bits(&routed.search_batch(engine.as_ref(), &queries, 9, nprobe)),
            hit_bits(&reloaded.search_batch(engine.as_ref(), &queries, 9, nprobe)),
            "nprobe={nprobe}"
        );
    }
}
