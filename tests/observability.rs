//! Integration suite for lt-obs: the observability layer must be
//! deterministic, genuinely zero-cost when disabled, and faithful over the
//! wire.
//!
//! Three properties are pinned here that the crate-level unit tests
//! cannot cover alone:
//!
//! 1. **Thread-width invariance** — recording the same multiset of values
//!    through the real `lt_runtime` pool at widths 1/2/4/8 yields metric
//!    snapshots whose *wire encodings* are bitwise identical.
//! 2. **Disabled-mode inertness** — with the toggle off, instrumented hot
//!    paths (runtime pool, ADC scan) leave the global registry untouched
//!    and write no events.
//! 3. **End-to-end serving metrics** — a live server answers the
//!    versioned `Metrics` request with ordered finite quantiles, refusal
//!    counters, and a queue-wait maximum that agrees with the always-on
//!    `Stats` field; unknown opcodes get a typed `BadRequest` and leave
//!    the connection usable (legacy-client safety).

use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use lightlt::obs::{self as obs, MetricValue, Registry};
use lightlt::prelude::*;
use lightlt::serve::protocol::{read_frame, write_frame, Request, Response};
use lightlt::serve::{ServeClient, ServeConfig, Server, METRICS_VERSION};
use lightlt_core::search::adc_search_batch;
use lt_linalg::random::{randn, rng};
use lt_linalg::Matrix;

/// The lt-obs toggle and event sink are process-global; tests that flip
/// them are serialized through this lock (poison-tolerant: an earlier
/// panicking test must not cascade).
fn toggle_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|p| p.into_inner())
}

/// Same synthetic-index construction as the serve suite: observability
/// does not depend on how codewords were trained.
fn synth_index(n: usize, m: usize, k: usize, d: usize, seed: u64) -> QuantizedIndex {
    let mut r = rng(seed);
    let codebooks: Vec<Matrix> = (0..m).map(|_| randn(k, d, &mut r).scale(0.3)).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let ids: Vec<u16> = (0..n * m)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize % k) as u16
        })
        .collect();
    let codes = Codes::new(ids, m);
    let norms = (0..n)
        .map(|i| {
            let mut recon = vec![0.0f32; d];
            for (level, &id) in codes.item(i).iter().enumerate() {
                for (v, &c) in recon.iter_mut().zip(codebooks[level].row(id as usize)) {
                    *v += c;
                }
            }
            lt_linalg::gemm::dot(&recon, &recon)
        })
        .collect();
    QuantizedIndex::from_parts(codebooks, codes, norms, Metric::NegSquaredL2, d, k)
}

#[test]
fn merged_snapshots_encode_bitwise_identically_across_thread_widths() {
    let _guard = toggle_lock();
    obs::set_enabled(true);

    let mut encodings: Vec<Vec<u8>> = Vec::new();
    for &width in &[1usize, 2, 4, 8] {
        let _width = lt_runtime::scoped_threads(width);
        let reg = Registry::new();
        let hist = reg.histogram("t.lat_us");
        let count = reg.counter("t.items");
        let load = reg.gauge("t.load");
        // Record a fixed multiset through the real worker pool. The
        // chunking grid is width-independent, so the recorded values are
        // the same multiset at every width; only the shard assignment
        // (and thread interleaving) differs.
        lt_runtime::parallel_map_chunks(1_000, 64, |range| {
            for v in range.clone() {
                hist.record(((v * v) % 4096) as u64);
                count.inc();
            }
            load.add(range.len() as i64);
            range.len()
        });
        let encoded =
            Response::Metrics { version: METRICS_VERSION, snapshot: reg.snapshot() }.encode();
        encodings.push(encoded);
    }
    obs::set_enabled(false);

    for (i, e) in encodings.iter().enumerate().skip(1) {
        assert_eq!(
            e, &encodings[0],
            "metrics wire encoding differs between width 1 and width {}",
            [1, 2, 4, 8][i]
        );
    }
}

#[test]
fn disabled_mode_leaves_the_global_registry_untouched() {
    let _guard = toggle_lock();
    obs::set_enabled(false);

    let before = Registry::global().snapshot();
    // Drive both instrumented hot paths hard enough that any leak would
    // show: the runtime pool and the LUT-build + scan split.
    lt_runtime::parallel_map_chunks(512, 32, |range| range.len());
    let index = synth_index(300, 3, 16, 16, 21);
    let queries = randn(8, 16, &mut rng(22)).scale(0.5);
    let _ = adc_search_batch(&index, &queries, 5);
    let after = Registry::global().snapshot();

    assert_eq!(before, after, "disabled-mode hot paths mutated the registry");
}

#[test]
fn serving_metrics_report_activity_with_ordered_finite_quantiles() {
    let _guard = toggle_lock();
    let d = 16;
    let index = synth_index(400, 3, 24, d, 31);
    let server = Server::start(
        index,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5))
        .unwrap();

    let searches = 20;
    let queries = randn(searches, d, &mut rng(32)).scale(0.5);
    for i in 0..searches {
        client.search(queries.row(i), 5).unwrap();
    }

    let (version, snap) = client.metrics().unwrap();
    assert_eq!(version, METRICS_VERSION);

    let service = snap.histogram("serve.service_us").expect("serve.service_us missing");
    assert!(service.count >= searches as u64, "service_us count {} < {searches}", service.count);
    let (p50, p95, p99) =
        (service.quantile(0.50), service.quantile(0.95), service.quantile(0.99));
    assert!(p50.is_finite() && p95.is_finite() && p99.is_finite());
    assert!(p50 <= p95 && p95 <= p99, "quantiles unordered: {p50} {p95} {p99}");

    let queue_wait = snap.histogram("serve.queue_wait_us").expect("serve.queue_wait_us missing");
    assert!(queue_wait.count >= searches as u64);
    let batch_size = snap.histogram("serve.batch_size").expect("serve.batch_size missing");
    assert!(batch_size.count >= 1);
    match snap.get("serve.connections") {
        Some(MetricValue::Gauge(v)) => assert!(*v >= 1, "live connection not gauged: {v}"),
        other => panic!("serve.connections missing or wrong kind: {other:?}"),
    }

    // The always-on Stats maximum and the histogram maximum observe the
    // same drain events, so with metrics enabled they must agree.
    let stats = client.stats().unwrap();
    assert_eq!(stats.max_queue_wait_us, queue_wait.max);

    // The same snapshot renders to Prometheus text with full series.
    let text = snap.render_prometheus();
    assert!(text.contains("# TYPE serve_service_us histogram"));
    assert!(text.contains("serve_service_us_count"));

    server.shutdown();
    obs::set_enabled(false);
}

#[test]
fn unknown_opcode_gets_typed_bad_request_and_keeps_the_connection() {
    let _guard = toggle_lock();
    let index = synth_index(200, 3, 16, 16, 41);
    let server = Server::start(index, ServeConfig::default()).unwrap();

    // A "future" or corrupted client frame: valid framing, unknown opcode.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut stream, &[0x63, 1, 2, 3]).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("server dropped the connection");
    assert!(
        matches!(Response::decode(&payload).unwrap(), Response::BadRequest { .. }),
        "unknown opcode must refuse, not hang or drop"
    );

    // The same connection still serves well-formed requests afterwards.
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("connection unusable after refusal");
    assert!(matches!(Response::decode(&payload).unwrap(), Response::Stats(_)));

    // And the refusal was counted.
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let (_, snap) = client.metrics().unwrap();
    assert!(snap.counter("serve.refused_bad_request") >= 1);

    server.shutdown();
    obs::set_enabled(false);
}

#[test]
fn trace_span_structure_is_invariant_across_threads_and_shards() {
    // The same request through the traced serve pipeline must produce the
    // same multiset of (stage, shard, items, reranked) spans at any
    // runtime width, with exactly one shard-scan span per shard. Only the
    // timings may differ. (Within one (stage, shard) pair span order is
    // timing-dependent, hence the sorted-multiset comparison.)
    let _guard = toggle_lock();
    use lightlt::obs::trace;
    for &shards in &[1usize, 4] {
        let mut reference: Option<Vec<(u8, u32, u64, u64)>> = None;
        for &width in &[1usize, 4] {
            let _w = lt_runtime::scoped_threads(width);
            trace::reset_reservoir();
            let d = 16;
            let index = synth_index(240, 3, 16, d, 61);
            let server = Server::start(
                index,
                ServeConfig {
                    shards,
                    max_batch: 4,
                    max_delay: Duration::from_millis(1),
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let mut client =
                ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5))
                    .unwrap();
            let queries = randn(1, d, &mut rng(62)).scale(0.5);
            let (hits, trace_id) = client.search_traced(queries.row(0), 5).unwrap();
            assert_eq!(hits.len(), 5);
            let trace_id = trace_id.expect("tracing is on by default: reply must carry an id");
            let traces = client.traces().unwrap();
            let t = traces
                .iter()
                .find(|t| t.id == trace_id)
                .unwrap_or_else(|| panic!("trace {trace_id} not in the reservoir"));
            assert!(t.total_us > 0);
            let scans =
                t.spans.iter().filter(|s| s.stage == trace::stage::SHARD_SCAN).count();
            assert_eq!(scans, shards, "one shard-scan span per shard (shards={shards})");
            let mut structure: Vec<(u8, u32, u64, u64)> =
                t.spans.iter().map(|s| (s.stage, s.shard, s.items, s.reranked)).collect();
            structure.sort_unstable();
            match &reference {
                None => reference = Some(structure),
                Some(r) => assert_eq!(
                    r, &structure,
                    "span structure differs at shards={shards} width={width}"
                ),
            }
            server.shutdown();
        }
    }
    obs::set_trace_enabled(false);
    obs::set_enabled(false);
}

#[test]
fn disabled_tracing_is_inert() {
    // With metrics and tracing both off, a served search must not touch
    // the trace arena (no trace started), must not assign a wire trace
    // id, and must leave the Metrics response bytes identical to the
    // pre-traffic encoding.
    let _guard = toggle_lock();
    use lightlt::obs::trace;
    obs::set_enabled(false);
    let d = 16;
    let index = synth_index(200, 3, 16, d, 71);
    let server = Server::start(
        index,
        ServeConfig { metrics: false, trace: false, ..ServeConfig::default() },
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut stream, &Request::Metrics.encode()).unwrap();
    let metrics_before = read_frame(&mut stream).unwrap().expect("metrics reply");
    let started_before = trace::traces_started();

    let mut client =
        ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5)).unwrap();
    let queries = randn(6, d, &mut rng(72)).scale(0.5);
    for i in 0..6 {
        let (hits, trace_id) = client.search_traced(queries.row(i), 3).unwrap();
        assert_eq!(hits.len(), 3);
        assert!(trace_id.is_none(), "tracing-off reply must carry no trace id");
    }

    assert_eq!(
        trace::traces_started(),
        started_before,
        "tracing-off searches must never touch the trace arena"
    );
    write_frame(&mut stream, &Request::Metrics.encode()).unwrap();
    let metrics_after = read_frame(&mut stream).unwrap().expect("metrics reply");
    assert_eq!(
        metrics_before, metrics_after,
        "disabled-mode serving mutated the metrics registry"
    );
    server.shutdown();
}

#[test]
fn event_sink_captures_batch_executions_as_jsonl() {
    let _guard = toggle_lock();
    let dir = std::env::temp_dir().join(format!("lt_obs_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    obs::init_events(&path).unwrap();

    let d = 16;
    let index = synth_index(200, 3, 16, d, 51);
    let server = Server::start(index, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect_with_retry(server.local_addr(), Duration::from_secs(5))
        .unwrap();
    let queries = randn(5, d, &mut rng(52)).scale(0.5);
    for i in 0..5 {
        client.search(queries.row(i), 3).unwrap();
    }
    server.shutdown();
    obs::flush_events();

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(!text.is_empty(), "no events written");
    let mut ts_prev = 0u64;
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
        assert!(line.contains("\"ts_us\":"), "missing timestamp: {line}");
        let ts: u64 = line
            .split("\"ts_us\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("unparsable ts_us in {line}"));
        assert!(ts >= ts_prev, "timestamps must be monotonic");
        ts_prev = ts;
    }
    assert!(
        text.lines().any(|l| l.contains("\"type\":\"batch_execute\"")),
        "no batch_execute event recorded"
    );
    assert!(
        text.lines().any(|l| l.contains("\"type\":\"scan_block\"")),
        "no scan_block event recorded"
    );
    obs::set_enabled(false);
    let _ = std::fs::remove_dir_all(&dir);
}
