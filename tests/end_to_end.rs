//! End-to-end integration: dataset synthesis → training → indexing →
//! ADC search → MAP evaluation, spanning every workspace crate.

use lightlt::prelude::*;
use lightlt_core::search::{adc_rank_all, exhaustive_rank_all};
use lt_data::synth::{generate_split, Domain};

fn task(seed: u64) -> RetrievalSplit {
    generate_split(&SynthConfig {
        num_classes: 6,
        dim: 24,
        pi1: 60,
        imbalance_factor: 12.0,
        n_query: 30,
        n_database: 300,
        domain: Domain::ImageLike,
        intra_class_std: None,
        seed,
    })
}

fn config() -> LightLtConfig {
    LightLtConfig {
        input_dim: 24,
        backbone_hidden: 48,
        embed_dim: 16,
        num_classes: 6,
        num_codebooks: 4,
        num_codewords: 16,
        ffn_hidden: 24,
        epochs: 18,
        batch_size: 32,
        ensemble_size: 1,
        seed: 5,
        ..Default::default()
    }
}

/// MAP of a fixed arbitrary ranking — the "chance" floor for this task.
fn chance_map(split: &RetrievalSplit) -> f64 {
    let fixed: Vec<usize> = (0..split.database.len()).collect();
    let rankings: Vec<Vec<usize>> = (0..split.query.len()).map(|_| fixed.clone()).collect();
    mean_average_precision(&rankings, &split.query.labels, &split.database.labels)
}

#[test]
fn full_pipeline_beats_chance_by_wide_margin() {
    let split = task(1);
    let result = train_ensemble(&config(), &split.train).expect("training failed");

    let db_emb = result.model.embed(&result.store, &split.database.features);
    let q_emb = result.model.embed(&result.store, &split.query.features);
    let index = QuantizedIndex::build(&result.model.dsq, &result.store, &db_emb);

    let rankings: Vec<Vec<usize>> =
        (0..q_emb.rows()).map(|i| adc_rank_all(&index, q_emb.row(i))).collect();
    let map = mean_average_precision(&rankings, &split.query.labels, &split.database.labels);
    let chance = chance_map(&split);
    assert!(
        map > chance + 0.2,
        "trained MAP {map:.3} should beat chance {chance:.3} by a wide margin"
    );
}

#[test]
fn quantized_search_tracks_dense_search() {
    // ADC over 16-bit codes should retain most of the dense-embedding MAP.
    let split = task(2);
    let result = train_ensemble(&config(), &split.train).expect("training failed");
    let db_emb = result.model.embed(&result.store, &split.database.features);
    let q_emb = result.model.embed(&result.store, &split.query.features);
    let index = QuantizedIndex::build(&result.model.dsq, &result.store, &db_emb);

    let adc: Vec<Vec<usize>> =
        (0..q_emb.rows()).map(|i| adc_rank_all(&index, q_emb.row(i))).collect();
    let dense: Vec<Vec<usize>> = (0..q_emb.rows())
        .map(|i| exhaustive_rank_all(&db_emb, q_emb.row(i), Metric::NegSquaredL2))
        .collect();
    let map_adc = mean_average_precision(&adc, &split.query.labels, &split.database.labels);
    let map_dense = mean_average_precision(&dense, &split.query.labels, &split.database.labels);
    assert!(
        map_adc > 0.7 * map_dense,
        "quantization lost too much: ADC {map_adc:.3} vs dense {map_dense:.3}"
    );
}

#[test]
fn index_storage_beats_dense_storage() {
    let split = task(3);
    let result = train_ensemble(&config(), &split.train).expect("training failed");
    let db_emb = result.model.embed(&result.store, &split.database.features);
    let index = QuantizedIndex::build(&result.model.dsq, &result.store, &db_emb);
    let dense_bytes = 4 * db_emb.rows() * db_emb.cols();
    assert!(
        index.storage_bytes() < dense_bytes,
        "index {} bytes should undercut dense {} bytes",
        index.storage_bytes(),
        dense_bytes
    );
}

#[test]
fn codes_are_stable_across_encodes() {
    let split = task(4);
    let result = train_ensemble(&config(), &split.train).expect("training failed");
    let a = result.model.encode(&result.store, &split.query.features);
    let b = result.model.encode(&result.store, &split.query.features);
    assert_eq!(a, b);
    assert_eq!(a.len(), split.query.len());
    assert_eq!(a.num_codebooks(), 4);
}

#[test]
fn classifier_learns_head_and_some_tail() {
    let split = task(5);
    let result = train_ensemble(&config(), &split.train).expect("training failed");
    let acc = result.model.accuracy(
        &result.store,
        &split.train.features,
        &split.train.labels,
    );
    assert!(acc > 0.6, "train accuracy only {acc:.3}");
}
