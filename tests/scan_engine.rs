//! Integration suite for the cache-conscious ADC scan engine.
//!
//! The engine (level-major packed codes, GEMM-batched LUTs, blocked
//! accumulation) is a pure layout/throughput change: every test here pins
//! *bitwise* agreement with the retained scalar item-major reference —
//! across metrics, code widths (u8 for K ≤ 256, u16 above), thread
//! counts, persistence round-trips (including the legacy item-major image
//! formats), and incremental index maintenance (which must never trigger
//! a full code-table rebuild).

use lightlt::prelude::*;
use lightlt_core::persist::{deserialize_index, serialize_index};
use lightlt_core::search::{adc_rank_all, adc_rank_all_batch, adc_search, adc_search_batch,
    adc_search_with, SearchScratch};
use lt_linalg::random::{randn, rng};
use lt_linalg::scan::full_rebuild_count;
use lt_linalg::Matrix;

/// Builds an index with synthetic codebooks/codes at an arbitrary (n, M, K)
/// — large K exercises the u16 level streams without training a huge model.
fn synth_index(n: usize, m: usize, k: usize, d: usize, metric: Metric, seed: u64) -> QuantizedIndex {
    let mut r = rng(seed);
    let codebooks: Vec<Matrix> = (0..m).map(|_| randn(k, d, &mut r).scale(0.3)).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let ids: Vec<u16> = (0..n * m)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize % k) as u16
        })
        .collect();
    let codes = Codes::new(ids, m);
    let norms = (0..n)
        .map(|i| {
            let mut recon = vec![0.0f32; d];
            for (level, &id) in codes.item(i).iter().enumerate() {
                for (v, &c) in recon.iter_mut().zip(codebooks[level].row(id as usize)) {
                    *v += c;
                }
            }
            lt_linalg::gemm::dot(&recon, &recon)
        })
        .collect();
    QuantizedIndex::from_parts(codebooks, codes, norms, metric, d, k)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn engine_scores_bitwise_match_reference_across_widths_and_metrics() {
    let d = 16;
    // (K = 24 → u8 streams, K = 300 → u16 streams); both metrics.
    for &(k, n) in &[(24usize, 700usize), (300, 450)] {
        for metric in [Metric::NegSquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let idx = synth_index(n, 3, k, d, metric, 5);
            assert_eq!(idx.level_codes().uses_u8(), k <= 256);
            let q: Vec<f32> = randn(1, d, &mut rng(6)).into_vec();
            let lut = idx.build_lut(&q);
            let qn = lt_linalg::gemm::dot(&q, &q);
            let mut engine = Vec::new();
            let mut reference = Vec::new();
            for threads in [1usize, 4] {
                let _w = lightlt::runtime::scoped_threads(threads);
                idx.scores_with_lut(&lut, qn, &mut engine);
                idx.scores_with_lut_reference(&lut, qn, &mut reference);
                assert_eq!(
                    bits(&engine),
                    bits(&reference),
                    "K={k} {metric:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn batch_gemm_luts_bitwise_match_per_query_luts() {
    let d = 24;
    for &k in &[16usize, 300] {
        let idx = synth_index(120, 4, k, d, Metric::NegSquaredL2, 9);
        let queries = randn(13, d, &mut rng(10)).scale(0.5);
        let luts = idx.build_lut_batch(&queries);
        assert_eq!(luts.rows(), queries.rows());
        assert_eq!(luts.cols(), 4 * k);
        for i in 0..queries.rows() {
            let single = idx.build_lut(queries.row(i));
            assert_eq!(bits(luts.row(i)), bits(&single), "query {i} K={k}");
        }
    }
}

#[test]
fn search_paths_agree_bitwise_with_scratch_reuse() {
    let d = 16;
    let idx = synth_index(800, 4, 32, d, Metric::NegSquaredL2, 13);
    let queries = randn(9, d, &mut rng(14)).scale(0.5);
    let mut scratch = SearchScratch::new();
    for threads in [1usize, 4] {
        let _w = lightlt::runtime::scoped_threads(threads);
        let batch = adc_search_batch(&idx, &queries, 10);
        let rank_batch = adc_rank_all_batch(&idx, &queries);
        for i in 0..queries.rows() {
            let single = adc_search(&idx, queries.row(i), 10);
            let reused = adc_search_with(&idx, queries.row(i), 10, &mut scratch);
            for (a, b) in single.iter().zip(&batch[i]) {
                assert_eq!(a.index, b.index, "threads={threads}");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            for (a, b) in single.iter().zip(&reused) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            assert_eq!(rank_batch[i], adc_rank_all(&idx, queries.row(i)), "threads={threads}");
        }
    }
}

#[test]
fn persisted_index_roundtrips_level_major_layout() {
    for &k in &[16usize, 300] {
        let idx = synth_index(150, 3, k, 12, Metric::NegSquaredL2, 21);
        let image = serialize_index(&idx);
        let restored = deserialize_index(&image).expect("roundtrip");
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.codes(), idx.codes(), "K={k}");
        assert_eq!(restored.level_codes().uses_u8(), idx.level_codes().uses_u8());
        let q: Vec<f32> = randn(1, 12, &mut rng(22)).into_vec();
        let a = adc_search(&idx, &q, 20);
        let b = adc_search(&restored, &q, 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}

#[test]
fn append_and_swap_remove_never_rebuild_the_code_table() {
    let d = 10;
    let idx_template = synth_index(400, 3, 16, d, Metric::NegSquaredL2, 31);
    // Rebuild through from_parts (counts one conversion), then assert the
    // incremental ops leave the counter untouched.
    let mut idx = idx_template;
    let before = full_rebuild_count();
    let extra = randn(3, d, &mut rng(32)).scale(0.3);
    let ids = idx.append(&extra);
    assert_eq!(ids, 400..403);
    assert_eq!(idx.len(), 403);
    let moved = idx.swap_remove(1);
    assert_eq!(moved, Some(402));
    assert_eq!(idx.len(), 402);
    assert_eq!(
        full_rebuild_count(),
        before,
        "append/swap_remove must maintain the level-major table in place"
    );
    // The maintained table still scores bitwise like the reference.
    let q: Vec<f32> = randn(1, d, &mut rng(33)).into_vec();
    let lut = idx.build_lut(&q);
    let qn = lt_linalg::gemm::dot(&q, &q);
    let (mut engine, mut reference) = (Vec::new(), Vec::new());
    idx.scores_with_lut(&lut, qn, &mut engine);
    idx.scores_with_lut_reference(&lut, qn, &mut reference);
    assert_eq!(bits(&engine), bits(&reference));
}
