//! Integration suite for the cache-conscious ADC scan engine.
//!
//! The engine (level-major packed codes, GEMM-batched LUTs, blocked
//! accumulation) is a pure layout/throughput change: every test here pins
//! *bitwise* agreement with the retained scalar item-major reference —
//! across metrics, code widths (u8 for K ≤ 256, u16 above), thread
//! counts, persistence round-trips (including the legacy item-major image
//! formats), and incremental index maintenance (which must never trigger
//! a full code-table rebuild).

use lightlt::prelude::*;
use lightlt_core::persist::{deserialize_index, serialize_index};
use lightlt_core::search::{adc_rank_all, adc_rank_all_batch, adc_search, adc_search_batch,
    adc_search_with, SearchScratch};
use lt_linalg::random::{randn, rng};
use lt_linalg::scan::full_rebuild_count;
use lt_linalg::Matrix;

/// Builds an index with synthetic codebooks/codes at an arbitrary (n, M, K)
/// — large K exercises the u16 level streams without training a huge model.
fn synth_index(n: usize, m: usize, k: usize, d: usize, metric: Metric, seed: u64) -> QuantizedIndex {
    let mut r = rng(seed);
    let codebooks: Vec<Matrix> = (0..m).map(|_| randn(k, d, &mut r).scale(0.3)).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let ids: Vec<u16> = (0..n * m)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize % k) as u16
        })
        .collect();
    let codes = Codes::new(ids, m);
    let norms = (0..n)
        .map(|i| {
            let mut recon = vec![0.0f32; d];
            for (level, &id) in codes.item(i).iter().enumerate() {
                for (v, &c) in recon.iter_mut().zip(codebooks[level].row(id as usize)) {
                    *v += c;
                }
            }
            lt_linalg::gemm::dot(&recon, &recon)
        })
        .collect();
    QuantizedIndex::from_parts(codebooks, codes, norms, metric, d, k)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn engine_scores_bitwise_match_reference_across_widths_and_metrics() {
    let d = 16;
    // (K = 24 → u8 streams, K = 300 → u16 streams); both metrics.
    for &(k, n) in &[(24usize, 700usize), (300, 450)] {
        for metric in [Metric::NegSquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let idx = synth_index(n, 3, k, d, metric, 5);
            assert_eq!(idx.level_codes().uses_u8(), k <= 256);
            let q: Vec<f32> = randn(1, d, &mut rng(6)).into_vec();
            let lut = idx.build_lut(&q);
            let qn = lt_linalg::gemm::dot(&q, &q);
            let mut engine = Vec::new();
            let mut reference = Vec::new();
            for threads in [1usize, 4] {
                let _w = lightlt::runtime::scoped_threads(threads);
                idx.scores_with_lut(&lut, qn, &mut engine);
                idx.scores_with_lut_reference(&lut, qn, &mut reference);
                assert_eq!(
                    bits(&engine),
                    bits(&reference),
                    "K={k} {metric:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn batch_gemm_luts_bitwise_match_per_query_luts() {
    let d = 24;
    for &k in &[16usize, 300] {
        let idx = synth_index(120, 4, k, d, Metric::NegSquaredL2, 9);
        let queries = randn(13, d, &mut rng(10)).scale(0.5);
        let luts = idx.build_lut_batch(&queries);
        assert_eq!(luts.rows(), queries.rows());
        assert_eq!(luts.cols(), 4 * k);
        for i in 0..queries.rows() {
            let single = idx.build_lut(queries.row(i));
            assert_eq!(bits(luts.row(i)), bits(&single), "query {i} K={k}");
        }
    }
}

#[test]
fn search_paths_agree_bitwise_with_scratch_reuse() {
    let d = 16;
    let idx = synth_index(800, 4, 32, d, Metric::NegSquaredL2, 13);
    let queries = randn(9, d, &mut rng(14)).scale(0.5);
    let mut scratch = SearchScratch::new();
    for threads in [1usize, 4] {
        let _w = lightlt::runtime::scoped_threads(threads);
        let batch = adc_search_batch(&idx, &queries, 10);
        let rank_batch = adc_rank_all_batch(&idx, &queries);
        for i in 0..queries.rows() {
            let single = adc_search(&idx, queries.row(i), 10);
            let reused = adc_search_with(&idx, queries.row(i), 10, &mut scratch);
            for (a, b) in single.iter().zip(&batch[i]) {
                assert_eq!(a.index, b.index, "threads={threads}");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            for (a, b) in single.iter().zip(&reused) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            assert_eq!(rank_batch[i], adc_rank_all(&idx, queries.row(i)), "threads={threads}");
        }
    }
}

#[test]
fn persisted_index_roundtrips_level_major_layout() {
    for &k in &[16usize, 300] {
        let idx = synth_index(150, 3, k, 12, Metric::NegSquaredL2, 21);
        let image = serialize_index(&idx);
        let restored = deserialize_index(&image).expect("roundtrip");
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.codes(), idx.codes(), "K={k}");
        assert_eq!(restored.level_codes().uses_u8(), idx.level_codes().uses_u8());
        let q: Vec<f32> = randn(1, 12, &mut rng(22)).into_vec();
        let a = adc_search(&idx, &q, 20);
        let b = adc_search(&restored, &q, 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}

#[test]
fn append_and_swap_remove_never_rebuild_the_code_table() {
    let d = 10;
    let idx_template = synth_index(400, 3, 16, d, Metric::NegSquaredL2, 31);
    // Rebuild through from_parts (counts one conversion), then assert the
    // incremental ops leave the counter untouched.
    let mut idx = idx_template;
    let before = full_rebuild_count();
    let extra = randn(3, d, &mut rng(32)).scale(0.3);
    let ids = idx.append(&extra);
    assert_eq!(ids, 400..403);
    assert_eq!(idx.len(), 403);
    let moved = idx.swap_remove(1);
    assert_eq!(moved, Some(402));
    assert_eq!(idx.len(), 402);
    assert_eq!(
        full_rebuild_count(),
        before,
        "append/swap_remove must maintain the level-major table in place"
    );
    // The maintained table still scores bitwise like the reference.
    let q: Vec<f32> = randn(1, d, &mut rng(33)).into_vec();
    let lut = idx.build_lut(&q);
    let qn = lt_linalg::gemm::dot(&q, &q);
    let (mut engine, mut reference) = (Vec::new(), Vec::new());
    idx.scores_with_lut(&lut, qn, &mut engine);
    idx.scores_with_lut_reference(&lut, qn, &mut reference);
    assert_eq!(bits(&engine), bits(&reference));
}

// ---------------------------------------------------------------------------
// Low-precision (u8) scan backend matrix — PR 8.
//
// The u8 backend quantizes the per-query LUT to 8 bits and accumulates in
// saturating integer lanes; these tests pin its contract at the public API:
// full re-rank restores bitwise identity with the exact engine, the
// un-reranked scan keeps recall@10 high, and neither shard count nor
// thread width moves a result.
// ---------------------------------------------------------------------------

use lightlt_core::index::split_modulo;
use lightlt_core::search::{adc_search_batch_sharded_with_backend, adc_search_batch_with_backend};
use lt_linalg::scan::{BackendKind, U8ScanBackend};

/// `(index, score bits)` pairs — the bitwise identity a backend result
/// either matches or does not.
fn hit_bits(hits: &[Vec<lt_linalg::Scored>]) -> Vec<Vec<(usize, u32)>> {
    hits.iter()
        .map(|q| q.iter().map(|s| (s.index, s.score.to_bits())).collect())
        .collect()
}

#[test]
fn u8_full_rerank_is_bitwise_identical_to_f32_across_metrics_and_k() {
    let d = 16;
    for &(k, n) in &[(16usize, 900usize), (300, 500)] {
        for metric in [Metric::NegSquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let idx = synth_index(n, 3, k, d, metric, 77);
            let queries = randn(5, d, &mut rng(78)).scale(0.5);
            for topk in [7usize, 2 * n] {
                let expect = adc_search_batch(&idx, &queries, topk);
                let rerank = U8ScanBackend::with_rerank(usize::MAX);
                let got = adc_search_batch_with_backend(&idx, &rerank, &queries, topk);
                assert_eq!(
                    hit_bits(&got),
                    hit_bits(&expect),
                    "K={k} {metric:?} topk={topk}"
                );
            }
        }
    }
}

#[test]
fn u8_unreranked_recall_at_10_stays_above_095() {
    let d = 24;
    for metric in [Metric::NegSquaredL2, Metric::InnerProduct] {
        let idx = synth_index(4_000, 4, 16, d, metric, 90);
        let queries = randn(24, d, &mut rng(91)).scale(0.5);
        let to_ids = |hits: Vec<Vec<lt_linalg::Scored>>| -> Vec<Vec<usize>> {
            hits.into_iter()
                .map(|q| q.into_iter().map(|s| s.index).collect())
                .collect()
        };
        let f32_top = to_ids(adc_search_batch(&idx, &queries, 10));
        let u8_top = to_ids(adc_search_batch_with_backend(
            &idx,
            &U8ScanBackend::new(),
            &queries,
            10,
        ));
        let recall = lt_eval::recall_vs_reference(&f32_top, &u8_top, 10);
        assert!(recall >= 0.95, "{metric:?}: u8 recall@10 = {recall}");
    }
}

#[test]
fn u8_results_are_invariant_across_shards_and_threads() {
    let d = 12;
    let idx = synth_index(800, 3, 16, d, Metric::NegSquaredL2, 101);
    let queries = randn(6, d, &mut rng(102)).scale(0.4);
    for backend in [
        BackendKind::U8 { rerank: None },
        BackendKind::U8 { rerank: Some(usize::MAX) },
    ] {
        let engine = backend.create();
        let baseline = {
            let _serial = lightlt::runtime::scoped_threads(1);
            hit_bits(&adc_search_batch_with_backend(&idx, engine.as_ref(), &queries, 9))
        };
        for shards in [1usize, 4] {
            let split = split_modulo(&idx, shards);
            let refs: Vec<&QuantizedIndex> = split.iter().collect();
            for threads in [1usize, 4] {
                let _width = lightlt::runtime::scoped_threads(threads);
                let got = hit_bits(&adc_search_batch_sharded_with_backend(
                    &refs,
                    engine.as_ref(),
                    &queries,
                    9,
                ));
                assert_eq!(got, baseline, "{backend} shards={shards} threads={threads}");
            }
        }
    }
}

#[test]
fn u8_survives_adversarial_lut_ranges() {
    let d = 8;
    // All-max: identical codebook rows collapse every LUT entry to one
    // value; the zero-range guard must reconstruct it exactly, so even the
    // un-reranked u8 scan is bitwise identical to f32.
    let mut r = rng(111);
    let row = randn(1, d, &mut r).scale(40.0).into_vec();
    let m = 3;
    let k = 16;
    let n = 600;
    let codebooks: Vec<Matrix> = (0..m)
        .map(|_| {
            let mut flat = Vec::with_capacity(k * d);
            for _ in 0..k {
                flat.extend_from_slice(&row);
            }
            Matrix::from_vec(k, d, flat)
        })
        .collect();
    let ids: Vec<u16> = (0..n * m).map(|i| (i % k) as u16).collect();
    let codes = Codes::new(ids, m);
    let norm = {
        let recon: Vec<f32> = row.iter().map(|&v| v * m as f32).collect();
        lt_linalg::gemm::dot(&recon, &recon)
    };
    let idx = QuantizedIndex::from_parts(
        codebooks,
        codes,
        vec![norm; n],
        Metric::NegSquaredL2,
        d,
        k,
    );
    let queries = randn(3, d, &mut rng(112)).scale(30.0);
    let expect = hit_bits(&adc_search_batch(&idx, &queries, 8));
    let got = hit_bits(&adc_search_batch_with_backend(
        &idx,
        &U8ScanBackend::new(),
        &queries,
        8,
    ));
    assert_eq!(got, expect, "constant (zero-range) LUT must be exact");

    // Negative-heavy neg-L2 at large magnitudes: huge norms push every
    // score far negative and stretch the LUT range. Scores must stay
    // finite and full re-rank must still restore bitwise identity.
    let wild = synth_index(700, 4, 16, d, Metric::NegSquaredL2, 113);
    let hot = randn(4, d, &mut rng(114)).scale(60.0);
    let exact = adc_search_batch(&wild, &hot, 9);
    let quant = adc_search_batch_with_backend(&wild, &U8ScanBackend::new(), &hot, 9);
    for q in &quant {
        for s in q {
            assert!(s.score.is_finite(), "saturation must not produce non-finite scores");
        }
    }
    let reranked =
        adc_search_batch_with_backend(&wild, &U8ScanBackend::with_rerank(usize::MAX), &hot, 9);
    assert_eq!(hit_bits(&reranked), hit_bits(&exact));
}
