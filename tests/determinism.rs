//! Thread-count determinism suite: every parallel kernel in the workspace
//! must produce results *bitwise identical* to its serial execution for any
//! runtime width. The parallel runtime chunks work by problem shape only
//! (never by thread count) and folds per-chunk results in chunk order, so
//! parallelism is purely a wall-clock knob — these tests pin that contract
//! for GEMM, k-means, DSQ batch encode, ADC batch search, PQ fitting, a
//! short training run, and a kill-and-resume cycle that crosses thread
//! counts.

use std::path::PathBuf;

use lightlt::core::fault::{FaultPlan, TrainError};
use lightlt::core::trainer::{resume, train_base_model, train_with_options, CheckpointSpec, TrainOptions};
use lightlt::core::LightLt;
use lightlt::prelude::*;
use lt_baselines::shallow::pq::Pq;
use lt_data::synth::{generate_split, Domain};
use lt_linalg::gemm::{matmul, matmul_a_bt, matmul_at_b};
use lt_linalg::kmeans::{kmeans, KMeansConfig};
use lt_linalg::random::{randn, rng};
use lt_tensor::ParamStore;

/// Runtime widths every kernel is checked against. Width 1 exercises the
/// serial fallback; the rest exercise genuinely concurrent schedules.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Runs `f` with the runtime pinned to `n` worker threads.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _width = lightlt::runtime::scoped_threads(n);
    f()
}

/// Asserts that `f` returns bitwise-equal results at every width in
/// [`WIDTHS`], using the serial run as the reference.
fn assert_width_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let reference = with_threads(1, &f);
    for &w in &WIDTHS[1..] {
        let got = with_threads(w, &f);
        assert_eq!(got, reference, "result differs at {w} threads");
    }
}

#[test]
fn gemm_is_thread_count_invariant() {
    // 128³ MACs clears the parallel-worthwhile gate, so the parallel panels
    // actually run at widths > 1.
    let a = randn(128, 96, &mut rng(1));
    let b = randn(96, 128, &mut rng(2));
    assert_width_invariant(|| matmul(&a, &b));
    assert_width_invariant(|| matmul_a_bt(&a, &a));
    assert_width_invariant(|| matmul_at_b(&a, &a));
}

#[test]
fn kmeans_is_thread_count_invariant() {
    let data = randn(512, 16, &mut rng(3));
    let cfg = KMeansConfig { k: 16, max_iters: 25, tol: 1e-4 };
    assert_width_invariant(|| {
        let fit = kmeans(&data, cfg, &mut rng(4));
        (fit.centroids, fit.assignments, fit.iterations)
    });
}

#[test]
fn dsq_batch_encode_is_thread_count_invariant() {
    let dim = 16;
    let mut store = ParamStore::new();
    let dsq = Dsq::new(
        &mut store,
        4,
        16,
        dim,
        24,
        CodebookTopology::DoubleSkip,
        0.2,
        Metric::NegSquaredL2,
        &mut rng(5),
    );
    let x = randn(512, dim, &mut rng(6)).scale(0.5);
    let codebooks = dsq.effective_codebooks(&store);
    assert_width_invariant(|| dsq.encode_with_codebooks(&codebooks, &x));
    let codes = dsq.encode_with_codebooks(&codebooks, &x);
    assert_width_invariant(|| dsq.decode_with_codebooks(&codebooks, &codes));
}

#[test]
fn adc_batch_search_is_thread_count_invariant() {
    let dim = 16;
    let mut store = ParamStore::new();
    let dsq = Dsq::new(
        &mut store,
        4,
        16,
        dim,
        24,
        CodebookTopology::DoubleSkip,
        0.2,
        Metric::NegSquaredL2,
        &mut rng(7),
    );
    let db = randn(400, dim, &mut rng(8)).scale(0.5);
    let index = QuantizedIndex::build(&dsq, &store, &db);
    let queries = randn(37, dim, &mut rng(9));
    assert_width_invariant(|| adc_search_batch(&index, &queries, 10));
}

#[test]
fn pq_fit_and_encode_are_thread_count_invariant() {
    let x = randn(256, 16, &mut rng(10));
    assert_width_invariant(|| {
        let pq = Pq::fit(&x, 4, 8, 11);
        pq.encode(&x)
    });
}

fn task() -> RetrievalSplit {
    generate_split(&SynthConfig {
        num_classes: 5,
        dim: 12,
        pi1: 40,
        imbalance_factor: 8.0,
        n_query: 15,
        n_database: 100,
        domain: Domain::ImageLike,
        intra_class_std: None,
        seed: 29,
    })
}

fn config() -> LightLtConfig {
    LightLtConfig {
        input_dim: 12,
        backbone_hidden: 20,
        embed_dim: 8,
        num_classes: 5,
        num_codebooks: 2,
        num_codewords: 8,
        ffn_hidden: 12,
        epochs: 4,
        batch_size: 16,
        learning_rate: 5e-3,
        ensemble_size: 1,
        seed: 31,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("lightlt_determinism_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_stores_identical(a: &ParamStore, b: &ParamStore) {
    assert!(a.schema_matches(b), "parameter schemas differ");
    for (id, p) in a.iter() {
        assert_eq!(
            p.value,
            *b.value(id),
            "parameter {} differs between the two runs",
            p.name
        );
    }
}

/// A short training run reaches bitwise-identical weights and epoch
/// histories at every runtime width.
#[test]
fn training_run_is_thread_count_invariant() {
    let split = task();
    let cfg = config();
    let (_, reference_store, reference_history) =
        with_threads(1, || train_base_model(&cfg, &split.train, 0).unwrap());
    for &w in &WIDTHS[1..] {
        let (_, store, history) =
            with_threads(w, || train_base_model(&cfg, &split.train, 0).unwrap());
        assert_eq!(history, reference_history, "epoch history differs at {w} threads");
        assert_stores_identical(&reference_store, &store);
    }
}

/// A run killed mid-training under one thread count and resumed under a
/// different one still matches the uninterrupted reference bitwise: the
/// checkpoint format carries no schedule state, and the kernels replay
/// identically at any width.
#[test]
fn kill_and_resume_crosses_thread_counts_bitwise() {
    let split = task();
    let cfg = config();
    let dir = tmpdir("cross_width_resume");

    let (_, reference_store, reference_history) =
        with_threads(1, || train_base_model(&cfg, &split.train, 0).unwrap());

    // Interrupted run at 1 thread, killed after epoch 2's checkpoint.
    with_threads(1, || {
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let opts = TrainOptions {
            checkpoint: Some(CheckpointSpec::new(&dir, "model")),
            fault_plan: FaultPlan::none().kill_after_epoch(2),
            ..TrainOptions::default()
        };
        match train_with_options(&model, &mut store, &split.train, &opts) {
            Err(TrainError::SimulatedKill { epoch: 2 }) => {}
            other => panic!("expected a simulated kill after epoch 2, got {other:?}"),
        }
    });

    // Resume at 4 threads.
    let (_, resumed_store, resumed_history) =
        with_threads(4, || resume(&split.train, &dir).expect("resume failed"));

    assert_eq!(resumed_history, reference_history, "epoch histories differ");
    assert_stores_identical(&reference_store, &resumed_store);
    let _ = std::fs::remove_dir_all(&dir);
}
