//! Cross-crate property-based tests (proptest) of the invariants DESIGN.md
//! §7 calls out.

use proptest::prelude::*;

use lightlt::prelude::*;
use lightlt_core::dsq::{Codes, Dsq};
use lightlt_core::search::adc_search;
use lt_data::zipf::{imbalance_factor, zipf_class_sizes};
use lt_linalg::random::{randn, rng};
use lt_linalg::topk::{top_k, top_k_by_sort};
use lt_tensor::ParamStore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zipf class sizes are monotone non-increasing, hit π₁ at the head,
    /// and realize the requested imbalance factor within rounding.
    #[test]
    fn zipf_sizes_monotone_and_calibrated(
        c in 2usize..60,
        pi1 in 50usize..2000,
        if_target in 2.0f64..120.0,
    ) {
        let sizes = zipf_class_sizes(c, pi1, if_target);
        prop_assert_eq!(sizes.len(), c);
        prop_assert_eq!(sizes[0], pi1);
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        let measured = imbalance_factor(&sizes);
        // Rounding the tail to integers bounds the error by 1 tail item.
        let tail_exact = pi1 as f64 / if_target;
        prop_assert!((measured - if_target).abs() / if_target < 1.0 / tail_exact.max(1.0) + 0.05);
    }

    /// Heap-based top-k equals the sort-based reference on arbitrary scores.
    #[test]
    fn topk_matches_sort_reference(
        scores in prop::collection::vec(-1e3f32..1e3, 0..120),
        k in 0usize..140,
    ) {
        prop_assert_eq!(top_k(&scores, k), top_k_by_sort(&scores, k));
    }

    /// MAP is always within [0, 1] and equals 1 for the perfect ranking.
    #[test]
    fn map_bounds_and_perfection(
        labels in prop::collection::vec(0usize..4, 2..40),
        query_label in 0usize..4,
    ) {
        // Perfect ranking: all relevant items first.
        let mut perfect: Vec<usize> = (0..labels.len())
            .filter(|&i| labels[i] == query_label)
            .collect();
        let relevant = perfect.len();
        perfect.extend((0..labels.len()).filter(|&i| labels[i] != query_label));
        let map = mean_average_precision(&[perfect], &[query_label], &labels);
        prop_assert!((0.0..=1.0).contains(&map));
        if relevant > 0 {
            prop_assert!((map - 1.0).abs() < 1e-12);
        }
    }

    /// Compression ratio is monotone in database size and eventually > 1.
    #[test]
    fn compression_monotone_in_n(d in 16usize..512, m in 1usize..8, k_pow in 2u32..9) {
        let k = 1usize << k_pow;
        let mut prev = 0.0;
        for &n in &[100usize, 10_000, 1_000_000] {
            let model = ComplexityModel::new(d, m, k, n);
            let ratio = model.compression_ratio();
            prop_assert!(ratio > prev);
            prev = ratio;
        }
        prop_assert!(prev > 1.0, "1M items must compress ({prev})");
    }

    /// Class weights are non-increasing in class count and normalized.
    #[test]
    fn class_weights_monotone(gamma in 0.5f32..0.9999, seed in 0u64..1000) {
        let mut r = rng(seed);
        use rand::Rng;
        let mut counts: Vec<usize> = (0..8).map(|_| r.gen_range(1usize..3000)).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let w = class_weights(&counts, gamma);
        // Larger classes never get larger weights.
        for i in 1..w.len() {
            prop_assert!(w[i] + 1e-5 >= w[i - 1], "weights must be non-decreasing as counts shrink");
        }
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        prop_assert!((mean - 1.0).abs() < 1e-3);
    }

    /// Bit-packing roundtrip: pack → unpack is the identity for any code
    /// table and any codebook size, and the packed size matches the paper's
    /// `M·log2(K)/8` bytes-per-item accounting.
    #[test]
    fn codec_roundtrip_and_size(
        n in 0usize..40,
        m in 1usize..6,
        k_pow in 1u32..10,
        seed in 0u64..10_000,
    ) {
        let k = 1usize << k_pow;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let ids: Vec<u16> = (0..n * m)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as usize % k) as u16
            })
            .collect();
        let codes = Codes::new(ids, m);
        let packed = lightlt_core::codec::pack_codes(&codes, k);
        let expect_bytes = (n as u64 * m as u64 * k_pow as u64).div_ceil(8) as usize;
        prop_assert_eq!(packed.len(), expect_bytes);
        let back = lightlt_core::codec::unpack_codes(&packed, n, m, k);
        prop_assert_eq!(back, codes);
    }

    /// Proposition 1: the prototype bound dominates the simplified triplet
    /// loss for arbitrary embeddings, labels, and prototypes.
    #[test]
    fn proposition1_bound(seed in 0u64..500, n in 4usize..10, c in 2usize..4) {
        let mut r = rng(seed);
        let o = randn(n, 5, &mut r);
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let protos = randn(c, 5, &mut r);
        let lhs = lightlt_core::loss::simplified_triplet(&o, &labels);
        let rhs = lightlt_core::loss::prototype_triplet_bound(&o, &labels, &protos);
        prop_assert!(lhs <= rhs + 1e-2, "triplet {lhs} > bound {rhs}");
    }
}

proptest! {
    // DSQ properties are costlier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Example-1 invariance: permuting a codebook's rows together with the
    /// stored codes leaves every decoded vector unchanged — the reason naive
    /// codebook averaging is meaningless and fine-tuning is required.
    #[test]
    fn codeword_permutation_invariance(seed in 0u64..200) {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store, 3, 8, 6, 8,
            CodebookTopology::VanillaResidual, // direct P_k = C_k mapping
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let x = randn(6, 6, &mut rng(seed + 1));
        let codebooks = dsq.effective_codebooks(&store);
        let codes = dsq.encode_with_codebooks(&codebooks, &x);
        let decoded = dsq.decode_with_codebooks(&codebooks, &codes);

        // Permute codebook 1 by reversal and remap its codes accordingly.
        let k = 8usize;
        let permuted_cb: Vec<Matrix> = codebooks
            .iter()
            .enumerate()
            .map(|(level, cb)| {
                if level == 1 {
                    let rows: Vec<usize> = (0..k).rev().collect();
                    cb.select_rows(&rows)
                } else {
                    cb.clone()
                }
            })
            .collect();
        let remapped: Vec<u16> = (0..codes.len())
            .flat_map(|i| {
                codes.item(i).iter().enumerate().map(|(level, &id)| {
                    if level == 1 { (k - 1 - id as usize) as u16 } else { id }
                }).collect::<Vec<u16>>()
            })
            .collect();
        let remapped = Codes::new(remapped, 3);
        let decoded_permuted = dsq.decode_with_codebooks(&permuted_cb, &remapped);
        for (a, b) in decoded.as_slice().iter().zip(decoded_permuted.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// ADC search scores equal explicit reconstructed distances for random
    /// quantizers and databases.
    #[test]
    fn adc_equals_reconstructed_distance(seed in 0u64..200) {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store, 2, 8, 5, 8,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(20, 5, &mut rng(seed + 1)).scale(0.5);
        let index = QuantizedIndex::build(&dsq, &store, &db);
        let q: Vec<f32> = randn(1, 5, &mut rng(seed + 2)).into_vec();
        let hits = adc_search(&index, &q, 20);
        for hit in hits {
            let recon = index.reconstruct_item(hit.index);
            let direct = -lt_linalg::distance::squared_l2(&q, &recon);
            prop_assert!((hit.score - direct).abs() < 1e-2,
                "item {}: {} vs {}", hit.index, hit.score, direct);
        }
    }

    /// Greedy per-level optimality (Eqn. 3): at every level the selected
    /// codeword is the one closest to that level's residual.
    #[test]
    fn encoder_selects_per_level_nearest_codeword(seed in 0u64..100) {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store, 3, 8, 5, 8,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let x = randn(6, 5, &mut rng(seed + 7)).scale(0.5);
        let codebooks = dsq.effective_codebooks(&store);
        let codes = dsq.encode_with_codebooks(&codebooks, &x);
        for i in 0..x.rows() {
            let mut residual = x.row(i).to_vec();
            for (level, cb) in codebooks.iter().enumerate() {
                let chosen = codes.item(i)[level] as usize;
                let chosen_d = lt_linalg::distance::squared_l2(&residual, cb.row(chosen));
                for j in 0..cb.rows() {
                    let d = lt_linalg::distance::squared_l2(&residual, cb.row(j));
                    prop_assert!(chosen_d <= d + 1e-5,
                        "level {level}: codeword {chosen} ({chosen_d}) beaten by {j} ({d})");
                }
                for (v, &c) in residual.iter_mut().zip(cb.row(chosen)) {
                    *v -= c;
                }
            }
        }
    }
}
