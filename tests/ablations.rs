//! Integration-level checks of the paper's ablation claims at miniature
//! scale: the proposed loss (Fig. 5), DSQ vs vanilla residual (Table IV),
//! and the ensemble (Fig. 6). These assert the *direction* of each effect
//! averaged over seeds — the same shape criterion EXPERIMENTS.md uses.

use lightlt::prelude::*;
use lightlt_core::search::adc_rank_all;
use lt_data::synth::{generate_split, Domain};

fn task(seed: u64) -> RetrievalSplit {
    generate_split(&SynthConfig {
        num_classes: 8,
        dim: 24,
        pi1: 60,
        imbalance_factor: 16.0,
        n_query: 32,
        n_database: 320,
        domain: Domain::ImageLike,
        intra_class_std: None,
        seed,
    })
}

fn base_config(seed: u64) -> LightLtConfig {
    LightLtConfig {
        input_dim: 24,
        backbone_hidden: 48,
        embed_dim: 16,
        num_classes: 8,
        num_codebooks: 4,
        num_codewords: 16,
        ffn_hidden: 24,
        epochs: 16,
        batch_size: 32,
        ensemble_size: 1,
        seed,
        ..Default::default()
    }
}

fn run_map(config: &LightLtConfig, split: &RetrievalSplit) -> f64 {
    let result = train_ensemble(config, &split.train).expect("training failed");
    let db_emb = result.model.embed(&result.store, &split.database.features);
    let q_emb = result.model.embed(&result.store, &split.query.features);
    let index = QuantizedIndex::build(&result.model.dsq, &result.store, &db_emb);
    let rankings: Vec<Vec<usize>> =
        (0..q_emb.rows()).map(|i| adc_rank_all(&index, q_emb.row(i))).collect();
    mean_average_precision(&rankings, &split.query.labels, &split.database.labels)
}

fn mean_over_seeds(make: impl Fn(u64) -> LightLtConfig) -> f64 {
    let seeds = [11u64, 22, 33];
    let mut total = 0.0;
    for &s in &seeds {
        let split = task(s);
        total += run_map(&make(s), &split);
    }
    total / seeds.len() as f64
}

/// Fig.-5 direction: the full loss (CE + α(center + ranking)) with a tuned
/// α should not be worse than CE alone, averaged over seeds. (The paper
/// grid-searches α per dataset; α = 0.01 is the tuned value here.)
#[test]
fn full_loss_not_worse_than_ce_only() {
    let full = mean_over_seeds(|s| LightLtConfig { alpha: 0.01, ..base_config(s) });
    let ce_only = mean_over_seeds(|s| LightLtConfig { alpha: 0.0, ..base_config(s) });
    assert!(
        full >= ce_only - 0.02,
        "full loss {full:.4} unexpectedly below CE-only {ce_only:.4}"
    );
}

/// Table-IV direction: DSQ (codebook skip) should not be worse than the
/// vanilla residual mechanism, averaged over seeds.
#[test]
fn dsq_not_worse_than_vanilla_residual() {
    let dsq = mean_over_seeds(|s| LightLtConfig { alpha: 0.01, ..base_config(s) });
    let residual = mean_over_seeds(|s| LightLtConfig {
        alpha: 0.01,
        topology: CodebookTopology::VanillaResidual,
        ..base_config(s)
    });
    assert!(
        dsq >= residual - 0.02,
        "DSQ {dsq:.4} unexpectedly below vanilla residual {residual:.4}"
    );
}

/// Fig.-6 direction: the 4-model ensemble should not be worse than the
/// single model, averaged over seeds.
#[test]
fn ensemble_not_worse_than_single_model() {
    let single = mean_over_seeds(base_config);
    let ensemble = mean_over_seeds(|s| LightLtConfig {
        ensemble_size: 4,
        ensemble_branch_epochs: 5,
        finetune_epochs: 3,
        ..base_config(s)
    });
    assert!(
        ensemble >= single - 0.02,
        "ensemble {ensemble:.4} unexpectedly below single {single:.4}"
    );
}

/// Long-tail direction: class re-weighting (γ close to 1) should help tail
/// classes relative to γ = 0 on the per-class MAP of the tail.
#[test]
fn class_weighting_helps_tail_classes() {
    let seeds = [7u64, 14];
    let mut tail_weighted = 0.0;
    let mut tail_plain = 0.0;
    for &s in &seeds {
        let split = task(s);
        for (gamma, acc) in [(0.999f32, &mut tail_weighted), (0.0, &mut tail_plain)] {
            let config = LightLtConfig { gamma, ..base_config(s) };
            let result = train_ensemble(&config, &split.train).expect("training failed");
            let db_emb = result.model.embed(&result.store, &split.database.features);
            let q_emb = result.model.embed(&result.store, &split.query.features);
            let index = QuantizedIndex::build(&result.model.dsq, &result.store, &db_emb);
            let rankings: Vec<Vec<usize>> =
                (0..q_emb.rows()).map(|i| adc_rank_all(&index, q_emb.row(i))).collect();
            let pcm = lt_eval::per_class_map(
                &rankings,
                &split.query.labels,
                &split.database.labels,
                8,
            );
            // Tail = last three classes of the Zipf ordering.
            *acc += pcm[5..].iter().sum::<f64>() / 3.0;
        }
    }
    assert!(
        tail_weighted >= tail_plain - 0.05,
        "re-weighting should not hurt the tail: weighted {tail_weighted:.4} vs plain {tail_plain:.4}"
    );
}
