//! Fault-tolerance integration tests: NaN-injection recovery, simulated
//! kill-and-resume bitwise reproducibility, and corrupted-checkpoint
//! rejection — the acceptance criteria of the fault-tolerant training
//! stack.

use std::path::PathBuf;

use lightlt::core::checkpoint::{checkpoint_path, CheckpointError};
use lightlt::core::fault::{FaultPlan, TrainError};
use lightlt::core::trainer::{
    resume, train_base_model, train_with_options, CheckpointSpec, TrainOptions,
};
use lightlt::core::LightLt;
use lightlt::prelude::*;
use lt_data::synth::{generate_split, Domain};

fn task() -> RetrievalSplit {
    generate_split(&SynthConfig {
        num_classes: 5,
        dim: 12,
        pi1: 40,
        imbalance_factor: 8.0,
        n_query: 15,
        n_database: 100,
        domain: Domain::ImageLike,
        intra_class_std: None,
        seed: 23,
    })
}

fn config() -> LightLtConfig {
    LightLtConfig {
        input_dim: 12,
        backbone_hidden: 20,
        embed_dim: 8,
        num_classes: 5,
        num_codebooks: 2,
        num_codewords: 8,
        ffn_hidden: 12,
        epochs: 6,
        batch_size: 16,
        learning_rate: 5e-3,
        ensemble_size: 1,
        seed: 13,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("lightlt_fault_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_stores_identical(a: &lightlt::tensor::ParamStore, b: &lightlt::tensor::ParamStore) {
    assert!(a.schema_matches(b), "parameter schemas differ");
    for (id, p) in a.iter() {
        assert_eq!(
            p.value,
            *b.value(id),
            "parameter {} differs between the two runs",
            p.name
        );
    }
}

/// Acceptance criterion: a NaN injected into the gradients mid-run is
/// caught by the guards, the run rolls back and retries, and training
/// still finishes with finite, improving loss.
#[test]
fn nan_injection_recovers_with_finite_loss() {
    let split = task();
    let cfg = config();
    let (mut model, mut store) = LightLt::new(&cfg, 0);
    model.set_class_counts(&split.train.class_counts());
    let opts = TrainOptions {
        fault_plan: FaultPlan::none().nan_at_step(7),
        ..TrainOptions::default()
    };
    let history = train_with_options(&model, &mut store, &split.train, &opts)
        .expect("guards should recover from one injected NaN");

    assert_eq!(history.epochs.len(), cfg.epochs, "run did not complete all epochs");
    assert!(history.final_loss().is_finite(), "final loss is not finite");
    assert!(store.all_finite(), "a non-finite value reached the parameter store");
    let first = history.epochs[0].loss;
    assert!(
        history.final_loss() < first,
        "loss did not improve after recovery: {first} → {}",
        history.final_loss()
    );
}

/// Two NaN injections in different epochs: each costs one retry, both
/// within the default budget.
#[test]
fn multiple_nan_injections_within_budget_recover() {
    let split = task();
    let cfg = config();
    let steps_per_epoch = split.train.len().div_ceil(cfg.batch_size);
    let (mut model, mut store) = LightLt::new(&cfg, 0);
    model.set_class_counts(&split.train.class_counts());
    let opts = TrainOptions {
        fault_plan: FaultPlan::none()
            .nan_at_step(1)
            .nan_at_step(2 * steps_per_epoch + 1),
        ..TrainOptions::default()
    };
    let history = train_with_options(&model, &mut store, &split.train, &opts).unwrap();
    assert_eq!(history.epochs.len(), cfg.epochs);
    assert!(store.all_finite());
}

/// Acceptance criterion: a run killed mid-training and resumed from its
/// checkpoint yields final weights *bitwise identical* to an uninterrupted
/// run.
#[test]
fn kill_and_resume_matches_uninterrupted_run_bitwise() {
    let split = task();
    let cfg = config();
    let dir = tmpdir("kill_resume");

    // Reference: uninterrupted training.
    let (_, reference_store, reference_history) =
        train_base_model(&cfg, &split.train, 0).unwrap();

    // Interrupted run: killed right after epoch 2's checkpoint is written.
    let (mut model, mut store) = LightLt::new(&cfg, 0);
    model.set_class_counts(&split.train.class_counts());
    let opts = TrainOptions {
        checkpoint: Some(CheckpointSpec::new(&dir, "model")),
        fault_plan: FaultPlan::none().kill_after_epoch(2),
        ..TrainOptions::default()
    };
    match train_with_options(&model, &mut store, &split.train, &opts) {
        Err(TrainError::SimulatedKill { epoch: 2 }) => {}
        other => panic!("expected a simulated kill after epoch 2, got {other:?}"),
    }
    assert!(checkpoint_path(&dir, "model").exists(), "no checkpoint survived the kill");

    // Resume from disk and finish the remaining epochs.
    let (_, resumed_store, resumed_history) =
        resume(&split.train, &dir).expect("resume failed");

    assert_eq!(resumed_history, reference_history, "epoch histories differ");
    assert_stores_identical(&reference_store, &resumed_store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing at different epochs always resumes to the same final weights.
#[test]
fn resume_is_kill_point_invariant() {
    let split = task();
    let cfg = config();
    let (_, reference_store, _) = train_base_model(&cfg, &split.train, 0).unwrap();

    for kill_epoch in [0usize, 4] {
        let dir = tmpdir(&format!("kill_at_{kill_epoch}"));
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let opts = TrainOptions {
            checkpoint: Some(CheckpointSpec::new(&dir, "model")),
            fault_plan: FaultPlan::none().kill_after_epoch(kill_epoch),
            ..TrainOptions::default()
        };
        assert!(matches!(
            train_with_options(&model, &mut store, &split.train, &opts),
            Err(TrainError::SimulatedKill { .. })
        ));
        let (_, resumed_store, _) = resume(&split.train, &dir).unwrap();
        assert_stores_identical(&reference_store, &resumed_store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A checkpoint that was truncated or bit-flipped on disk must be rejected
/// at resume time with a checkpoint error, not silently half-loaded.
#[test]
fn corrupted_checkpoint_is_rejected_on_resume() {
    let split = task();
    let cfg = config();
    let dir = tmpdir("corrupt");
    let (mut model, mut store) = LightLt::new(&cfg, 0);
    model.set_class_counts(&split.train.class_counts());
    let opts = TrainOptions {
        checkpoint: Some(CheckpointSpec::new(&dir, "model")),
        fault_plan: FaultPlan::none().kill_after_epoch(1),
        ..TrainOptions::default()
    };
    let _ = train_with_options(&model, &mut store, &split.train, &opts);
    let path = checkpoint_path(&dir, "model");
    let clean = std::fs::read(&path).unwrap();

    // Bit flip in the middle of the payload.
    let mut flipped = clean.clone();
    flipped[clean.len() / 2] ^= 0x04;
    std::fs::write(&path, &flipped).unwrap();
    match resume(&split.train, &dir) {
        Err(TrainError::Checkpoint(CheckpointError::ChecksumMismatch { .. })) => {}
        other => panic!("bit-flipped checkpoint accepted: {other:?}"),
    }

    // Truncation.
    std::fs::write(&path, &clean[..clean.len() / 3]).unwrap();
    match resume(&split.train, &dir) {
        Err(TrainError::Checkpoint(_)) => {}
        other => panic!("truncated checkpoint accepted: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The retry budget is enforced: re-poisoning the same step more times
/// than `max_retries` fails with the typed error, naming the guard.
#[test]
fn retry_budget_exhaustion_reports_typed_error() {
    let split = task();
    let mut cfg = config();
    cfg.fault.max_retries = 2;
    let (mut model, mut store) = LightLt::new(&cfg, 0);
    model.set_class_counts(&split.train.class_counts());
    let opts = TrainOptions {
        fault_plan: FaultPlan::none()
            .nan_at_step(0)
            .nan_at_step(0)
            .nan_at_step(0),
        ..TrainOptions::default()
    };
    match train_with_options(&model, &mut store, &split.train, &opts) {
        Err(TrainError::RetriesExhausted { retries, .. }) => assert_eq!(retries, 2),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// The full ensemble pipeline trains to the same weights with and without
/// checkpointing, and an interrupted ensemble resumes cleanly through the
/// remaining stages.
#[test]
fn checkpointed_ensemble_equals_plain_ensemble() {
    let split = task();
    let cfg = LightLtConfig {
        epochs: 3,
        ensemble_size: 2,
        ensemble_branch_epochs: 2,
        finetune_epochs: 2,
        ..config()
    };
    let dir = tmpdir("ensemble");
    let plain = train_ensemble(&cfg, &split.train).unwrap();
    let resumable = train_ensemble_resumable(&cfg, &split.train, &dir).unwrap();
    assert_stores_identical(&plain.store, &resumable.store);

    // All per-stage checkpoints landed on disk.
    for stage in ["shared", "branch-0", "branch-1", "finetune"] {
        assert!(
            checkpoint_path(&dir, stage).exists(),
            "missing checkpoint for stage {stage}"
        );
    }
    // A rerun over the finished checkpoints reproduces the result again.
    let rerun = train_ensemble_resumable(&cfg, &split.train, &dir).unwrap();
    assert_stores_identical(&plain.store, &rerun.store);
    let _ = std::fs::remove_dir_all(&dir);
}
