//! Binary dataset serialization (`.ltd` format).
//!
//! A compact little-endian layout for [`Dataset`] and [`RetrievalSplit`]
//! so generated benchmarks and user-provided embeddings can be stored and
//! reloaded without JSON overhead (features are raw `f32`).
//!
//! Layout of one dataset block:
//! `magic "LTDATA1\0" | num_classes u32 | rows u64 | cols u32 |`
//! `features rows×cols f32 | labels rows×u32`.
//! A split file is three consecutive blocks (train, query, database).

use std::io::{self, Read, Write};

use crate::dataset::{Dataset, RetrievalSplit};
use lt_linalg::Matrix;

/// Magic bytes of a dataset block.
pub const DATASET_MAGIC: &[u8; 8] = b"LTDATA1\0";

/// Writes one dataset block.
pub fn write_dataset<W: Write>(w: &mut W, dataset: &Dataset) -> io::Result<()> {
    w.write_all(DATASET_MAGIC)?;
    w.write_all(&(dataset.num_classes as u32).to_le_bytes())?;
    w.write_all(&(dataset.len() as u64).to_le_bytes())?;
    w.write_all(&(dataset.dim() as u32).to_le_bytes())?;
    for &v in dataset.features.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    for &l in &dataset.labels {
        w.write_all(&(l as u32).to_le_bytes())?;
    }
    Ok(())
}

fn read_exact_array<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads one dataset block.
///
/// # Errors
/// Returns an IO error on truncation or bad magic.
pub fn read_dataset<R: Read>(r: &mut R) -> io::Result<Dataset> {
    let magic = read_exact_array::<_, 8>(r)?;
    if &magic != DATASET_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad dataset magic"));
    }
    let num_classes = u32::from_le_bytes(read_exact_array::<_, 4>(r)?) as usize;
    let rows = u64::from_le_bytes(read_exact_array::<_, 8>(r)?) as usize;
    let cols = u32::from_le_bytes(read_exact_array::<_, 4>(r)?) as usize;
    if num_classes == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "zero classes"));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(f32::from_le_bytes(read_exact_array::<_, 4>(r)?));
    }
    let mut labels = Vec::with_capacity(rows);
    for _ in 0..rows {
        let l = u32::from_le_bytes(read_exact_array::<_, 4>(r)?) as usize;
        if l >= num_classes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("label {l} out of range (C={num_classes})"),
            ));
        }
        labels.push(l);
    }
    Ok(Dataset::new(Matrix::from_vec(rows, cols, data), labels, num_classes))
}

/// Writes a full retrieval split (train, query, database).
pub fn write_split<W: Write>(w: &mut W, split: &RetrievalSplit) -> io::Result<()> {
    write_dataset(w, &split.train)?;
    write_dataset(w, &split.query)?;
    write_dataset(w, &split.database)
}

/// Reads a full retrieval split.
///
/// # Errors
/// Returns an IO error on truncation, bad magic, or cross-set
/// inconsistencies.
pub fn read_split<R: Read>(r: &mut R) -> io::Result<RetrievalSplit> {
    let train = read_dataset(r)?;
    let query = read_dataset(r)?;
    let database = read_dataset(r)?;
    let split = RetrievalSplit { train, query, database };
    split.validate();
    Ok(split)
}

/// Convenience: write a split to a file path.
pub fn save_split(path: impl AsRef<std::path::Path>, split: &RetrievalSplit) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_split(&mut f, split)?;
    f.flush()
}

/// Convenience: read a split from a file path.
pub fn load_split(path: impl AsRef<std::path::Path>) -> io::Result<RetrievalSplit> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_split(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_split, Domain, SynthConfig};

    fn toy_split() -> RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 6,
            pi1: 12,
            imbalance_factor: 4.0,
            n_query: 8,
            n_database: 30,
            domain: Domain::ImageLike,
            intra_class_std: None,
            seed: 5,
        })
    }

    #[test]
    fn dataset_roundtrip_exact() {
        let split = toy_split();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &split.train).unwrap();
        let back = read_dataset(&mut buf.as_slice()).unwrap();
        assert_eq!(back.features, split.train.features);
        assert_eq!(back.labels, split.train.labels);
        assert_eq!(back.num_classes, 4);
    }

    #[test]
    fn split_roundtrip_via_file() {
        let split = toy_split();
        let path = std::env::temp_dir().join("lt_data_io_test.ltd");
        save_split(&path, &split).unwrap();
        let back = load_split(&path).unwrap();
        assert_eq!(back.train.features, split.train.features);
        assert_eq!(back.query.labels, split.query.labels);
        assert_eq!(back.database.len(), split.database.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_dataset(&mut buf, &toy_split().train).unwrap();
        buf[0] ^= 0xFF;
        assert!(read_dataset(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        write_dataset(&mut buf, &toy_split().train).unwrap();
        for cut in [4usize, 20, buf.len() / 2, buf.len() - 1] {
            assert!(read_dataset(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn out_of_range_label_rejected() {
        let mut buf = Vec::new();
        write_dataset(&mut buf, &toy_split().train).unwrap();
        // Corrupt the last label (the final 4 bytes).
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&999u32.to_le_bytes());
        assert!(read_dataset(&mut buf.as_slice()).is_err());
    }
}
