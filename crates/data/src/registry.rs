//! The Table-I dataset registry.
//!
//! Eight long-tail benchmark configurations: {Cifar100, ImageNet100, NC,
//! QBA} × IF ∈ {50, 100}, with the class counts, head/tail sizes, and split
//! sizes of the paper's Table I. Because full-size generation is expensive
//! for CI, every spec can be scaled down uniformly while preserving the
//! class count and imbalance factor.

use serde::{Deserialize, Serialize};

use crate::dataset::RetrievalSplit;
use crate::synth::{generate_split, Domain, SynthConfig};

/// The four benchmark datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// CIFAR-100 (image).
    Cifar100,
    /// ImageNet-100 (image).
    ImageNet100,
    /// Amazon News Categories (text).
    Nc,
    /// Amazon query dataset (text).
    Qba,
}

impl DatasetKind {
    /// All four kinds, in Table-I order.
    pub const ALL: [DatasetKind; 4] =
        [DatasetKind::Cifar100, DatasetKind::ImageNet100, DatasetKind::Nc, DatasetKind::Qba];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cifar100 => "Cifar100",
            DatasetKind::ImageNet100 => "ImageNet100",
            DatasetKind::Nc => "NC",
            DatasetKind::Qba => "QBA",
        }
    }

    /// Embedding-space domain (image vs text).
    pub fn domain(self) -> Domain {
        match self {
            DatasetKind::Cifar100 | DatasetKind::ImageNet100 => Domain::ImageLike,
            DatasetKind::Nc | DatasetKind::Qba => Domain::TextLike,
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset.
    pub kind: DatasetKind,
    /// Imbalance factor (50 or 100 in the paper).
    pub imbalance_factor: u32,
    /// Number of classes `C`.
    pub num_classes: usize,
    /// Head-class training size `π₁`.
    pub pi1: usize,
    /// Tail-class training size `π_C` (as reported in Table I).
    pub pi_c: usize,
    /// Training-set size reported in Table I.
    pub n_train: usize,
    /// Query-set size.
    pub n_query: usize,
    /// Database size.
    pub n_db: usize,
}

/// Returns the Table-I row for a dataset/IF combination.
///
/// # Panics
/// Panics for imbalance factors other than 50 or 100 (the two the paper
/// evaluates).
pub fn spec(kind: DatasetKind, imbalance_factor: u32) -> DatasetSpec {
    use DatasetKind::*;
    let (num_classes, pi1, pi_c, n_train, n_query, n_db) = match (kind, imbalance_factor) {
        (Cifar100, 50) => (100, 500, 10, 3_732, 10_000, 50_000),
        (Cifar100, 100) => (100, 500, 5, 2_598, 10_000, 50_000),
        (ImageNet100, 50) => (100, 1_300, 26, 9_437, 5_000, 130_000),
        (ImageNet100, 100) => (100, 1_300, 13, 6_834, 5_000, 130_000),
        (Nc, 50) => (10, 29_000, 584, 52_027, 2_000, 65_000),
        (Nc, 100) => (10, 29_000, 292, 45_300, 2_000, 72_000),
        (Qba, 50) => (25, 10_000, 199, 29_236, 5_000, 636_000),
        (Qba, 100) => (25, 10_000, 99, 23_527, 5_000, 642_000),
        (_, other) => panic!("Table I defines IF ∈ {{50, 100}}, got {other}"),
    };
    DatasetSpec { kind, imbalance_factor, num_classes, pi1, pi_c, n_train, n_query, n_db }
}

/// All eight Table-I rows.
pub fn all_specs() -> Vec<DatasetSpec> {
    DatasetKind::ALL
        .into_iter()
        .flat_map(|k| [spec(k, 50), spec(k, 100)])
        .collect()
}

/// Materializes a spec as a synthetic retrieval split.
///
/// `dim` is the embedding dimensionality (the paper's substrates produce
/// 512-/768-dim features; the benches default to something smaller).
/// `scale ∈ (0, 1]` shrinks `π₁`, `n_query`, and `n_db` proportionally while
/// keeping `C` and `IF` fixed, so scaled-down runs preserve the long-tail
/// geometry.
pub fn generate(spec: &DatasetSpec, dim: usize, scale: f64, seed: u64) -> RetrievalSplit {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let pi1 = ((spec.pi1 as f64 * scale).round() as usize)
        .max(spec.imbalance_factor as usize) // keep π_C ≥ 1
        .max(2);
    let n_query = ((spec.n_query as f64 * scale).round() as usize).max(spec.num_classes);
    let n_db = ((spec.n_db as f64 * scale).round() as usize).max(spec.num_classes * 2);
    let config = SynthConfig {
        num_classes: spec.num_classes,
        dim,
        pi1,
        imbalance_factor: spec.imbalance_factor as f64,
        n_query,
        n_database: n_db,
        domain: spec.kind.domain(),
        intra_class_std: None,
        seed,
    };
    generate_split(&config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::imbalance_factor;

    #[test]
    fn all_specs_has_eight_rows() {
        let specs = all_specs();
        assert_eq!(specs.len(), 8);
    }

    #[test]
    fn table1_values_roundtrip() {
        let s = spec(DatasetKind::Nc, 100);
        assert_eq!(s.num_classes, 10);
        assert_eq!(s.pi1, 29_000);
        assert_eq!(s.pi_c, 292);
        assert_eq!(s.n_db, 72_000);
    }

    #[test]
    fn zipf_totals_approximate_table1_train_sizes() {
        // The generator's Zipf sizes should land near the paper's n_train.
        for s in all_specs() {
            let sizes = crate::zipf::zipf_class_sizes(
                s.num_classes,
                s.pi1,
                s.imbalance_factor as f64,
            );
            let total: usize = sizes.iter().sum();
            let rel = (total as f64 - s.n_train as f64).abs() / s.n_train as f64;
            assert!(
                rel < 0.12,
                "{} IF={}: generated {total} vs Table I {} ({rel:.2})",
                s.kind.name(),
                s.imbalance_factor,
                s.n_train
            );
        }
    }

    #[test]
    fn zipf_tails_approximate_table1_pi_c() {
        for s in all_specs() {
            let sizes = crate::zipf::zipf_class_sizes(
                s.num_classes,
                s.pi1,
                s.imbalance_factor as f64,
            );
            let tail = *sizes.last().unwrap();
            let rel = (tail as f64 - s.pi_c as f64).abs() / s.pi_c as f64;
            assert!(
                rel < 0.05,
                "{} IF={}: tail {tail} vs Table I {}",
                s.kind.name(),
                s.imbalance_factor,
                s.pi_c
            );
        }
    }

    #[test]
    fn scaled_generation_preserves_if() {
        let s = spec(DatasetKind::Cifar100, 50);
        let split = generate(&s, 8, 0.05, 3);
        let counts = split.train.class_counts();
        let measured = imbalance_factor(&counts);
        // Small-scale rounding loosens the match, but the tail must remain.
        assert!(measured > 10.0, "IF collapsed: {measured}");
        assert_eq!(split.train.num_classes, 100);
    }

    #[test]
    #[should_panic(expected = "IF ∈ {50, 100}")]
    fn rejects_unknown_if() {
        let _ = spec(DatasetKind::Cifar100, 75);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_bad_scale() {
        let s = spec(DatasetKind::Nc, 50);
        let _ = generate(&s, 8, 0.0, 1);
    }

    #[test]
    fn image_and_text_domains_assigned() {
        assert_eq!(DatasetKind::Cifar100.domain(), Domain::ImageLike);
        assert_eq!(DatasetKind::Qba.domain(), Domain::TextLike);
    }
}
