//! Zipf's-law class sizes (paper Definition 1).
//!
//! A long-tail dataset has class sizes `π_i = π₁ · i^(−p)` for a positive
//! exponent `p`; the imbalance factor is `IF = π₁ / π_C`. Given the head
//! size `π₁`, the class count `C`, and the target `IF`, the exponent is
//! `p = ln(IF) / ln(C)` so the tail class lands exactly at `π₁ / IF`.

/// Computes the Zipf exponent `p` so that `π_C = π₁ / imbalance_factor`.
///
/// # Panics
/// Panics if `num_classes < 2` or `imbalance_factor < 1`.
pub fn zipf_exponent(num_classes: usize, imbalance_factor: f64) -> f64 {
    assert!(num_classes >= 2, "need at least two classes for a long tail");
    assert!(imbalance_factor >= 1.0, "imbalance factor must be >= 1");
    imbalance_factor.ln() / (num_classes as f64).ln()
}

/// Class sizes `π_i = round(π₁ · i^(−p))`, descending, clamped to ≥ 1.
///
/// The returned sizes satisfy (up to rounding):
/// * `sizes[0] == pi1`
/// * `sizes[C−1] ≈ pi1 / imbalance_factor`
/// * monotone non-increasing.
pub fn zipf_class_sizes(num_classes: usize, pi1: usize, imbalance_factor: f64) -> Vec<usize> {
    let p = zipf_exponent(num_classes, imbalance_factor);
    (1..=num_classes)
        .map(|i| {
            let size = pi1 as f64 * (i as f64).powf(-p);
            (size.round() as usize).max(1)
        })
        .collect()
}

/// Measured imbalance factor `π₁ / π_C` of a size vector.
///
/// # Panics
/// Panics on an empty input or a zero tail class.
pub fn imbalance_factor(sizes: &[usize]) -> f64 {
    assert!(!sizes.is_empty(), "no class sizes");
    let head = *sizes.iter().max().expect("non-empty");
    let tail = *sizes.iter().min().expect("non-empty");
    assert!(tail > 0, "tail class has zero items");
    head as f64 / tail as f64
}

/// Counts per class of a label vector (length = `num_classes`).
pub fn class_counts(labels: &[usize], num_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; num_classes];
    for &l in labels {
        assert!(l < num_classes, "label {l} out of range");
        counts[l] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_hits_target_tail() {
        let p = zipf_exponent(100, 50.0);
        let tail = 500.0 * 100f64.powf(-p);
        assert!((tail - 10.0).abs() < 1e-6, "tail {tail}");
    }

    #[test]
    fn sizes_monotone_nonincreasing() {
        let sizes = zipf_class_sizes(100, 500, 50.0);
        assert_eq!(sizes.len(), 100);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn head_and_tail_match_table1_cifar() {
        // Cifar100 IF=50 row of Table I: π₁=500, π_C=10.
        let sizes = zipf_class_sizes(100, 500, 50.0);
        assert_eq!(sizes[0], 500);
        assert_eq!(sizes[99], 10);
        // Total ≈ 3,732 (Table I n_train); allow rounding slack.
        let total: usize = sizes.iter().sum();
        assert!((3500..4000).contains(&total), "total {total}");
    }

    #[test]
    fn head_and_tail_match_table1_cifar_if100() {
        let sizes = zipf_class_sizes(100, 500, 100.0);
        assert_eq!(sizes[0], 500);
        assert_eq!(sizes[99], 5);
        let total: usize = sizes.iter().sum();
        assert!((2400..2800).contains(&total), "total {total}");
    }

    #[test]
    fn measured_if_matches_request() {
        for &target in &[10.0, 50.0, 100.0] {
            let sizes = zipf_class_sizes(50, 1000, target);
            let measured = imbalance_factor(&sizes);
            assert!(
                (measured - target).abs() / target < 0.05,
                "requested IF {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn if_one_is_balanced() {
        let sizes = zipf_class_sizes(10, 100, 1.0);
        assert!(sizes.iter().all(|&s| s == 100));
        assert_eq!(imbalance_factor(&sizes), 1.0);
    }

    #[test]
    fn tiny_classes_clamped_to_one() {
        let sizes = zipf_class_sizes(100, 3, 100.0);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn class_counts_tallies() {
        let counts = class_counts(&[0, 1, 1, 2, 2, 2], 4);
        assert_eq!(counts, vec![1, 2, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_counts_rejects_bad_label() {
        let _ = class_counts(&[5], 3);
    }
}
