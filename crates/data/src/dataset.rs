//! Dataset containers.
//!
//! A [`Dataset`] is a matrix of row features plus integer class labels.
//! A [`RetrievalSplit`] bundles the three sets every experiment needs:
//! a long-tail training set, a query set, and a database to retrieve from.

use lt_linalg::Matrix;

use crate::zipf::class_counts;

/// Features (`n × d`) with one class label per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row-major feature matrix.
    pub features: Matrix,
    /// Class label per row, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Total number of classes (shared across splits even when a split is
    /// missing some tail class).
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating invariants.
    ///
    /// # Panics
    /// Panics if row/label counts differ or a label is out of range.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range (num_classes = {num_classes})"
        );
        Self { features, labels, num_classes }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Item count per class.
    pub fn class_counts(&self) -> Vec<usize> {
        class_counts(&self.labels, self.num_classes)
    }

    /// Indices of all items with the given label.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sub-dataset with the given row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset { features, labels, num_classes: self.num_classes }
    }

    /// Per-class mean feature vectors (`num_classes × d`); empty classes get
    /// zero rows. Used for prototype initialization and diagnostics.
    pub fn class_means(&self) -> Matrix {
        let mut sums = Matrix::zeros(self.num_classes, self.dim());
        let mut counts = vec![0usize; self.num_classes];
        for (i, &label) in self.labels.iter().enumerate() {
            counts[label] += 1;
            let row = self.features.row(i);
            let srow = sums.row_mut(label);
            for (s, &v) in srow.iter_mut().zip(row) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                for v in sums.row_mut(c) {
                    *v *= inv;
                }
            }
        }
        sums
    }
}

/// The three sets of a retrieval experiment.
#[derive(Debug, Clone)]
pub struct RetrievalSplit {
    /// Long-tail training set (drives supervised quantization).
    pub train: Dataset,
    /// Query set (items to search with).
    pub query: Dataset,
    /// Database (items to search over).
    pub database: Dataset,
}

impl RetrievalSplit {
    /// Validates that all three sets agree on dimension and class count.
    pub fn validate(&self) {
        assert_eq!(self.train.dim(), self.query.dim(), "train/query dim mismatch");
        assert_eq!(self.train.dim(), self.database.dim(), "train/db dim mismatch");
        assert_eq!(
            self.train.num_classes, self.query.num_classes,
            "train/query class count mismatch"
        );
        assert_eq!(
            self.train.num_classes, self.database.num_classes,
            "train/db class count mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 3.0], &[4.0, 5.0], &[6.0, 7.0]]),
            vec![0, 1, 1, 0],
            3,
        )
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![2, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "feature/label count mismatch")]
    fn rejects_count_mismatch() {
        let _ = Dataset::new(Matrix::zeros(2, 2), vec![0], 3);
    }

    #[test]
    fn indices_and_subset() {
        let d = toy();
        assert_eq!(d.indices_of_class(1), vec![1, 2]);
        let s = d.subset(&[1, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![1, 1]);
        assert_eq!(s.features.row(0), &[2.0, 3.0]);
    }

    #[test]
    fn class_means_averages_rows() {
        let d = toy();
        let means = d.class_means();
        // Class 0: rows (0,1) and (6,7) → (3, 4).
        assert_eq!(means.row(0), &[3.0, 4.0]);
        // Class 2 empty → zeros.
        assert_eq!(means.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn split_validation_passes_on_consistent_sets() {
        let d = toy();
        let split = RetrievalSplit { train: d.clone(), query: d.clone(), database: d };
        split.validate();
    }

    #[test]
    #[should_panic(expected = "train/db dim mismatch")]
    fn split_validation_catches_dim_mismatch() {
        let d = toy();
        let bad = Dataset::new(Matrix::zeros(1, 5), vec![0], 3);
        let split = RetrievalSplit { train: d.clone(), query: d, database: bad };
        split.validate();
    }
}
