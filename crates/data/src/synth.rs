//! Synthetic long-tail embedding generator.
//!
//! Substitution for Cifar100 / ImageNet100 / Amazon-NC / QBA (see DESIGN.md
//! §3): the paper feeds every method *pretrained embeddings* (ResNet34 /
//! BERT outputs), so the algorithmic comparison only depends on the geometry
//! of the embedding space. We generate per-class Gaussian clusters on the
//! unit sphere with class sizes following Zipf's law:
//!
//! * class centers are random unit vectors,
//! * items are `center + N(0, σ²·I)` with a per-domain intra-class σ,
//! * image-like domains use a lower σ (tight visual classes), text-like
//!   domains a higher σ (high lexical variance — the property the paper
//!   invokes to explain why its loss helps Cifar100 more than NC).

use lt_linalg::random::{randn_scaled, rng};
use lt_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::dataset::{Dataset, RetrievalSplit};
use crate::zipf::zipf_class_sizes;

/// Embedding-space "domain": controls intra-class variance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Image-like: tight clusters (ResNet embeddings of visual classes).
    ImageLike,
    /// Text-like: loose clusters (BERT embeddings of topical classes).
    TextLike,
}

impl Domain {
    /// Total intra-class noise norm (the expected L2 length of the noise
    /// vector), relative to unit-norm class centers whose typical pairwise
    /// separation is √2. Keeping the *norm* fixed — rather than a per-
    /// dimension σ — makes task difficulty independent of the embedding
    /// dimensionality.
    pub fn noise_norm(self) -> f32 {
        match self {
            Domain::ImageLike => 0.9,
            Domain::TextLike => 1.6,
        }
    }

    /// Per-dimension standard deviation achieving [`Domain::noise_norm`]
    /// in `dim` dimensions.
    pub fn intra_class_std(self, dim: usize) -> f32 {
        self.noise_norm() / (dim.max(1) as f32).sqrt()
    }
}

/// Configuration for the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of classes `C`.
    pub num_classes: usize,
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Head-class training size `π₁`.
    pub pi1: usize,
    /// Imbalance factor `IF = π₁ / π_C`.
    pub imbalance_factor: f64,
    /// Number of query items (class-balanced).
    pub n_query: usize,
    /// Number of database items (long-tail, same Zipf shape as training).
    pub n_database: usize,
    /// Embedding-space domain.
    pub domain: Domain,
    /// Optional override of the *per-dimension* intra-class standard
    /// deviation (bypasses the domain noise-norm scaling).
    pub intra_class_std: Option<f32>,
    /// RNG seed; two calls with equal configs produce identical data.
    pub seed: u64,
}

impl SynthConfig {
    /// Effective per-dimension intra-class σ.
    pub fn sigma(&self) -> f32 {
        self.intra_class_std.unwrap_or_else(|| self.domain.intra_class_std(self.dim))
    }
}

/// Random unit-norm class centers (`C × d`).
pub fn class_centers(num_classes: usize, dim: usize, rng: &mut StdRng) -> Matrix {
    let mut centers = Matrix::zeros(num_classes, dim);
    for c in 0..num_classes {
        let v = lt_linalg::random::random_unit_vector(dim, rng);
        centers.row_mut(c).copy_from_slice(&v);
    }
    centers
}

/// Samples `count` items of class `label` around its center.
fn sample_class(
    centers: &Matrix,
    label: usize,
    count: usize,
    sigma: f32,
    rng: &mut StdRng,
) -> Matrix {
    let d = centers.cols();
    let mut out = randn_scaled(count, d, 0.0, sigma, rng);
    let center = centers.row(label).to_vec();
    for i in 0..count {
        let row = out.row_mut(i);
        for (v, &c) in row.iter_mut().zip(&center) {
            *v += c;
        }
    }
    out
}

/// Generates a dataset whose per-class counts are given explicitly.
pub fn generate_with_counts(
    centers: &Matrix,
    counts: &[usize],
    sigma: f32,
    num_classes: usize,
    rng: &mut StdRng,
) -> Dataset {
    assert_eq!(counts.len(), num_classes, "one count per class required");
    let total: usize = counts.iter().sum();
    let d = centers.cols();
    let mut features = Matrix::zeros(total, d);
    let mut labels = Vec::with_capacity(total);
    let mut row = 0;
    for (class, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let block = sample_class(centers, class, count, sigma, rng);
        for i in 0..count {
            features.row_mut(row).copy_from_slice(block.row(i));
            labels.push(class);
            row += 1;
        }
    }
    Dataset::new(features, labels, num_classes)
}

/// Distributes `total` items over classes following the same Zipf shape as
/// the training split (used for the database set).
pub fn zipf_proportional_counts(total: usize, train_sizes: &[usize]) -> Vec<usize> {
    let train_total: usize = train_sizes.iter().sum();
    assert!(train_total > 0, "training sizes sum to zero");
    let mut counts: Vec<usize> = train_sizes
        .iter()
        .map(|&s| ((s as f64 / train_total as f64) * total as f64).floor() as usize)
        .collect();
    // Distribute the rounding remainder to the head classes.
    let mut assigned: usize = counts.iter().sum();
    let n_classes = counts.len();
    let mut c = 0;
    while assigned < total {
        counts[c % n_classes] += 1;
        assigned += 1;
        c += 1;
    }
    counts.iter_mut().for_each(|x| *x = (*x).max(1));
    counts
}

/// Class-balanced counts for the query set: `total / C` each, remainder to
/// the first classes.
pub fn balanced_counts(total: usize, num_classes: usize) -> Vec<usize> {
    let base = total / num_classes;
    let rem = total % num_classes;
    (0..num_classes).map(|c| base + usize::from(c < rem)).collect()
}

/// Generates the full train/query/database retrieval split.
pub fn generate_split(config: &SynthConfig) -> RetrievalSplit {
    assert!(config.num_classes >= 2, "need at least two classes");
    assert!(config.dim >= 2, "need at least two dimensions");
    let mut r = rng(config.seed);
    let centers = class_centers(config.num_classes, config.dim, &mut r);
    let sigma = config.sigma();

    let train_sizes = zipf_class_sizes(config.num_classes, config.pi1, config.imbalance_factor);
    let train = generate_with_counts(&centers, &train_sizes, sigma, config.num_classes, &mut r);

    let query_counts = balanced_counts(config.n_query, config.num_classes);
    let query = generate_with_counts(&centers, &query_counts, sigma, config.num_classes, &mut r);

    let db_counts = zipf_proportional_counts(config.n_database, &train_sizes);
    let database = generate_with_counts(&centers, &db_counts, sigma, config.num_classes, &mut r);

    let split = RetrievalSplit { train, query, database };
    split.validate();
    split
}

/// Shuffles a dataset's row order in place (keeps feature/label pairing).
pub fn shuffle(dataset: &Dataset, rng: &mut StdRng) -> Dataset {
    let n = dataset.len();
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    dataset.subset(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::imbalance_factor;
    use lt_linalg::distance::squared_l2;

    fn small_config() -> SynthConfig {
        SynthConfig {
            num_classes: 10,
            dim: 16,
            pi1: 50,
            imbalance_factor: 10.0,
            n_query: 40,
            n_database: 300,
            domain: Domain::ImageLike,
            intra_class_std: None,
            seed: 7,
        }
    }

    #[test]
    fn split_shapes_and_determinism() {
        let a = generate_split(&small_config());
        let b = generate_split(&small_config());
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train.features, b.train.features);
        assert_eq!(a.query.len(), 40);
        assert_eq!(a.database.len(), 300);
        assert_eq!(a.train.dim(), 16);
    }

    #[test]
    fn train_follows_zipf() {
        let split = generate_split(&small_config());
        let counts = split.train.class_counts();
        assert_eq!(counts[0], 50);
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        let measured = imbalance_factor(&counts);
        assert!((measured - 10.0).abs() < 1.0, "IF {measured}");
    }

    #[test]
    fn query_is_balanced() {
        let split = generate_split(&small_config());
        let counts = split.query.class_counts();
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn database_preserves_zipf_shape() {
        let split = generate_split(&small_config());
        let counts = split.database.class_counts();
        assert!(counts[0] > counts[9], "db should stay long-tail");
        assert!(counts.iter().all(|&c| c >= 1));
        assert_eq!(counts.iter().sum::<usize>(), 300);
    }

    #[test]
    fn items_cluster_around_their_center() {
        let cfg = small_config();
        let split = generate_split(&cfg);
        let mut r = rng(cfg.seed);
        let centers = class_centers(cfg.num_classes, cfg.dim, &mut r);
        // Mean distance to own center should beat mean distance to a
        // different center for the head class.
        let idx = split.train.indices_of_class(0);
        let own: f32 = idx
            .iter()
            .map(|&i| squared_l2(split.train.features.row(i), centers.row(0)))
            .sum::<f32>()
            / idx.len() as f32;
        let other: f32 = idx
            .iter()
            .map(|&i| squared_l2(split.train.features.row(i), centers.row(5)))
            .sum::<f32>()
            / idx.len() as f32;
        assert!(own < other, "own {own} vs other {other}");
    }

    #[test]
    fn text_domain_has_higher_variance() {
        let mut img_cfg = small_config();
        img_cfg.domain = Domain::ImageLike;
        let mut txt_cfg = small_config();
        txt_cfg.domain = Domain::TextLike;
        assert!(txt_cfg.sigma() > img_cfg.sigma());
    }

    #[test]
    fn noise_norm_is_dimension_invariant() {
        // The per-dim σ shrinks with dimension so the total noise norm is
        // constant: σ(d)·√d = noise_norm.
        for d in [8usize, 64, 512] {
            let s = Domain::ImageLike.intra_class_std(d);
            assert!((s * (d as f32).sqrt() - 0.9).abs() < 1e-5);
        }
    }

    #[test]
    fn proportional_counts_sum_to_total() {
        let counts = zipf_proportional_counts(1000, &[50, 25, 10, 5]);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert!(counts[0] > counts[3]);
    }

    #[test]
    fn balanced_counts_distribute_remainder() {
        assert_eq!(balanced_counts(10, 3), vec![4, 3, 3]);
        assert_eq!(balanced_counts(9, 3), vec![3, 3, 3]);
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let split = generate_split(&small_config());
        let mut r = rng(99);
        let shuffled = shuffle(&split.train, &mut r);
        assert_eq!(shuffled.len(), split.train.len());
        assert_eq!(shuffled.class_counts(), split.train.class_counts());
        // Order actually changed (overwhelmingly likely).
        assert_ne!(shuffled.labels, split.train.labels);
    }
}
