//! `lt-data`: long-tail dataset synthesis for the LightLT reproduction.
//!
//! The paper evaluates on Cifar100, ImageNet100, Amazon News (NC), and a
//! proprietary Amazon query dataset (QBA), all re-split to Zipf's-law
//! long-tail distributions (Definition 1, Table I). None of those are
//! available here, and the paper's pipelines consume *pretrained
//! embeddings* rather than raw data — so this crate synthesizes embedding
//! datasets with controlled class geometry and exactly the Table-I class
//! statistics. See DESIGN.md §3 for the substitution argument.
//!
//! * [`zipf`] — Zipf class sizes and imbalance-factor math (Definition 1).
//! * [`dataset`] — [`Dataset`] / [`RetrievalSplit`] containers.
//! * [`synth`] — Gaussian class-cluster generator with per-domain variance.
//! * [`registry`] — the eight Table-I dataset specs and their generators.
//! * [`split`] — mini-batch iteration and holdout splitting.
//! * [`io`] — binary .ltd dataset serialization.

#![warn(missing_docs)]

pub mod dataset;
pub mod io;
pub mod registry;
pub mod split;
pub mod synth;
pub mod zipf;

pub use dataset::{Dataset, RetrievalSplit};
pub use registry::{all_specs, generate, spec, DatasetKind, DatasetSpec};
pub use split::{Batch, BatchIter};
pub use synth::{generate_split, Domain, SynthConfig};
