//! Mini-batch iteration and train/validation splitting.

use lt_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::dataset::Dataset;

/// One mini-batch: features plus aligned labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// `b × d` features.
    pub features: Matrix,
    /// Labels, length `b`.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Yields shuffled mini-batches over a dataset, reshuffling each epoch.
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a shuffled batch iterator for one epoch.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(dataset: &'a Dataset, batch_size: usize, rng: &mut StdRng) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let n = dataset.len();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Self { dataset, order, batch_size, cursor: 0 }
    }

    /// Number of batches this epoch will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let features = self.dataset.features.select_rows(idx);
        let labels = idx.iter().map(|&i| self.dataset.labels[i]).collect();
        Some(Batch { features, labels })
    }
}

/// Splits a dataset into `(train, holdout)` with `holdout_fraction` of the
/// rows (at least one row each when possible), after shuffling.
pub fn train_holdout_split(
    dataset: &Dataset,
    holdout_fraction: f32,
    rng: &mut StdRng,
) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&holdout_fraction),
        "holdout fraction must be in [0, 1)"
    );
    let n = dataset.len();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let n_holdout = ((n as f32 * holdout_fraction).round() as usize).min(n.saturating_sub(1));
    let (holdout_idx, train_idx) = order.split_at(n_holdout);
    (dataset.subset(train_idx), dataset.subset(holdout_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::rng;

    fn toy(n: usize) -> Dataset {
        let features = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(features, labels, 3)
    }

    #[test]
    fn batches_cover_dataset_exactly_once() {
        let d = toy(10);
        let mut r = rng(1);
        let mut seen = vec![0usize; 10];
        for batch in BatchIter::new(&d, 3, &mut r) {
            for i in 0..batch.len() {
                // Recover the original row from its unique feature value.
                let row0 = batch.features[(i, 0)] as usize / 2;
                seen[row0] += 1;
                assert_eq!(batch.labels[i], row0 % 3, "pairing broken");
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage {seen:?}");
    }

    #[test]
    fn batch_sizes_and_count() {
        let d = toy(10);
        let mut r = rng(2);
        let it = BatchIter::new(&d, 4, &mut r);
        assert_eq!(it.num_batches(), 3);
        let sizes: Vec<usize> = it.map(|b| b.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn different_epochs_shuffle_differently() {
        let d = toy(64);
        let mut r = rng(3);
        let a: Vec<usize> = BatchIter::new(&d, 64, &mut r).next().unwrap().labels;
        let b: Vec<usize> = BatchIter::new(&d, 64, &mut r).next().unwrap().labels;
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn rejects_zero_batch() {
        let d = toy(4);
        let _ = BatchIter::new(&d, 0, &mut rng(4));
    }

    #[test]
    fn holdout_split_partitions() {
        let d = toy(20);
        let mut r = rng(5);
        let (train, holdout) = train_holdout_split(&d, 0.25, &mut r);
        assert_eq!(train.len(), 15);
        assert_eq!(holdout.len(), 5);
        // Together they contain every row exactly once (by unique feature).
        let mut all: Vec<i64> = train
            .features
            .rows_iter()
            .chain(holdout.features.rows_iter())
            .map(|row| row[0] as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn holdout_zero_fraction_keeps_everything() {
        let d = toy(5);
        let (train, holdout) = train_holdout_split(&d, 0.0, &mut rng(6));
        assert_eq!(train.len(), 5);
        assert_eq!(holdout.len(), 0);
    }
}
