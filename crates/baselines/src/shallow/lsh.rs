//! Locality-Sensitive Hashing (Gionis et al., VLDB 1999).
//!
//! Data-independent random-hyperplane hashing: `h(x) = sign(x · W)` with
//! Gaussian `W`. The weakest baseline in both Table II and Table III.

use lt_linalg::random::{randn, rng};
use lt_linalg::Matrix;

use crate::common::{sign_matrix, BinaryHasher, BitCodes};

/// Random-hyperplane LSH with `bits` hyperplanes.
#[derive(Debug, Clone)]
pub struct Lsh {
    projection: Matrix,
}

impl Lsh {
    /// Draws `bits` random Gaussian hyperplanes in `dim` dimensions.
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        assert!(dim > 0 && bits > 0);
        let mut r = rng(seed);
        Self { projection: randn(dim, bits, &mut r) }
    }
}

impl BinaryHasher for Lsh {
    fn hash(&self, x: &Matrix) -> BitCodes {
        let projected = lt_linalg::gemm::matmul(x, &self.projection);
        BitCodes::from_sign_matrix(&sign_matrix(&projected))
    }

    fn bits(&self) -> usize {
        self.projection.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::randn as randn_fn;

    #[test]
    fn deterministic_given_seed() {
        let a = Lsh::new(8, 16, 3);
        let b = Lsh::new(8, 16, 3);
        let x = randn_fn(5, 8, &mut rng(1));
        assert_eq!(a.hash(&x), b.hash(&x));
        assert_eq!(a.bits(), 16);
    }

    #[test]
    fn nearby_points_share_most_bits() {
        let lsh = Lsh::new(16, 64, 7);
        let mut r = rng(2);
        let base = randn_fn(1, 16, &mut r);
        let near = base.map(|v| v + 1e-4);
        let far = base.scale(-1.0);
        let cb = lsh.hash(&base);
        let cn = lsh.hash(&near);
        let cf = lsh.hash(&far);
        let d_near = cb.distance(0, &cn, 0);
        let d_far = cb.distance(0, &cf, 0);
        assert!(d_near < 4, "near distance {d_near}");
        assert_eq!(d_far, 64, "antipodal point flips every hyperplane bit");
    }
}
