//! Iterative Quantization (ITQ; Gong et al., TPAMI 2013).
//!
//! PCA to `B` dimensions, then alternate:
//! 1. `B = sign(V · R)` (binary codes given rotation),
//! 2. `R = argmin_R ‖B − V·R‖_F` (orthogonal Procrustes),
//!
//! which minimizes the quantization error of mapping centered data onto the
//! binary hypercube.

use lt_linalg::gemm::matmul;
use lt_linalg::pca::Pca;
use lt_linalg::random::rng;
use lt_linalg::svd::procrustes_rotation;
use lt_linalg::Matrix;

use crate::common::{sign_matrix, BinaryHasher, BitCodes};

/// ITQ hashing: PCA projection plus a learned rotation.
#[derive(Debug, Clone)]
pub struct Itq {
    pca: Pca,
    rotation: Matrix,
}

impl Itq {
    /// Fits ITQ with `iters` alternating updates.
    pub fn fit(train: &Matrix, bits: usize, iters: usize, seed: u64) -> Self {
        let pca = Pca::fit(train, bits);
        let v = pca.transform(train);
        let b = v.cols(); // effective bits (clamped to dim)

        // Random orthogonal init: eigenvectors of a random symmetric matrix.
        let mut r = rng(seed);
        let sym = {
            let g = lt_linalg::random::randn(b, b, &mut r);
            lt_linalg::gemm::matmul_at_b(&g, &g)
        };
        let mut rotation = lt_linalg::eigen::eigen_symmetric(&sym).vectors;

        for _ in 0..iters {
            let projected = matmul(&v, &rotation);
            let codes = sign_matrix(&projected);
            // R ← argmin ‖codes − V·R‖.
            rotation = procrustes_rotation(&v, &codes);
        }
        Self { pca, rotation }
    }

    /// Quantization error `‖sign(VR) − VR‖_F` on a dataset (diagnostic; ITQ
    /// monotonically reduces this during fitting).
    pub fn quantization_error(&self, x: &Matrix) -> f32 {
        let v = matmul(&self.pca.transform(x), &self.rotation);
        sign_matrix(&v).sub(&v).frobenius_norm()
    }
}

impl BinaryHasher for Itq {
    fn hash(&self, x: &Matrix) -> BitCodes {
        let projected = matmul(&self.pca.transform(x), &self.rotation);
        BitCodes::from_sign_matrix(&sign_matrix(&projected))
    }

    fn bits(&self) -> usize {
        self.rotation.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::gemm::matmul_at_b;
    use lt_linalg::random::randn;

    #[test]
    fn rotation_is_orthogonal() {
        let train = randn(80, 8, &mut rng(1));
        let itq = Itq::fit(&train, 8, 20, 2);
        let g = matmul_at_b(&itq.rotation, &itq.rotation);
        for i in 0..8 {
            for j in 0..8 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - expect).abs() < 1e-2, "R not orthogonal at ({i},{j})");
            }
        }
    }

    #[test]
    fn iterations_reduce_quantization_error() {
        let train = randn(120, 10, &mut rng(3));
        let early = Itq::fit(&train, 8, 1, 4);
        let late = Itq::fit(&train, 8, 30, 4);
        let e_early = early.quantization_error(&train);
        let e_late = late.quantization_error(&train);
        assert!(
            e_late <= e_early + 1e-3,
            "ITQ failed to reduce quantization error: {e_early} → {e_late}"
        );
    }

    #[test]
    fn hash_is_deterministic() {
        let train = randn(40, 6, &mut rng(5));
        let a = Itq::fit(&train, 4, 10, 6);
        let b = Itq::fit(&train, 4, 10, 6);
        let x = randn(7, 6, &mut rng(7));
        assert_eq!(a.hash(&x), b.hash(&x));
    }
}
