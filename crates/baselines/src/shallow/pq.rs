//! Product Quantization (PQ; Jégou et al., TPAMI 2011) and Optimized
//! Product Quantization (OPQ; Ge et al., CVPR 2014).
//!
//! PQ splits the `d`-dimensional space into `M` contiguous subspaces,
//! k-means-codebooks each with `K` centroids, and ranks queries by
//! asymmetric distance (per-subspace lookup tables). OPQ additionally
//! learns an orthogonal rotation minimizing quantization error by
//! alternating PQ fitting with an orthogonal-Procrustes update.

use lt_eval::Ranker;
use lt_linalg::distance::squared_l2;
use lt_linalg::gemm::matmul;
use lt_linalg::kmeans::{kmeans, KMeansConfig};
use lt_linalg::random::{derive_seed, rng};
use lt_linalg::svd::procrustes_rotation;
use lt_linalg::Matrix;

/// Rows per parallel work item in `Pq::encode` (fixed, so codes never
/// depend on the runtime width).
const ENCODE_CHUNK: usize = 64;

/// A trained product quantizer.
#[derive(Debug, Clone)]
pub struct Pq {
    /// One `K × (d/M)` codebook per subspace.
    codebooks: Vec<Matrix>,
    sub_dim: usize,
    k: usize,
}

impl Pq {
    /// Fits PQ with `m` subspaces of `k` centroids each.
    ///
    /// Subspaces are independent, so their k-means fits run in parallel on
    /// the runtime pool. Each subspace draws from its own RNG stream
    /// (derived from `seed` and the subspace index), which keeps the fit
    /// bitwise deterministic for any thread count.
    ///
    /// # Panics
    /// Panics unless the feature dimension divides evenly by `m`.
    pub fn fit(train: &Matrix, m: usize, k: usize, seed: u64) -> Self {
        assert!(m > 0 && k > 1);
        assert_eq!(
            train.cols() % m,
            0,
            "PQ requires dim ({}) divisible by M ({m})",
            train.cols()
        );
        let sub_dim = train.cols() / m;
        let codebooks = lt_runtime::parallel_map_chunks(m, 1, |range| {
            let s = range.start;
            let sub = subspace(train, s, sub_dim);
            let mut r = rng(derive_seed(seed, s as u64));
            kmeans(&sub, KMeansConfig { k, max_iters: 25, tol: 1e-4 }, &mut r).centroids
        });
        Self { codebooks, sub_dim, k }
    }

    /// Number of subspaces `M`.
    pub fn num_subspaces(&self) -> usize {
        self.codebooks.len()
    }

    /// Centroids per subspace `K`.
    pub fn num_centroids(&self) -> usize {
        self.k
    }

    /// Encodes each row into `M` centroid ids (row-parallel; rows are
    /// independent, so codes are identical for any thread count).
    pub fn encode(&self, x: &Matrix) -> Vec<u16> {
        let m = self.num_subspaces();
        let mut codes = vec![0u16; x.rows() * m];
        lt_runtime::parallel_for_each_mut(&mut codes, ENCODE_CHUNK * m, |start, chunk| {
            let i0 = start / m;
            for (ri, code_row) in chunk.chunks_mut(m).enumerate() {
                let row = x.row(i0 + ri);
                for (s, cb) in self.codebooks.iter().enumerate() {
                    let sub = &row[s * self.sub_dim..(s + 1) * self.sub_dim];
                    let mut best = 0;
                    let mut best_d = f32::INFINITY;
                    for c in 0..self.k {
                        let d = squared_l2(sub, cb.row(c));
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    code_row[s] = best as u16;
                }
            }
        });
        codes
    }

    /// Reconstructs vectors from codes (concatenated centroids).
    pub fn decode(&self, codes: &[u16], n: usize) -> Matrix {
        let m = self.num_subspaces();
        assert_eq!(codes.len(), n * m, "code length mismatch");
        let mut out = Matrix::zeros(n, m * self.sub_dim);
        for i in 0..n {
            for s in 0..m {
                let id = codes[i * m + s] as usize;
                let dst = &mut out.row_mut(i)[s * self.sub_dim..(s + 1) * self.sub_dim];
                dst.copy_from_slice(self.codebooks[s].row(id));
            }
        }
        out
    }

    /// Mean squared reconstruction error on a dataset (OPQ's objective).
    pub fn reconstruction_error(&self, x: &Matrix) -> f32 {
        let codes = self.encode(x);
        let recon = self.decode(&codes, x.rows());
        let diff = recon.sub(x);
        diff.as_slice().iter().map(|v| v * v).sum::<f32>() / x.rows().max(1) as f32
    }
}

fn subspace(x: &Matrix, s: usize, sub_dim: usize) -> Matrix {
    Matrix::from_fn(x.rows(), sub_dim, |i, j| x[(i, s * sub_dim + j)])
}

/// ADC index over a PQ-encoded database (codes held in the level-major
/// scan layout of [`lt_linalg::scan`]).
pub struct PqIndex {
    pq: Pq,
    codes: lt_linalg::LevelCodes,
    n: usize,
}

impl PqIndex {
    /// Encodes the database.
    pub fn build(pq: Pq, database: &Matrix) -> Self {
        let item_major = pq.encode(database);
        let codes =
            lt_linalg::LevelCodes::from_item_major(&item_major, pq.num_subspaces(), pq.num_centroids());
        Self { pq, codes, n: database.rows() }
    }

    /// Scores all items into a caller-provided buffer (negative squared
    /// distance, higher = closer) using per-subspace lookup tables on the
    /// blocked scan engine.
    pub fn scores_into(&self, query: &[f32], out: &mut Vec<f32>) {
        let m = self.pq.num_subspaces();
        let k = self.pq.num_centroids();
        let sub_dim = self.pq.sub_dim;
        // LUT[s][c] = ‖q_s − C_s[c]‖².
        let mut lut = vec![0.0f32; m * k];
        for (s, cb) in self.pq.codebooks.iter().enumerate() {
            let sub = &query[s * sub_dim..(s + 1) * sub_dim];
            for c in 0..k {
                lut[s * k + c] = squared_l2(sub, cb.row(c));
            }
        }
        lt_linalg::scan::adc_scores_sum(&self.codes, &lut, out);
        // Negating a sum of distances equals summing then flipping the sign
        // in the old per-item loop, so scores stay bitwise identical.
        for v in out.iter_mut() {
            *v = -*v;
        }
    }

    /// Scores all items for a query (allocating wrapper around
    /// [`PqIndex::scores_into`]).
    pub fn scores(&self, query: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.scores_into(query, &mut out);
        out
    }
}

impl Ranker for PqIndex {
    fn rank(&self, query: &[f32]) -> Vec<usize> {
        lt_linalg::topk::rank_all(&self.scores(query))
    }

    fn rank_batch(&self, queries: &Matrix) -> Vec<Vec<usize>> {
        let mut scores = Vec::new();
        (0..queries.rows())
            .map(|i| {
                self.scores_into(queries.row(i), &mut scores);
                lt_linalg::topk::rank_all(&scores)
            })
            .collect()
    }

    fn database_len(&self) -> usize {
        self.n
    }
}

/// Optimized Product Quantization: rotation + PQ.
#[derive(Debug, Clone)]
pub struct Opq {
    rotation: Matrix,
    pq: Pq,
}

impl Opq {
    /// Fits OPQ with `iters` alternations of PQ fitting and Procrustes
    /// rotation updates.
    pub fn fit(train: &Matrix, m: usize, k: usize, iters: usize, seed: u64) -> Self {
        let d = train.cols();
        let mut rotation = Matrix::identity(d);
        let mut pq = Pq::fit(train, m, k, seed);
        for it in 0..iters {
            let rotated = matmul(train, &rotation);
            pq = Pq::fit(&rotated, m, k, seed.wrapping_add(it as u64 + 1));
            // Rotation update: align X with the reconstruction of X·R.
            let codes = pq.encode(&rotated);
            let recon = pq.decode(&codes, rotated.rows());
            rotation = procrustes_rotation(train, &recon);
        }
        Self { rotation, pq }
    }

    /// Rotates then encodes.
    pub fn encode(&self, x: &Matrix) -> Vec<u16> {
        self.pq.encode(&matmul(x, &self.rotation))
    }

    /// Builds an ADC index over a database.
    pub fn build_index(&self, database: &Matrix) -> PqIndex {
        PqIndex::build(self.pq.clone(), &matmul(database, &self.rotation))
    }

    /// Rotates a query into the OPQ space (callers must rotate queries
    /// before searching the index from [`Opq::build_index`]).
    pub fn rotate_query(&self, q: &[f32]) -> Vec<f32> {
        let qm = Matrix::from_vec(1, q.len(), q.to_vec());
        matmul(&qm, &self.rotation).into_vec()
    }

    /// Mean squared reconstruction error in the rotated space.
    pub fn reconstruction_error(&self, x: &Matrix) -> f32 {
        self.pq.reconstruction_error(&matmul(x, &self.rotation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::randn;

    fn data(seed: u64) -> Matrix {
        randn(120, 8, &mut rng(seed))
    }

    #[test]
    fn encode_decode_shapes() {
        let x = data(1);
        let pq = Pq::fit(&x, 4, 8, 2);
        let codes = pq.encode(&x);
        assert_eq!(codes.len(), 120 * 4);
        assert!(codes.iter().all(|&c| (c as usize) < 8));
        let recon = pq.decode(&codes, 120);
        assert_eq!(recon.shape(), (120, 8));
    }

    #[test]
    #[should_panic(expected = "divisible by M")]
    fn rejects_indivisible_dims() {
        let x = data(2);
        let _ = Pq::fit(&x, 3, 8, 1);
    }

    #[test]
    fn more_centroids_reduce_error() {
        let x = data(3);
        let coarse = Pq::fit(&x, 4, 2, 4);
        let fine = Pq::fit(&x, 4, 32, 4);
        assert!(fine.reconstruction_error(&x) < coarse.reconstruction_error(&x));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn adc_scores_match_reconstructed_distances() {
        let x = data(5);
        let pq = Pq::fit(&x, 2, 8, 6);
        let idx = PqIndex::build(pq.clone(), &x);
        let q: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let scores = idx.scores(&q);
        let codes = pq.encode(&x);
        let recon = pq.decode(&codes, x.rows());
        for i in 0..x.rows() {
            let direct = -squared_l2(&q, recon.row(i));
            assert!((scores[i] - direct).abs() < 1e-3);
        }
    }

    #[test]
    fn opq_no_worse_than_pq_on_correlated_data() {
        // Correlated dimensions are PQ's weakness; OPQ's rotation decorrelates.
        let mut r = rng(7);
        let latent = randn(150, 4, &mut r);
        let mix = randn(4, 8, &mut r);
        let x = matmul(&latent, &mix);
        let pq_err = Pq::fit(&x, 4, 4, 8).reconstruction_error(&x);
        let opq = Opq::fit(&x, 4, 4, 8, 8);
        let opq_err = opq.reconstruction_error(&x);
        assert!(
            opq_err <= pq_err * 1.05,
            "OPQ err {opq_err} should not exceed PQ err {pq_err}"
        );
    }

    #[test]
    fn pq_ranker_finds_exact_match() {
        let x = data(9);
        let pq = Pq::fit(&x, 4, 16, 10);
        let idx = PqIndex::build(pq, &x);
        let rank = idx.rank(x.row(17));
        // The query's own quantization cell should rank at/near the top.
        let pos = rank.iter().position(|&i| i == 17).unwrap();
        assert!(pos < 12, "self-match ranked {pos}");
    }
}
