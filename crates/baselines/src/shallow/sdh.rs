//! Supervised Discrete Hashing (SDH; Shen et al., CVPR 2015), simplified.
//!
//! SDH jointly learns binary codes `B`, a code→label classifier `W`, and a
//! feature→code projection `P` by alternating:
//!
//! 1. `W ← argmin ‖Y − B·W‖² + λ‖W‖²` (ridge regression),
//! 2. `P ← argmin ‖B − X·P‖² + ε‖P‖²` (ridge regression),
//! 3. `B ← sign(Y·Wᵀ + ν·X·P)` (discrete update).
//!
//! The original uses an RBF-kernel feature map and a bit-wise DCC solver for
//! step 3; we keep the linear feature map and the joint sign update — the
//! standard "SDH-linear" simplification — since our inputs are already
//! pretrained embeddings.

use lt_linalg::gemm::{matmul, matmul_a_bt};
use lt_linalg::solve::ridge_solve;
use lt_linalg::Matrix;

use crate::common::{label_matrix, sign_matrix, BinaryHasher, BitCodes};

/// Trained SDH model: out-of-sample hashing via `sign(X·P)`.
#[derive(Debug, Clone)]
pub struct Sdh {
    projection: Matrix,
}

/// SDH hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SdhConfig {
    /// Code length in bits.
    pub bits: usize,
    /// Ridge weight λ of the classifier regression.
    pub lambda: f32,
    /// Weight ν of the feature-projection term in the code update.
    pub nu: f32,
    /// Alternating iterations.
    pub iters: usize,
    /// RNG seed for the code initialization.
    pub seed: u64,
}

impl Default for SdhConfig {
    fn default() -> Self {
        Self { bits: 32, lambda: 1.0, nu: 1.0, iters: 8, seed: 0 }
    }
}

impl Sdh {
    /// Fits SDH on labeled training features.
    pub fn fit(train: &Matrix, labels: &[usize], num_classes: usize, config: SdhConfig) -> Self {
        assert_eq!(train.rows(), labels.len(), "label count mismatch");
        assert!(config.bits > 0 && config.iters > 0);
        let y = label_matrix(labels, num_classes);

        // Init codes from random projections of the data (better than pure
        // random: starts consistent with the feature geometry).
        let mut r = lt_linalg::random::rng(config.seed);
        let init_proj = lt_linalg::random::randn(train.cols(), config.bits, &mut r);
        let mut b = sign_matrix(&matmul(train, &init_proj));
        let mut p = Matrix::zeros(train.cols(), config.bits);

        for _ in 0..config.iters {
            // W-step: ridge regression from codes to labels.
            let w = ridge_solve(&b, &y, config.lambda);
            // P-step: ridge regression from features to codes.
            p = ridge_solve(train, &b, 1e-3);
            // B-step: joint sign update.
            let fit_term = matmul_a_bt(&y, &w); // Y·Wᵀ  (n × bits)
            let proj_term = matmul(train, &p).scale(config.nu);
            b = sign_matrix(&fit_term.add(&proj_term));
        }

        Self { projection: p }
    }
}

impl BinaryHasher for Sdh {
    fn hash(&self, x: &Matrix) -> BitCodes {
        BitCodes::from_sign_matrix(&sign_matrix(&matmul(x, &self.projection)))
    }

    fn bits(&self) -> usize {
        self.projection.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::HammingRanker;
    use lt_eval::{evaluate_map, Ranker};
    use lt_linalg::random::{randn_scaled, rng};

    /// Two-class Gaussian task: SDH's supervised codes should beat chance.
    #[test]
    fn supervised_codes_separate_classes() {
        let mut r = rng(1);
        let a = randn_scaled(40, 8, 1.0, 0.5, &mut r);
        let b = randn_scaled(40, 8, -1.0, 0.5, &mut r);
        let train = Matrix::vstack(&[&a, &b]);
        let labels: Vec<usize> = (0..80).map(|i| usize::from(i >= 40)).collect();

        let sdh = Sdh::fit(&train, &labels, 2, SdhConfig { bits: 16, ..Default::default() });
        let ranker = HammingRanker::new(&sdh, &train);
        let queries = train.select_rows(&[0, 40]);
        let map = evaluate_map(&ranker, &queries, &[0, 1], &labels);
        assert!(map > 0.8, "SDH MAP only {map}");
    }

    #[test]
    fn out_of_sample_hashing_consistent() {
        let mut r = rng(2);
        let train = randn_scaled(30, 6, 0.0, 1.0, &mut r);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let sdh = Sdh::fit(&train, &labels, 3, SdhConfig { bits: 8, ..Default::default() });
        let x = randn_scaled(5, 6, 0.0, 1.0, &mut r);
        let c1 = sdh.hash(&x);
        let c2 = sdh.hash(&x);
        assert_eq!(c1, c2);
        assert_eq!(sdh.bits(), 8);
    }

    #[test]
    fn ranker_covers_database() {
        let mut r = rng(3);
        let train = randn_scaled(20, 4, 0.0, 1.0, &mut r);
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let sdh = Sdh::fit(&train, &labels, 2, SdhConfig { bits: 4, ..Default::default() });
        let ranker = HammingRanker::new(&sdh, &train);
        let rank = ranker.rank(train.row(0));
        assert_eq!(rank.len(), 20);
    }
}
