//! PCA Hashing (PCAH; Gong et al.'s baseline in the ITQ paper).
//!
//! Project onto the top-`B` principal directions of the training data and
//! threshold each at zero (data is mean-centered by the PCA transform).

use lt_linalg::pca::Pca;
use lt_linalg::Matrix;

use crate::common::{sign_matrix, BinaryHasher, BitCodes};

/// PCA hashing with `bits` principal directions.
#[derive(Debug, Clone)]
pub struct Pcah {
    pca: Pca,
}

impl Pcah {
    /// Fits PCA on training features.
    pub fn fit(train: &Matrix, bits: usize) -> Self {
        Self { pca: Pca::fit(train, bits) }
    }
}

impl BinaryHasher for Pcah {
    fn hash(&self, x: &Matrix) -> BitCodes {
        let projected = self.pca.transform(x);
        BitCodes::from_sign_matrix(&sign_matrix(&projected))
    }

    fn bits(&self) -> usize {
        self.pca.k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::{randn, rng};

    #[test]
    fn bits_clamped_to_dim() {
        let train = randn(50, 6, &mut rng(1));
        let h = Pcah::fit(&train, 32);
        assert_eq!(h.bits(), 6);
    }

    #[test]
    fn separated_clusters_get_distinct_codes() {
        let mut r = rng(2);
        let a = randn(30, 8, &mut r).map(|v| v * 0.1 + 3.0);
        let b = randn(30, 8, &mut r).map(|v| v * 0.1 - 3.0);
        let train = Matrix::vstack(&[&a, &b]);
        let h = Pcah::fit(&train, 4);
        let ca = h.hash(&a);
        let cb = h.hash(&b);
        // Within-cluster distance << between-cluster distance on average.
        let within = ca.distance(0, &ca, 1);
        let between = ca.distance(0, &cb, 0);
        assert!(between > within, "between {between} vs within {within}");
    }
}
