//! Shallow (non-deep) baselines: data-independent and linear/alternating
//! methods operating directly on pretrained embeddings.

pub mod itq;
pub mod lsh;
pub mod pcah;
pub mod pq;
pub mod sdh;
