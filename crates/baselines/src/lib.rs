//! `lt-baselines`: the hashing/quantization baselines LightLT is compared
//! against in Tables II and III.
//!
//! Implemented from their defining equations:
//!
//! * **Shallow** — [`shallow::lsh::Lsh`] (random hyperplanes),
//!   [`shallow::pcah::Pcah`], [`shallow::itq::Itq`] (PCA + Procrustes
//!   rotation), [`shallow::sdh::Sdh`] (alternating discrete regression,
//!   linear variant), [`shallow::pq::Pq`] / [`shallow::pq::Opq`]
//!   (k-means product quantization ± learned rotation).
//! * **Deep** — [`deep::deep_hash::DeepHash`] covering DPSH, HashNet, DSDH,
//!   and CSQ via one shared architecture with per-method losses;
//!   [`deep::dpq::Dpq`] (differentiable product quantization);
//!   [`deep::kde::Kde`] (K-way D-dimensional discrete codes);
//!   [`deep::lthnet::LthNet`] (long-tail hashing with a prototype-memory
//!   meta-embedding).
//!
//! Table II rows the paper itself copies from the LTHNet paper without
//! running (KNNH, FastHash, FSSH, COSDISH, SCDH) are *not* reimplemented;
//! the Table-II bench prints them as clearly-labeled reference values
//! (DESIGN.md §3).

#![warn(missing_docs)]

pub mod common;
pub mod deep;
pub mod shallow;

pub use common::{AdcIndex, BinaryHasher, BitCodes, HammingRanker};
