//! Deep baselines trained end-to-end on the `lt-tensor` autodiff stack.

pub mod deep_hash;
pub mod dpq;
pub mod kde;
pub mod lthnet;
