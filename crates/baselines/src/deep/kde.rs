//! K-way D-dimensional discrete codes (KDE; Chen, Min & Sun, ICML 2018).
//!
//! KDE composes an embedding *additively* from `D` codebooks over the full
//! space: each of the `D` code dimensions selects one of `K` codewords via
//! a learned key matrix and a tempered softmax (trained with the
//! straight-through trick), and the embedding is the sum of the selected
//! codewords. The crucial contrasts with DPQ (subspace concat) and LightLT
//! (residual encoding + codebook skip): every KDE encoder sees the *same*
//! input, relying on the learned keys for diversity.

use lt_data::{BatchIter, Dataset};
use lt_linalg::gemm::{dot, matmul_a_bt};
use lt_linalg::random::rng as seed_rng;
use lt_linalg::Matrix;
use lt_tensor::nn::{Linear, Mlp};
use lt_tensor::optim::{AdamW, Optimizer};
use lt_tensor::{Init, ParamId, ParamStore, Tape};
use rand::SeedableRng;

use crate::common::AdcIndex;

/// KDE hyper-parameters.
#[derive(Debug, Clone)]
pub struct KdeConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Backbone hidden width.
    pub hidden: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Code length `D` (number of codebooks).
    pub d_codes: usize,
    /// Codewords per codebook `K`.
    pub k: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Softmax temperature.
    pub temperature: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KdeConfig {
    fn default() -> Self {
        Self {
            input_dim: 64,
            hidden: 128,
            embed_dim: 32,
            d_codes: 4,
            k: 256,
            num_classes: 10,
            temperature: 0.2,
            epochs: 15,
            batch_size: 64,
            learning_rate: 3e-3,
            seed: 13,
        }
    }
}

/// A trained KDE model.
pub struct Kde {
    config: KdeConfig,
    store: ParamStore,
    backbone: Mlp,
    classifier: Linear,
    /// Key matrices (`K × embed_dim`): scores = z · keyᵀ.
    key_ids: Vec<ParamId>,
    /// Value codebooks (`K × embed_dim`): embedding += value[selected].
    value_ids: Vec<ParamId>,
}

impl Kde {
    /// Trains KDE on a labeled dataset.
    pub fn fit(config: KdeConfig, train: &Dataset) -> Self {
        assert_eq!(train.dim(), config.input_dim, "input dim mismatch");
        let mut store = ParamStore::new();
        let mut r = rand::rngs::StdRng::seed_from_u64(config.seed);
        let backbone = Mlp::new(
            &mut store,
            "net",
            &[config.input_dim, config.hidden, config.embed_dim],
            &mut r,
        );
        let classifier = Linear::new(
            &mut store,
            "cls",
            config.embed_dim,
            config.num_classes,
            Init::XavierUniform,
            &mut r,
        );
        let key_ids: Vec<ParamId> = (0..config.d_codes)
            .map(|m| {
                store.register(
                    format!("key.{m}"),
                    Init::Normal { std: 0.3 }.build(config.k, config.embed_dim, &mut r),
                )
            })
            .collect();
        let value_ids: Vec<ParamId> = (0..config.d_codes)
            .map(|m| {
                store.register(
                    format!("value.{m}"),
                    Init::Normal { std: 0.1 }.build(config.k, config.embed_dim, &mut r),
                )
            })
            .collect();

        let mut model = Self { config: config.clone(), store, backbone, classifier, key_ids, value_ids };
        let mut opt = AdamW::new(config.learning_rate);
        let mut data_rng = seed_rng(config.seed.wrapping_add(23));
        for _ in 0..config.epochs {
            for batch in BatchIter::new(train, config.batch_size, &mut data_rng) {
                model.store.zero_grads();
                model.train_step(&batch.features, &batch.labels);
                let norm = model.store.grad_norm();
                if norm > 5.0 {
                    model.store.scale_grads(5.0 / norm);
                }
                opt.step(&mut model.store);
            }
        }
        model
    }

    fn train_step(&mut self, features: &Matrix, labels: &[usize]) {
        let n = features.rows();
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let z = self.backbone.forward(&mut tape, &self.store, x);

        let mut out = None;
        for (&key_id, &value_id) in self.key_ids.iter().zip(&self.value_ids) {
            let key = tape.param(&self.store, key_id);
            let value = tape.param(&self.store, value_id);
            let scores = tape.matmul_bt(z, key); // n × K (inner-product keys)
            let hard = {
                let sv = tape.value(scores);
                let mut onehot = Matrix::zeros(n, self.config.k);
                for i in 0..n {
                    let row = sv.row(i);
                    let mut best = 0;
                    let mut best_v = f32::NEG_INFINITY;
                    for (j, &v) in row.iter().enumerate() {
                        if v > best_v {
                            best_v = v;
                            best = j;
                        }
                    }
                    onehot[(i, best)] = 1.0;
                }
                tape.constant(onehot)
            };
            let tempered = tape.scale(scores, 1.0 / self.config.temperature);
            let soft = tape.softmax_rows(tempered);
            let diff = tape.sub(hard, soft);
            let sg = tape.stop_grad(diff);
            let b = tape.add(soft, sg);
            let o_m = tape.matmul(b, value);
            out = Some(match out {
                Some(acc) => tape.add(acc, o_m),
                None => o_m,
            });
        }
        let o = out.expect("at least one code dimension");
        let logits = self.classifier.forward(&mut tape, &self.store, o);
        let logp = tape.log_softmax_rows(logits);
        let ones = vec![1.0f32; n];
        let loss = tape.nll_weighted(logp, labels, &ones);
        let grads = tape.backward(loss);
        tape.accumulate_param_grads(&grads, &mut self.store);
    }

    /// Continuous embeddings (inference).
    pub fn embed(&self, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let z = self.backbone.forward(&mut tape, &self.store, xv);
        tape.value(z).clone()
    }

    /// Composed (quantized) embeddings `Σ_m value_m[code_m]`.
    ///
    /// KDE's codes live in the *composed* space, not the backbone space, so
    /// retrieval must compare composed query embeddings against composed
    /// database embeddings (symmetric distance computation).
    pub fn quantized_embed(&self, x: &Matrix) -> Matrix {
        let codes = self.encode(x);
        let d = self.config.d_codes;
        let mut out = Matrix::zeros(x.rows(), self.config.embed_dim);
        for i in 0..x.rows() {
            for (m, &value_id) in self.value_ids.iter().enumerate() {
                let vb = self.store.value(value_id);
                let id = codes[i * d + m] as usize;
                let row = out.row_mut(i);
                for (v, &c) in row.iter_mut().zip(vb.row(id)) {
                    *v += c;
                }
            }
        }
        out
    }

    /// Hard codes per item (`D` ids each, inner-product key selection).
    pub fn encode(&self, x: &Matrix) -> Vec<u16> {
        let z = self.embed(x);
        let d = self.config.d_codes;
        let mut codes = vec![0u16; z.rows() * d];
        for (m, &key_id) in self.key_ids.iter().enumerate() {
            let key = self.store.value(key_id);
            let scores = matmul_a_bt(&z, key);
            for i in 0..z.rows() {
                let row = scores.row(i);
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                codes[i * d + m] = best as u16;
            }
        }
        codes
    }

    /// Mean reconstruction error `‖z − Σ value[code]‖²` (diagnostic).
    pub fn reconstruction_error(&self, x: &Matrix) -> f32 {
        let z = self.embed(x);
        let codes = self.encode(x);
        let d = self.config.d_codes;
        let mut total = 0.0;
        for i in 0..z.rows() {
            let mut recon = vec![0.0f32; self.config.embed_dim];
            for (m, &value_id) in self.value_ids.iter().enumerate() {
                let vb = self.store.value(value_id);
                let id = codes[i * d + m] as usize;
                for (v, &c) in recon.iter_mut().zip(vb.row(id)) {
                    *v += c;
                }
            }
            let diff: Vec<f32> = z.row(i).iter().zip(&recon).map(|(a, b)| a - b).collect();
            total += dot(&diff, &diff);
        }
        total / z.rows().max(1) as f32
    }

    /// Builds an ADC index over raw database features; queries must be
    /// composed with [`Kde::quantized_embed`] before ranking (symmetric
    /// distance — see that method's docs).
    pub fn build_index(&self, database_features: &Matrix) -> AdcIndex {
        let codes = self.encode(database_features);
        let codebooks: Vec<Matrix> =
            self.value_ids.iter().map(|&id| self.store.value(id).clone()).collect();
        AdcIndex::new(codebooks, codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_data::synth::{generate_split, Domain, SynthConfig};
    use lt_eval::Ranker;

    fn tiny_task() -> lt_data::RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 16,
            pi1: 30,
            imbalance_factor: 5.0,
            n_query: 16,
            n_database: 80,
            domain: Domain::TextLike,
            intra_class_std: None,
            seed: 60,
        })
    }

    fn config() -> KdeConfig {
        KdeConfig {
            input_dim: 16,
            hidden: 32,
            embed_dim: 12,
            d_codes: 3,
            k: 16,
            num_classes: 4,
            epochs: 25,
            batch_size: 32,
            learning_rate: 5e-3,
            ..Default::default()
        }
    }

    #[test]
    fn codes_shape_and_range() {
        let split = tiny_task();
        let model = Kde::fit(config(), &split.train);
        let codes = model.encode(&split.query.features);
        assert_eq!(codes.len(), split.query.len() * 3);
        assert!(codes.iter().all(|&c| (c as usize) < 16));
    }

    #[test]
    fn learns_retrievable_codes() {
        let split = tiny_task();
        let model = Kde::fit(config(), &split.train);
        let index = model.build_index(&split.database.features);
        let q_emb = model.quantized_embed(&split.query.features);
        let rankings = index.rank_batch(&q_emb);
        let map = lt_eval::mean_average_precision(
            &rankings,
            &split.query.labels,
            &split.database.labels,
        );
        assert!(map > 0.4, "KDE MAP only {map:.3}");
    }

    #[test]
    fn deterministic_training() {
        let split = tiny_task();
        let a = Kde::fit(config(), &split.train);
        let b = Kde::fit(config(), &split.train);
        assert_eq!(a.encode(&split.query.features), b.encode(&split.query.features));
    }
}
