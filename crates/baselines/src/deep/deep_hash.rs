//! The deep binary-hashing family: DPSH, HashNet, DSDH, CSQ.
//!
//! All four share one architecture — an MLP backbone over pretrained
//! embeddings ending in a `tanh`-relaxed hash layer — and differ in loss:
//!
//! * **DPSH** (Li et al., 2015): pairwise likelihood
//!   `Σ log(1 + e^{θ_ij}) − s_ij·θ_ij` with `θ = ½·uᵢᵀuⱼ`, plus a
//!   quantization penalty `η·‖u − sign(u)‖²`.
//! * **HashNet** (Cao et al., ICCV 2017): the same pairwise likelihood but
//!   weighted to counter similar/dissimilar pair imbalance, with `tanh(β·z)`
//!   continuation (β grows during training so the relaxation sharpens).
//! * **DSDH** (Li et al., NeurIPS 2017): DPSH's pairwise term plus a linear
//!   classification head on the codes.
//! * **CSQ** (Yuan et al., CVPR 2020): central similarity — each class gets
//!   a Hadamard-derived binary center; codes are pulled to their center with
//!   a binary cross-entropy, plus a quantization penalty.

use lt_data::{BatchIter, Dataset};
use lt_linalg::random::rng as seed_rng;
use lt_linalg::Matrix;
use lt_tensor::nn::{Linear, Mlp};
use lt_tensor::optim::{AdamW, Optimizer};
use lt_tensor::{Init, ParamStore, Tape, Var};
use rand::SeedableRng;

use crate::common::{sign_matrix, BinaryHasher, BitCodes};

/// Which member of the family to train.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeepHashKind {
    /// Deep pairwise-supervised hashing.
    Dpsh,
    /// HashNet: weighted pairwise + tanh continuation.
    HashNet,
    /// Deep supervised discrete hashing (pairwise + classification).
    Dsdh,
    /// Central similarity quantization.
    Csq,
}

/// Configuration shared by the family.
#[derive(Debug, Clone)]
pub struct DeepHashConfig {
    /// Variant.
    pub kind: DeepHashKind,
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Backbone hidden width.
    pub hidden: usize,
    /// Code length in bits.
    pub bits: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Quantization-penalty weight η.
    pub eta: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepHashConfig {
    fn default() -> Self {
        Self {
            kind: DeepHashKind::Dpsh,
            input_dim: 64,
            hidden: 128,
            bits: 32,
            num_classes: 10,
            epochs: 15,
            batch_size: 64,
            learning_rate: 3e-3,
            eta: 0.1,
            seed: 7,
        }
    }
}

/// A trained deep hash model.
pub struct DeepHash {
    config: DeepHashConfig,
    store: ParamStore,
    backbone: Mlp,
    classifier: Option<Linear>,
    /// CSQ's per-class Hadamard centers (`C × bits`, entries ±1).
    centers: Option<Matrix>,
    /// Final continuation sharpness (HashNet).
    beta: f32,
}

/// Builds a `bits × bits` Hadamard matrix by Sylvester's construction
/// (requires `bits` to be a power of two) and returns the first
/// `num_classes` rows as ±1 centers. When `num_classes > bits`, negated
/// rows are appended, and beyond `2·bits` classes the remaining centers are
/// random ±1 vectors — both fallbacks follow the CSQ paper's center
/// construction.
pub fn hadamard_centers(bits: usize, num_classes: usize) -> Matrix {
    assert!(bits > 0, "need at least one bit");
    // Build the Hadamard matrix at the next power of two and keep the first
    // `bits` columns; truncated rows remain well-separated.
    let p = bits.next_power_of_two();
    let mut h = vec![1.0f32; p * p];
    let mut size = 1;
    while size < p {
        for i in 0..size {
            for j in 0..size {
                let v = h[i * p + j];
                h[i * p + (j + size)] = v;
                h[(i + size) * p + j] = v;
                h[(i + size) * p + (j + size)] = -v;
            }
        }
        size *= 2;
    }
    // Deterministic Bernoulli(±1) stream for classes beyond 2·bits.
    let mut state = 0x853C_49E6_748F_EA9Bu64;
    let mut coin = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        if (state >> 33) & 1 == 1 {
            1.0f32
        } else {
            -1.0
        }
    };
    Matrix::from_fn(num_classes, bits, |c, j| {
        if c < p {
            h[c * p + j]
        } else if c < 2 * p {
            -h[(c - p) * p + j]
        } else {
            // Row-major from_fn visits (c, j) in order, so the stream is
            // deterministic per (bits, num_classes).
            let _ = (c, j);
            coin()
        }
    })
}

impl DeepHash {
    /// Trains the chosen variant on a labeled dataset.
    pub fn fit(config: DeepHashConfig, train: &Dataset) -> Self {
        assert_eq!(train.dim(), config.input_dim, "input dim mismatch");
        let mut store = ParamStore::new();
        let mut r = rand::rngs::StdRng::seed_from_u64(config.seed);
        let backbone = Mlp::new(
            &mut store,
            "net",
            &[config.input_dim, config.hidden, config.bits],
            &mut r,
        );
        let classifier = if config.kind == DeepHashKind::Dsdh {
            Some(Linear::new(
                &mut store,
                "cls",
                config.bits,
                config.num_classes,
                Init::XavierUniform,
                &mut r,
            ))
        } else {
            None
        };
        let centers = if config.kind == DeepHashKind::Csq {
            Some(hadamard_centers(config.bits, config.num_classes))
        } else {
            None
        };

        let mut model =
            Self { config: config.clone(), store, backbone, classifier, centers, beta: 1.0 };
        let mut opt = AdamW::new(config.learning_rate);
        let mut data_rng = seed_rng(config.seed.wrapping_add(99));

        for epoch in 0..config.epochs {
            // HashNet continuation: sharpen tanh over training.
            model.beta = match config.kind {
                DeepHashKind::HashNet => 1.0 + (epoch as f32 / config.epochs.max(1) as f32) * 4.0,
                _ => 1.0,
            };
            for batch in BatchIter::new(train, config.batch_size, &mut data_rng) {
                model.store.zero_grads();
                model.train_step(&batch.features, &batch.labels);
                let norm = model.store.grad_norm();
                if norm > 5.0 {
                    model.store.scale_grads(5.0 / norm);
                }
                opt.step(&mut model.store);
            }
        }
        model
    }

    /// Relaxed (pre-sign) codes on the tape.
    fn codes_tape(&self, tape: &mut Tape, x: Var) -> Var {
        let z = self.backbone.forward(tape, &self.store, x);
        let scaled = tape.scale(z, self.beta);
        tape.tanh(scaled)
    }

    fn train_step(&mut self, features: &Matrix, labels: &[usize]) {
        let n = labels.len();
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let u = self.codes_tape(&mut tape, x);

        // Pairwise similarity matrix s_ij ∈ {0, 1}.
        let s = Matrix::from_fn(n, n, |i, j| f32::from(labels[i] == labels[j]));
        // Pair weights: HashNet balances similar vs dissimilar pairs.
        let pair_weights = if self.config.kind == DeepHashKind::HashNet {
            let total = (n * n) as f32;
            let sim = s.sum().max(1.0);
            let dis = (total - s.sum()).max(1.0);
            Matrix::from_fn(n, n, |i, j| {
                if labels[i] == labels[j] {
                    total / (2.0 * sim)
                } else {
                    total / (2.0 * dis)
                }
            })
        } else {
            Matrix::full(n, n, 1.0)
        };

        let loss = match self.config.kind {
            DeepHashKind::Dpsh | DeepHashKind::HashNet | DeepHashKind::Dsdh => {
                // θ = ½ U·Uᵀ ; L = mean w ⊙ (log(1 + e^θ) − s·θ).
                let theta_raw = tape.matmul_bt(u, u);
                let theta = tape.scale(theta_raw, 0.5);
                let e = tape.exp(theta);
                let e1 = tape.add_scalar(e, 1.0);
                let log1p = tape.ln(e1);
                let s_const = tape.constant(s);
                let s_theta = tape.hadamard(s_const, theta);
                let per_pair = tape.sub(log1p, s_theta);
                let w_const = tape.constant(pair_weights);
                let weighted = tape.hadamard(per_pair, w_const);
                let pair_loss = tape.mean(weighted);

                // Quantization penalty η·mean((u − sign(u))²).
                let hard = tape.constant(sign_matrix(tape.value(u)));
                let qdiff = tape.sub(u, hard);
                let qsq = tape.square(qdiff);
                let qmean = tape.mean(qsq);
                let qscaled = tape.scale(qmean, self.config.eta);
                let mut total = tape.add(pair_loss, qscaled);

                if let Some(cls) = &self.classifier {
                    // DSDH classification term.
                    let logits = cls.forward(&mut tape, &self.store, u);
                    let logp = tape.log_softmax_rows(logits);
                    let ones = vec![1.0f32; n];
                    let ce = tape.nll_weighted(logp, labels, &ones);
                    total = tape.add(total, ce);
                }
                total
            }
            DeepHashKind::Csq => {
                // BCE of (u+1)/2 against the class center bits, plus a
                // quantization penalty pulling |u| toward 1.
                let centers = self.centers.as_ref().expect("CSQ has centers");
                let target = Matrix::from_fn(n, self.config.bits, |i, j| {
                    (centers[(labels[i], j)] + 1.0) * 0.5
                });
                let u1 = tape.add_scalar(u, 1.0);
                let p = tape.scale(u1, 0.5); // (u+1)/2 ∈ (0, 1)
                let p_clamped = tape.scale(p, 0.999_8); // keep ln() away from 0/1
                let p_safe = tape.add_scalar(p_clamped, 1e-4);
                let ln_p = tape.ln(p_safe);
                let one_minus = tape.scale(p_safe, -1.0);
                let one_minus = tape.add_scalar(one_minus, 1.0);
                let ln_q = tape.ln(one_minus);
                let t_const = tape.constant(target.clone());
                let t_neg = tape.scale(t_const, -1.0);
                let t_neg1 = tape.add_scalar(t_neg, 1.0);
                let term1 = tape.hadamard(t_const, ln_p);
                let term2 = tape.hadamard(t_neg1, ln_q);
                let bce_sum = tape.add(term1, term2);
                let bce = tape.mean(bce_sum);
                let bce_neg = tape.scale(bce, -1.0);

                let sq = tape.square(u);
                let sq_m1 = tape.add_scalar(sq, -1.0);
                let qpen = tape.square(sq_m1);
                let qmean = tape.mean(qpen);
                let qscaled = tape.scale(qmean, self.config.eta);
                tape.add(bce_neg, qscaled)
            }
        };

        let grads = tape.backward(loss);
        tape.accumulate_param_grads(&grads, &mut self.store);
    }

    /// Relaxed codes for a batch (inference, pre-sign).
    pub fn relaxed_codes(&self, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let u = {
            let z = self.backbone.forward(&mut tape, &self.store, xv);
            let scaled = tape.scale(z, self.beta);
            tape.tanh(scaled)
        };
        tape.value(u).clone()
    }
}

impl BinaryHasher for DeepHash {
    fn hash(&self, x: &Matrix) -> BitCodes {
        BitCodes::from_sign_matrix(&sign_matrix(&self.relaxed_codes(x)))
    }

    fn bits(&self) -> usize {
        self.config.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::HammingRanker;
    use lt_data::synth::{generate_split, Domain, SynthConfig};
    use lt_eval::evaluate_map;

    fn tiny_task() -> lt_data::RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 16,
            pi1: 30,
            imbalance_factor: 5.0,
            n_query: 16,
            n_database: 80,
            domain: Domain::ImageLike,
            intra_class_std: None,
            seed: 42,
        })
    }

    fn config(kind: DeepHashKind) -> DeepHashConfig {
        DeepHashConfig {
            kind,
            input_dim: 16,
            hidden: 32,
            bits: 16,
            num_classes: 4,
            epochs: 8,
            batch_size: 32,
            learning_rate: 3e-3,
            eta: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn hadamard_rows_orthogonal() {
        let h = hadamard_centers(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                let dot: f32 = h.row(i).iter().zip(h.row(j)).map(|(a, b)| a * b).sum();
                let expect = if i == j { 8.0 } else { 0.0 };
                assert_eq!(dot, expect, "rows {i},{j}");
            }
        }
        assert!(h.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn hadamard_extends_with_negated_rows() {
        let h = hadamard_centers(4, 8);
        for c in 0..4 {
            for j in 0..4 {
                assert_eq!(h[(c + 4, j)], -h[(c, j)]);
            }
        }
    }

    #[test]
    fn non_power_of_two_bits_truncate_hadamard() {
        let h = hadamard_centers(12, 6);
        assert_eq!(h.shape(), (6, 12));
        assert!(h.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        // Truncated rows stay mutually distant (≥ bits/4 differing bits).
        for i in 0..6 {
            for j in (i + 1)..6 {
                let diff = h.row(i).iter().zip(h.row(j)).filter(|(a, b)| a != b).count();
                assert!(diff >= 3, "rows {i},{j} differ in only {diff} bits");
            }
        }
    }

    #[test]
    fn hadamard_random_fallback_beyond_2bits_classes() {
        let h = hadamard_centers(8, 20);
        assert_eq!(h.shape(), (20, 8));
        assert!(h.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        // Deterministic across calls.
        assert_eq!(h, hadamard_centers(8, 20));
        // The random rows are not copies of each other.
        assert_ne!(h.row(17), h.row(18));
    }

    /// All four variants should beat unsupervised chance on a separable task.
    #[test]
    fn all_variants_learn_useful_codes() {
        let split = tiny_task();
        for kind in [
            DeepHashKind::Dpsh,
            DeepHashKind::HashNet,
            DeepHashKind::Dsdh,
            DeepHashKind::Csq,
        ] {
            let model = DeepHash::fit(config(kind), &split.train);
            let ranker = HammingRanker::new(&model, &split.database.features);
            let map = evaluate_map(
                &ranker,
                &split.query.features,
                &split.query.labels,
                &split.database.labels,
            );
            // Chance MAP ≈ class prior (~0.25–0.35 with long-tail db).
            assert!(map > 0.45, "{kind:?} MAP only {map:.3}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let split = tiny_task();
        let a = DeepHash::fit(config(DeepHashKind::Dpsh), &split.train);
        let b = DeepHash::fit(config(DeepHashKind::Dpsh), &split.train);
        assert_eq!(
            a.hash(&split.query.features),
            b.hash(&split.query.features)
        );
    }
}
