//! LTHNet — Long-Tail Hashing Network (Chen et al., SIGIR 2021),
//! reimplemented in its essential form.
//!
//! LTHNet attacks long-tail hashing with a *dynamic meta-embedding*: a
//! memory of class prototypes lets tail items borrow statistics from
//! visually similar head classes through an attention read. We keep that
//! mechanism — backbone feature → attention over a class-prototype memory →
//! enhanced feature → tanh hash layer — trained with cross-entropy plus a
//! quantization penalty. (The original additionally diversifies prototypes
//! with a determinantal point process; we refresh prototypes from current
//! features each epoch, which serves the same role at our scale — noted in
//! DESIGN.md.)

use lt_data::{BatchIter, Dataset};
use lt_linalg::gemm::matmul;
use lt_linalg::random::rng as seed_rng;
use lt_linalg::Matrix;
use lt_tensor::nn::{Linear, Mlp};
use lt_tensor::optim::{AdamW, Optimizer};
use lt_tensor::{Init, ParamStore, Tape};
use rand::SeedableRng;

use crate::common::{sign_matrix, BinaryHasher, BitCodes};

/// LTHNet hyper-parameters.
#[derive(Debug, Clone)]
pub struct LthNetConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Backbone hidden width.
    pub hidden: usize,
    /// Feature dimensionality before hashing.
    pub feat_dim: usize,
    /// Code length in bits.
    pub bits: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Quantization-penalty weight.
    pub eta: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LthNetConfig {
    fn default() -> Self {
        Self {
            input_dim: 64,
            hidden: 128,
            feat_dim: 32,
            bits: 32,
            num_classes: 10,
            epochs: 15,
            batch_size: 64,
            learning_rate: 3e-3,
            eta: 0.1,
            seed: 19,
        }
    }
}

/// A trained LTHNet model.
pub struct LthNet {
    config: LthNetConfig,
    store: ParamStore,
    backbone: Mlp,
    hash_layer: Linear,
    classifier: Linear,
    /// Class-prototype memory (`C × feat_dim`), refreshed per epoch and
    /// frozen for inference.
    memory: Matrix,
}

impl LthNet {
    /// Trains LTHNet on a labeled (long-tail) dataset.
    pub fn fit(config: LthNetConfig, train: &Dataset) -> Self {
        assert_eq!(train.dim(), config.input_dim, "input dim mismatch");
        let mut store = ParamStore::new();
        let mut r = rand::rngs::StdRng::seed_from_u64(config.seed);
        let backbone = Mlp::new(
            &mut store,
            "net",
            &[config.input_dim, config.hidden, config.feat_dim],
            &mut r,
        );
        let hash_layer =
            Linear::new(&mut store, "hash", config.feat_dim, config.bits, Init::XavierUniform, &mut r);
        let classifier =
            Linear::new(&mut store, "cls", config.bits, config.num_classes, Init::XavierUniform, &mut r);
        let memory = Matrix::zeros(config.num_classes, config.feat_dim);

        let mut model = Self { config: config.clone(), store, backbone, hash_layer, classifier, memory };
        let mut opt = AdamW::new(config.learning_rate);
        let mut data_rng = seed_rng(config.seed.wrapping_add(77));

        for _ in 0..config.epochs {
            model.refresh_memory(train);
            for batch in BatchIter::new(train, config.batch_size, &mut data_rng) {
                model.store.zero_grads();
                model.train_step(&batch.features, &batch.labels);
                let norm = model.store.grad_norm();
                if norm > 5.0 {
                    model.store.scale_grads(5.0 / norm);
                }
                opt.step(&mut model.store);
            }
        }
        model.refresh_memory(train);
        model
    }

    /// Recomputes the class-prototype memory from current backbone features.
    fn refresh_memory(&mut self, train: &Dataset) {
        let feats = self.backbone_plain(&train.features);
        let ds = Dataset::new(feats, train.labels.clone(), train.num_classes);
        self.memory = ds.class_means();
    }

    fn backbone_plain(&self, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let v = self.backbone.forward(&mut tape, &self.store, xv);
        tape.value(v).clone()
    }

    fn train_step(&mut self, features: &Matrix, labels: &[usize]) {
        let n = features.rows();
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let v = self.backbone.forward(&mut tape, &self.store, x);

        // Dynamic meta-embedding: attention read over the (frozen-within-
        // epoch) prototype memory, added to the direct feature.
        let mem = tape.constant(self.memory.clone());
        let att_scores = tape.matmul_bt(v, mem);
        let scale = 1.0 / (self.config.feat_dim as f32).sqrt();
        let att_scaled = tape.scale(att_scores, scale);
        let att = tape.softmax_rows(att_scaled);
        let mem2 = tape.constant(self.memory.clone());
        let read = tape.matmul(att, mem2);
        let enhanced = tape.add(v, read);

        let z = self.hash_layer.forward(&mut tape, &self.store, enhanced);
        let u = tape.tanh(z);
        let logits = self.classifier.forward(&mut tape, &self.store, u);
        let logp = tape.log_softmax_rows(logits);
        let ones = vec![1.0f32; n];
        let ce = tape.nll_weighted(logp, labels, &ones);

        // Quantization penalty toward ±1 codes.
        let hard = tape.constant(sign_matrix(tape.value(u)));
        let qdiff = tape.sub(u, hard);
        let qsq = tape.square(qdiff);
        let qmean = tape.mean(qsq);
        let qscaled = tape.scale(qmean, self.config.eta);
        let loss = tape.add(ce, qscaled);

        let grads = tape.backward(loss);
        tape.accumulate_param_grads(&grads, &mut self.store);
    }

    /// Relaxed codes (pre-sign) including the memory read.
    pub fn relaxed_codes(&self, x: &Matrix) -> Matrix {
        let v = self.backbone_plain(x);
        // Attention in plain math.
        let scale = 1.0 / (self.config.feat_dim as f32).sqrt();
        let mut att = lt_linalg::gemm::matmul_a_bt(&v, &self.memory).scale(scale);
        for i in 0..att.rows() {
            let row = att.row_mut(i);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum.max(1e-30);
            }
        }
        let read = matmul(&att, &self.memory);
        let enhanced = v.add(&read);
        let mut tape = Tape::new();
        let ev = tape.constant(enhanced);
        let z = self.hash_layer.forward(&mut tape, &self.store, ev);
        let u = tape.tanh(z);
        tape.value(u).clone()
    }
}

impl BinaryHasher for LthNet {
    fn hash(&self, x: &Matrix) -> BitCodes {
        BitCodes::from_sign_matrix(&sign_matrix(&self.relaxed_codes(x)))
    }

    fn bits(&self) -> usize {
        self.config.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::HammingRanker;
    use lt_data::synth::{generate_split, Domain, SynthConfig};
    use lt_eval::evaluate_map;

    fn tiny_task() -> lt_data::RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 16,
            pi1: 40,
            imbalance_factor: 8.0,
            n_query: 16,
            n_database: 80,
            domain: Domain::ImageLike,
            intra_class_std: None,
            seed: 70,
        })
    }

    fn config() -> LthNetConfig {
        LthNetConfig {
            input_dim: 16,
            hidden: 32,
            feat_dim: 16,
            bits: 16,
            num_classes: 4,
            epochs: 8,
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn learns_useful_codes_on_long_tail() {
        let split = tiny_task();
        let model = LthNet::fit(config(), &split.train);
        let ranker = HammingRanker::new(&model, &split.database.features);
        let map = evaluate_map(
            &ranker,
            &split.query.features,
            &split.query.labels,
            &split.database.labels,
        );
        assert!(map > 0.45, "LTHNet MAP only {map:.3}");
    }

    #[test]
    fn memory_has_one_prototype_per_class() {
        let split = tiny_task();
        let model = LthNet::fit(config(), &split.train);
        assert_eq!(model.memory.shape(), (4, 16));
        // Prototypes are not all zero after training.
        assert!(model.memory.max_abs() > 0.0);
    }

    #[test]
    fn hashing_deterministic() {
        let split = tiny_task();
        let model = LthNet::fit(config(), &split.train);
        let a = model.hash(&split.query.features);
        let b = model.hash(&split.query.features);
        assert_eq!(a, b);
    }
}
