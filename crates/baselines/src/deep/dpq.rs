//! Differentiable Product Quantization (DPQ; Chen, Li & Sun, ICML 2020).
//!
//! An MLP backbone produces a continuous embedding that is split into `M`
//! subspaces; each subspace is quantized against its own codebook with a
//! tempered softmax + Straight-Through Estimator; the concatenated quantized
//! embedding feeds a softmax classifier. Unlike LightLT there is no
//! residual stacking, no codebook skip, and no long-tail loss — which is
//! exactly the gap Tables II/III measure.

use lt_data::{BatchIter, Dataset};
use lt_linalg::distance::squared_l2;
use lt_linalg::random::rng as seed_rng;
use lt_linalg::Matrix;
use lt_tensor::nn::{Linear, Mlp};
use lt_tensor::optim::{AdamW, Optimizer};
use lt_tensor::{Init, ParamId, ParamStore, Tape, Var};
use rand::SeedableRng;

use crate::common::AdcIndex;

/// DPQ hyper-parameters.
#[derive(Debug, Clone)]
pub struct DpqConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Backbone hidden width.
    pub hidden: usize,
    /// Continuous embedding dimensionality (must divide by `m`).
    pub embed_dim: usize,
    /// Number of subspaces / codebooks.
    pub m: usize,
    /// Codewords per codebook.
    pub k: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Softmax temperature.
    pub temperature: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DpqConfig {
    fn default() -> Self {
        Self {
            input_dim: 64,
            hidden: 128,
            embed_dim: 32,
            m: 4,
            k: 256,
            num_classes: 10,
            temperature: 0.2,
            epochs: 15,
            batch_size: 64,
            learning_rate: 3e-3,
            seed: 11,
        }
    }
}

/// A trained DPQ model.
pub struct Dpq {
    config: DpqConfig,
    store: ParamStore,
    backbone: Mlp,
    classifier: Linear,
    /// Per-subspace codebooks (`K × embed_dim/M`).
    codebook_ids: Vec<ParamId>,
    sub_dim: usize,
}

impl Dpq {
    /// Trains DPQ on a labeled dataset.
    pub fn fit(config: DpqConfig, train: &Dataset) -> Self {
        assert_eq!(train.dim(), config.input_dim, "input dim mismatch");
        assert_eq!(
            config.embed_dim % config.m,
            0,
            "embed_dim ({}) must divide by M ({})",
            config.embed_dim,
            config.m
        );
        let sub_dim = config.embed_dim / config.m;
        let mut store = ParamStore::new();
        let mut r = rand::rngs::StdRng::seed_from_u64(config.seed);
        let backbone = Mlp::new(
            &mut store,
            "net",
            &[config.input_dim, config.hidden, config.embed_dim],
            &mut r,
        );
        let classifier = Linear::new(
            &mut store,
            "cls",
            config.embed_dim,
            config.num_classes,
            Init::XavierUniform,
            &mut r,
        );
        let codebook_ids: Vec<ParamId> = (0..config.m)
            .map(|s| {
                store.register(
                    format!("cb.{s}"),
                    Init::Normal { std: 0.1 }.build(config.k, sub_dim, &mut r),
                )
            })
            .collect();

        let mut model = Self { config: config.clone(), store, backbone, classifier, codebook_ids, sub_dim };
        let mut opt = AdamW::new(config.learning_rate);
        let mut data_rng = seed_rng(config.seed.wrapping_add(5));
        for _ in 0..config.epochs {
            for batch in BatchIter::new(train, config.batch_size, &mut data_rng) {
                model.store.zero_grads();
                model.train_step(&batch.features, &batch.labels);
                let norm = model.store.grad_norm();
                if norm > 5.0 {
                    model.store.scale_grads(5.0 / norm);
                }
                opt.step(&mut model.store);
            }
        }
        model
    }

    fn train_step(&mut self, features: &Matrix, labels: &[usize]) {
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let z = self.backbone.forward(&mut tape, &self.store, x);
        let n = features.rows();

        // Quantize each subspace with softmax-STE, then reassemble by
        // summing zero-padded full-width pieces (equivalent to concat).
        let mut quantized: Option<Var> = None;
        for (s, &cb_id) in self.codebook_ids.iter().enumerate() {
            let zs = tape.slice_cols(z, s * self.sub_dim, self.sub_dim);
            let cb = tape.param(&self.store, cb_id);
            // −‖z_s − c‖² scores.
            let ip = tape.matmul_bt(zs, cb);
            let ip2 = tape.scale(ip, 2.0);
            let zn = tape.row_norm_sq(zs);
            let zn_neg = tape.scale(zn, -1.0);
            let with_z = tape.add_col_broadcast(ip2, zn_neg);
            let cn = tape.row_norm_sq(cb);
            let cn_t = tape.transpose(cn);
            let cn_neg = tape.scale(cn_t, -1.0);
            let scores = tape.add_row_broadcast(with_z, cn_neg);

            let hard = {
                let sv = tape.value(scores);
                let mut onehot = Matrix::zeros(n, self.config.k);
                for i in 0..n {
                    let row = sv.row(i);
                    let mut best = 0;
                    let mut best_v = f32::NEG_INFINITY;
                    for (j, &v) in row.iter().enumerate() {
                        if v > best_v {
                            best_v = v;
                            best = j;
                        }
                    }
                    onehot[(i, best)] = 1.0;
                }
                tape.constant(onehot)
            };
            let tempered = tape.scale(scores, 1.0 / self.config.temperature);
            let soft = tape.softmax_rows(tempered);
            let diff = tape.sub(hard, soft);
            let sg = tape.stop_grad(diff);
            let b = tape.add(soft, sg);
            let o_s = tape.matmul(b, cb); // n × sub_dim

            // Pad back to full width via a constant placement matrix.
            let placement = {
                let mut p = Matrix::zeros(self.sub_dim, self.config.embed_dim);
                for j in 0..self.sub_dim {
                    p[(j, s * self.sub_dim + j)] = 1.0;
                }
                tape.constant(p)
            };
            let padded = tape.matmul(o_s, placement);
            quantized = Some(match quantized {
                Some(acc) => tape.add(acc, padded),
                None => padded,
            });
        }
        let o = quantized.expect("at least one subspace");
        let logits = self.classifier.forward(&mut tape, &self.store, o);
        let logp = tape.log_softmax_rows(logits);
        let ones = vec![1.0f32; n];
        let loss = tape.nll_weighted(logp, labels, &ones);
        let grads = tape.backward(loss);
        tape.accumulate_param_grads(&grads, &mut self.store);
    }

    /// Continuous embeddings (inference).
    pub fn embed(&self, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let z = self.backbone.forward(&mut tape, &self.store, xv);
        tape.value(z).clone()
    }

    /// Hard codes per item (`M` ids each).
    pub fn encode(&self, x: &Matrix) -> Vec<u16> {
        let z = self.embed(x);
        let mut codes = vec![0u16; z.rows() * self.config.m];
        for i in 0..z.rows() {
            let row = z.row(i);
            for (s, &cb_id) in self.codebook_ids.iter().enumerate() {
                let cb = self.store.value(cb_id);
                let sub = &row[s * self.sub_dim..(s + 1) * self.sub_dim];
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for c in 0..self.config.k {
                    let d = squared_l2(sub, cb.row(c));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                codes[i * self.config.m + s] = best as u16;
            }
        }
        codes
    }

    /// Builds an ADC index over raw database features (embeds + encodes).
    /// Queries must be embedded with [`Dpq::embed`] before ranking.
    pub fn build_index(&self, database_features: &Matrix) -> AdcIndex {
        let codes = self.encode(database_features);
        // Expand subspace codebooks into zero-padded full-dim codebooks so
        // the additive ADC math applies.
        let full_codebooks: Vec<Matrix> = self
            .codebook_ids
            .iter()
            .enumerate()
            .map(|(s, &id)| {
                let cb = self.store.value(id);
                Matrix::from_fn(self.config.k, self.config.embed_dim, |r, c| {
                    if c >= s * self.sub_dim && c < (s + 1) * self.sub_dim {
                        cb[(r, c - s * self.sub_dim)]
                    } else {
                        0.0
                    }
                })
            })
            .collect();
        AdcIndex::new(full_codebooks, codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_data::synth::{generate_split, Domain, SynthConfig};
    use lt_eval::Ranker;

    fn tiny_task() -> lt_data::RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 16,
            pi1: 30,
            imbalance_factor: 5.0,
            n_query: 16,
            n_database: 80,
            domain: Domain::TextLike,
            intra_class_std: None,
            seed: 50,
        })
    }

    fn config() -> DpqConfig {
        DpqConfig {
            input_dim: 16,
            hidden: 32,
            embed_dim: 16,
            m: 4,
            k: 16,
            num_classes: 4,
            epochs: 25,
            batch_size: 32,
            learning_rate: 5e-3,
            ..Default::default()
        }
    }

    #[test]
    fn codes_shape_and_range() {
        let split = tiny_task();
        let model = Dpq::fit(config(), &split.train);
        let codes = model.encode(&split.query.features);
        assert_eq!(codes.len(), split.query.len() * 4);
        assert!(codes.iter().all(|&c| (c as usize) < 16));
    }

    #[test]
    fn learns_retrievable_codes() {
        let split = tiny_task();
        let model = Dpq::fit(config(), &split.train);
        let index = model.build_index(&split.database.features);
        let q_emb = model.embed(&split.query.features);
        let rankings = index.rank_batch(&q_emb);
        let map = lt_eval::mean_average_precision(
            &rankings,
            &split.query.labels,
            &split.database.labels,
        );
        assert!(map > 0.45, "DPQ MAP only {map:.3}");
    }

    #[test]
    #[should_panic(expected = "must divide by M")]
    fn rejects_indivisible_embed_dim() {
        let split = tiny_task();
        let mut cfg = config();
        cfg.embed_dim = 15;
        let _ = Dpq::fit(cfg, &split.train);
    }
}
