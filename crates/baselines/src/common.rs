//! Shared infrastructure for the baseline families.
//!
//! Binary-hash baselines (LSH, PCAH, ITQ, SDH, and the deep hash nets)
//! produce packed bit codes ranked by Hamming distance; quantization
//! baselines (PQ, OPQ, DPQ, KDE) produce codeword ids ranked by ADC. This
//! module holds the bit-code container, the Hamming ranker, and the
//! `BinaryHasher` trait every hash baseline implements.

use lt_eval::Ranker;
use lt_linalg::distance::hamming;
use lt_linalg::Matrix;

/// Packed binary codes: `bits` per item, stored in `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCodes {
    words_per_item: usize,
    bits: usize,
    data: Vec<u64>,
}

impl BitCodes {
    /// Packs a sign matrix (`n × bits`, entries compared against 0) into
    /// bit codes: bit `j` of item `i` is set iff `signs[i][j] > 0`.
    pub fn from_sign_matrix(signs: &Matrix) -> Self {
        let n = signs.rows();
        let bits = signs.cols();
        let words_per_item = bits.div_ceil(64).max(1);
        let mut data = vec![0u64; n * words_per_item];
        for i in 0..n {
            for (j, &v) in signs.row(i).iter().enumerate() {
                if v > 0.0 {
                    data[i * words_per_item + j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        Self { words_per_item, bits, data }
    }

    /// Number of encoded items.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.words_per_item).unwrap_or(0)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Code length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Packed words of item `i`.
    pub fn item(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_item..(i + 1) * self.words_per_item]
    }

    /// Hamming distance between items of two code sets.
    pub fn distance(&self, i: usize, other: &BitCodes, j: usize) -> u32 {
        hamming(self.item(i), other.item(j))
    }

    /// Storage in bytes (paper accounting: `bits/8` per item).
    pub fn storage_bytes(&self) -> usize {
        (self.len() * self.bits).div_ceil(8)
    }
}

/// Database items per parallel work item in the bulk ranking paths. Fixed
/// (never derived from the thread count) so rankings are identical for any
/// runtime width.
const RANK_CHUNK: usize = 1024;

/// A trained binary hash function `h: R^d → {0,1}^B`.
pub trait BinaryHasher {
    /// Hashes a batch of row vectors.
    fn hash(&self, x: &Matrix) -> BitCodes;

    /// Code length in bits.
    fn bits(&self) -> usize;
}

/// Ranks a hashed database by ascending Hamming distance to the hashed
/// query (ties by index, matching the evaluation protocol).
pub struct HammingRanker<'a, H: BinaryHasher> {
    hasher: &'a H,
    db_codes: BitCodes,
}

impl<'a, H: BinaryHasher> HammingRanker<'a, H> {
    /// Hashes the database once and keeps the codes.
    pub fn new(hasher: &'a H, database: &Matrix) -> Self {
        let db_codes = hasher.hash(database);
        Self { hasher, db_codes }
    }

    /// The database codes (diagnostics).
    pub fn db_codes(&self) -> &BitCodes {
        &self.db_codes
    }
}

impl<H: BinaryHasher> Ranker for HammingRanker<'_, H> {
    fn rank(&self, query: &[f32]) -> Vec<usize> {
        let q = Matrix::from_vec(1, query.len(), query.to_vec());
        let q_codes = self.hasher.hash(&q);
        // Distances fan out on the runtime pool (fixed chunking, so the
        // score vector — and the ranking — never depend on thread count).
        // Borrow the codes alone: the workers never need the hasher, so
        // `H` does not have to be `Sync`.
        let db_codes = &self.db_codes;
        let scores: Vec<f32> =
            lt_runtime::parallel_map_chunks(db_codes.len(), RANK_CHUNK, |range| {
                range
                    // Negative distance = similarity (higher is better).
                    .map(|i| -(q_codes.distance(0, db_codes, i) as f32))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        lt_linalg::topk::rank_all(&scores)
    }

    fn database_len(&self) -> usize {
        self.db_codes.len()
    }
}

/// Generic additive-quantization ADC index shared by the DPQ and KDE
/// baselines: a reconstruction is `Σ_m codebooks[m][code[m]]` in the full
/// `d`-dimensional space (subspace quantizers pad their codebooks with
/// zeros outside their block), ranked by negative squared L2 distance via
/// the standard lookup-table trick.
pub struct AdcIndex {
    codebooks: Vec<Matrix>,
    /// Codeword ids in the level-major scan layout.
    codes: lt_linalg::LevelCodes,
    /// Per-item reconstruction squared norms.
    norms_sq: Vec<f32>,
    n: usize,
}

impl AdcIndex {
    /// Builds the index from full-dim additive codebooks and item-major
    /// `n × M` codes (converted once to the level-major scan layout).
    ///
    /// # Panics
    /// Panics on shape inconsistencies.
    pub fn new(codebooks: Vec<Matrix>, codes: Vec<u16>) -> Self {
        assert!(!codebooks.is_empty(), "need at least one codebook");
        let m = codebooks.len();
        let k = codebooks[0].rows();
        let d = codebooks[0].cols();
        assert!(codebooks.iter().all(|c| c.cols() == d), "codebook width mismatch");
        assert!(codebooks.iter().all(|c| c.rows() == k), "codebook size mismatch");
        assert_eq!(codes.len() % m, 0, "code length not a multiple of M");
        let n = codes.len() / m;
        let norms_sq = (0..n)
            .map(|i| {
                let mut recon = vec![0.0f32; d];
                for (level, cb) in codebooks.iter().enumerate() {
                    let id = codes[i * m + level] as usize;
                    for (v, &c) in recon.iter_mut().zip(cb.row(id)) {
                        *v += c;
                    }
                }
                lt_linalg::gemm::dot(&recon, &recon)
            })
            .collect();
        let codes = lt_linalg::LevelCodes::from_item_major(&codes, m, k);
        Self { codebooks, codes, norms_sq, n }
    }

    /// Scores all items into a caller-provided buffer:
    /// `−‖q − recon_i‖²` via LUT on the blocked level-major scan engine
    /// (item-parallel on the runtime pool, thread-count invariant).
    pub fn scores_into(&self, query: &[f32], out: &mut Vec<f32>) {
        let m = self.codebooks.len();
        let k = self.codebooks[0].rows();
        let qn = lt_linalg::gemm::dot(query, query);
        let mut lut = vec![0.0f32; m * k];
        for (level, cb) in self.codebooks.iter().enumerate() {
            for j in 0..cb.rows() {
                lut[level * k + j] = lt_linalg::gemm::dot(query, cb.row(j));
            }
        }
        lt_linalg::scan::adc_scores_neg_l2(&self.codes, &lut, &self.norms_sq, qn, out);
    }

    /// Scores all items for a query (allocating convenience wrapper around
    /// [`AdcIndex::scores_into`]).
    pub fn scores(&self, query: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.scores_into(query, &mut out);
        out
    }
}

impl Ranker for AdcIndex {
    fn rank(&self, query: &[f32]) -> Vec<usize> {
        lt_linalg::topk::rank_all(&self.scores(query))
    }

    fn rank_batch(&self, queries: &Matrix) -> Vec<Vec<usize>> {
        // One score buffer for the whole batch; rankings are identical to
        // per-row `rank`.
        let mut scores = Vec::new();
        (0..queries.rows())
            .map(|i| {
                self.scores_into(queries.row(i), &mut scores);
                lt_linalg::topk::rank_all(&scores)
            })
            .collect()
    }

    fn database_len(&self) -> usize {
        self.n
    }
}

/// `sign(x)` matrix helper mapping `> 0 → +1`, else `−1` (standard hashing
/// convention).
pub fn sign_matrix(x: &Matrix) -> Matrix {
    x.map(|v| if v > 0.0 { 1.0 } else { -1.0 })
}

/// One-hot label matrix (`n × C`) with {0, 1} entries (SDH's regression
/// target; the 0/1 convention keeps the code update balanced when classes
/// are many).
pub fn label_matrix(labels: &[usize], num_classes: usize) -> Matrix {
    let mut y = Matrix::zeros(labels.len(), num_classes);
    for (i, &l) in labels.iter().enumerate() {
        y[(i, l)] = 1.0;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrip() {
        let signs = Matrix::from_rows(&[&[1.0, -1.0, 1.0], &[-1.0, -1.0, -1.0]]);
        let codes = BitCodes::from_sign_matrix(&signs);
        assert_eq!(codes.len(), 2);
        assert_eq!(codes.bits(), 3);
        assert_eq!(codes.item(0)[0], 0b101);
        assert_eq!(codes.item(1)[0], 0);
        assert_eq!(codes.distance(0, &codes, 1), 2);
    }

    #[test]
    fn packing_handles_more_than_64_bits() {
        let signs = Matrix::from_fn(1, 70, |_, j| if j % 2 == 0 { 1.0 } else { -1.0 });
        let codes = BitCodes::from_sign_matrix(&signs);
        assert_eq!(codes.item(0).len(), 2);
        let total: u32 = codes.item(0).iter().map(|w| w.count_ones()).sum();
        assert_eq!(total, 35);
    }

    #[test]
    fn storage_bytes_formula() {
        let signs = Matrix::zeros(10, 32);
        let codes = BitCodes::from_sign_matrix(&signs);
        assert_eq!(codes.storage_bytes(), 40); // 10 items × 4 bytes
    }

    #[test]
    fn sign_matrix_convention() {
        let m = Matrix::from_rows(&[&[0.5, 0.0, -0.5]]);
        assert_eq!(sign_matrix(&m).as_slice(), &[1.0, -1.0, -1.0]);
    }

    #[test]
    fn label_matrix_zero_one() {
        let y = label_matrix(&[1, 0], 3);
        assert_eq!(y.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(y.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn hamming_ranker_prefers_identical_codes() {
        struct IdentityHasher;
        impl BinaryHasher for IdentityHasher {
            fn hash(&self, x: &Matrix) -> BitCodes {
                BitCodes::from_sign_matrix(x)
            }
            fn bits(&self) -> usize {
                4
            }
        }
        let db = Matrix::from_rows(&[
            &[-1.0, -1.0, -1.0, -1.0],
            &[1.0, 1.0, -1.0, -1.0],
            &[1.0, 1.0, 1.0, 1.0],
        ]);
        let hasher = IdentityHasher;
        let ranker = HammingRanker::new(&hasher, &db);
        let rank = ranker.rank(&[1.0, 1.0, -1.0, -1.0]);
        assert_eq!(rank[0], 1);
        assert_eq!(ranker.database_len(), 3);
    }
}
