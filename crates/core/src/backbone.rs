//! Backbone and classification layer.
//!
//! The paper's backbone `f(·)` is a pretrained ResNet34/BERT fine-tuned
//! end-to-end; here (see DESIGN.md §3) it is a two-layer MLP over synthetic
//! pretrained-style embeddings. The classification layer is the `FC(·)` of
//! Eqn. 12. Both have a tape (training) and a plain (inference) forward.

use lt_linalg::gemm::matmul;
use lt_linalg::Matrix;
use lt_tensor::nn::{Linear, Mlp};
use lt_tensor::{Init, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Parameter-name prefix for backbone weights (frozen during ensemble
/// fine-tuning).
pub const BACKBONE_PREFIX: &str = "backbone.";
/// Parameter-name prefix for the classification layer.
pub const CLASSIFIER_PREFIX: &str = "classifier.";

/// Backbone MLP `f(·): input_dim → embed_dim` with one hidden ReLU layer.
#[derive(Debug, Clone)]
pub struct Backbone {
    mlp: Mlp,
}

impl Backbone {
    /// Registers backbone parameters under [`BACKBONE_PREFIX`].
    pub fn new(
        store: &mut ParamStore,
        input_dim: usize,
        hidden: usize,
        embed_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mlp = Mlp::new(store, "backbone", &[input_dim, hidden, embed_dim], rng);
        Self { mlp }
    }

    /// Training forward on the tape.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        self.mlp.forward(tape, store, x)
    }

    /// Inference forward without a tape (used by indexing and search).
    pub fn forward_plain(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        let layers = self.mlp.layers();
        let mut h = x.clone();
        for (i, layer) in layers.iter().enumerate() {
            let w = store.value(layer.weight);
            let b = store.value(layer.bias);
            let mut out = matmul(&h, w);
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                for (v, &bias) in row.iter_mut().zip(b.row(0)) {
                    *v += bias;
                }
            }
            if i + 1 < layers.len() {
                out.map_inplace(|v| v.max(0.0));
            }
            h = out;
        }
        h
    }

    /// Output (embedding) dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.mlp.out_dim()
    }
}

/// Classification head `FC: embed_dim → num_classes`.
#[derive(Debug, Clone)]
pub struct Classifier {
    linear: Linear,
}

impl Classifier {
    /// Registers classifier parameters under [`CLASSIFIER_PREFIX`].
    pub fn new(
        store: &mut ParamStore,
        embed_dim: usize,
        num_classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        let linear =
            Linear::new(store, "classifier", embed_dim, num_classes, Init::XavierUniform, rng);
        Self { linear }
    }

    /// Training forward producing logits.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, o: Var) -> Var {
        self.linear.forward(tape, store, o)
    }

    /// Inference forward producing logits.
    pub fn forward_plain(&self, store: &ParamStore, o: &Matrix) -> Matrix {
        let w = store.value(self.linear.weight);
        let b = store.value(self.linear.bias);
        let mut out = matmul(o, w);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, &bias) in row.iter_mut().zip(b.row(0)) {
                *v += bias;
            }
        }
        out
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.linear.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::{randn, rng};

    #[test]
    fn tape_and_plain_forward_agree() {
        let mut r = rng(5);
        let mut store = ParamStore::new();
        let backbone = Backbone::new(&mut store, 8, 16, 4, &mut r);
        let classifier = Classifier::new(&mut store, 4, 3, &mut r);
        let x = randn(6, 8, &mut r);

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let emb = backbone.forward(&mut tape, &store, xv);
        let logits = classifier.forward(&mut tape, &store, emb);

        let emb_plain = backbone.forward_plain(&store, &x);
        let logits_plain = classifier.forward_plain(&store, &emb_plain);

        for (a, b) in tape.value(logits).as_slice().iter().zip(logits_plain.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert_eq!(emb_plain.shape(), (6, 4));
    }

    #[test]
    fn parameters_use_expected_prefixes() {
        let mut r = rng(6);
        let mut store = ParamStore::new();
        let _ = Backbone::new(&mut store, 4, 8, 2, &mut r);
        let _ = Classifier::new(&mut store, 2, 5, &mut r);
        assert_eq!(store.ids_with_prefix(BACKBONE_PREFIX).len(), 4);
        assert_eq!(store.ids_with_prefix(CLASSIFIER_PREFIX).len(), 2);
    }

    #[test]
    fn dims_reported() {
        let mut r = rng(7);
        let mut store = ParamStore::new();
        let b = Backbone::new(&mut store, 4, 8, 2, &mut r);
        let c = Classifier::new(&mut store, 2, 5, &mut r);
        assert_eq!(b.embed_dim(), 2);
        assert_eq!(c.num_classes(), 5);
    }
}
