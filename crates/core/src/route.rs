//! Coarse routing: IVF-style non-exhaustive search over k-means partitions.
//!
//! Exhaustive ADC scans every item for every query, so QPS degrades
//! linearly with corpus size. Routing breaks that coupling: a k-means
//! coarse quantizer over the corpus's *reconstructions* partitions the
//! items into `nlist` inverted lists, each stored as an independent
//! level-major [`LevelCodes`] segment; a query ranks the `nlist` centroids
//! (`O(nlist·d)`), scans only the top-`nprobe` partitions with the
//! existing [`ScanBackend`] engines, and folds the per-partition
//! candidates through the same total order the sharded merge uses.
//!
//! Determinism contract (same shape as sharded search, see
//! [`crate::search::merge_shard_topk`]): per-item ADC scores depend only
//! on the item's own codes and the query LUT — never on where the item is
//! stored — and candidates fold in **fixed ascending partition order**
//! under the `(score desc, lower id first)` total order. Two consequences:
//!
//! * for a given (centroids, nprobe) the results are bitwise reproducible
//!   at any `LT_THREADS` width, and
//! * at `nprobe == nlist` the probed partitions cover the corpus, so the
//!   routed result is **bitwise identical** to the exhaustive
//!   [`crate::search::adc_search`] — routing degrades gracefully into a
//!   correctness oracle for itself.
//!
//! Partition assignment is a pure function of `(item codes, centroids)`:
//! the item's reconstruction is decoded from its codes and assigned to the
//! nearest centroid by squared L2 (ties to the lower centroid id). Online
//! upserts and WAL replay therefore land every item in exactly the
//! partition a from-scratch rebuild would choose — recovery needs no
//! routing state beyond the training seed.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use lt_linalg::distance::{squared_l2, Metric};
use lt_linalg::gemm::dot;
use lt_linalg::kmeans::{kmeans, KMeansConfig};
use lt_linalg::random::rng;
use lt_linalg::scan::LevelCodes;
use lt_linalg::topk::{Scored, TopK};
use lt_linalg::{Matrix, ScanBackend};

use crate::index::QuantizedIndex;

/// Default deterministic seed for coarse-quantizer training; every layer
/// that trains a router implicitly (serve startup, `search`/`eval
/// --route` on a legacy image) uses this, so they all agree on the
/// partitioning for a given corpus.
pub const DEFAULT_TRAIN_SEED: u64 = 0x11F5;

/// Lloyd iterations for router training: coarse centroids only steer the
/// probe order, so a short fit is enough and keeps startup bounded.
const TRAIN_MAX_ITERS: usize = 10;

/// Queries per parallel work chunk in [`RoutedIndex::search_batch`]
/// (mirrors the batch-search chunking in [`crate::search`]).
const ROUTE_SEARCH_CHUNK: usize = 8;

/// A parsed `--route nlist[:nprobe]` specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSpec {
    /// Number of coarse partitions (k-means centroids).
    pub nlist: usize,
    /// Partitions scanned per query (clamped to `nlist` at search time).
    pub nprobe: usize,
}

impl RouteSpec {
    /// Default probe width for a given `nlist`: an eighth of the
    /// partitions, at least one.
    pub fn default_nprobe(nlist: usize) -> usize {
        (nlist / 8).max(1)
    }

    /// Parses `"nlist"` or `"nlist:nprobe"`. Both values must be positive;
    /// `nprobe` defaults to [`RouteSpec::default_nprobe`].
    ///
    /// # Errors
    /// Returns a description of the malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (nlist_s, nprobe_s) = match s.split_once(':') {
            Some((a, b)) => (a, Some(b)),
            None => (s, None),
        };
        let nlist: usize = nlist_s
            .trim()
            .parse()
            .map_err(|_| format!("invalid route nlist {nlist_s:?} (want nlist[:nprobe])"))?;
        if nlist == 0 {
            return Err("route nlist must be positive".to_string());
        }
        let nprobe = match nprobe_s {
            Some(p) => {
                let nprobe: usize = p
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid route nprobe {p:?} (want nlist[:nprobe])"))?;
                if nprobe == 0 {
                    return Err("route nprobe must be positive".to_string());
                }
                nprobe
            }
            None => Self::default_nprobe(nlist),
        };
        Ok(Self { nlist, nprobe })
    }
}

impl fmt::Display for RouteSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.nlist, self.nprobe)
    }
}

/// Routing instrumentation (global lt-obs registry). Counters are bumped
/// per executed query; the histogram times the centroid-ranking phase.
struct RouteObs {
    probes: Arc<lt_obs::Counter>,
    partitions_scanned: Arc<lt_obs::Counter>,
    items_scanned: Arc<lt_obs::Counter>,
    skipped_items: Arc<lt_obs::Counter>,
    centroid_rank_us: Arc<lt_obs::Histogram>,
}

fn route_obs() -> &'static RouteObs {
    static OBS: std::sync::OnceLock<RouteObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = lt_obs::Registry::global();
        RouteObs {
            probes: reg.counter("route.probes"),
            partitions_scanned: reg.counter("route.partitions_scanned"),
            items_scanned: reg.counter("route.items_scanned"),
            skipped_items: reg.counter("route.skipped_items"),
            centroid_rank_us: reg.histogram("route.centroid_rank_us"),
        }
    })
}

/// One inverted list: a [`LevelCodes`] segment plus the per-slot
/// reconstruction norms the L2 scan kernels need and the global id each
/// slot holds. Scanned verbatim by any [`ScanBackend`].
#[derive(Debug, Clone)]
pub struct RoutePartition {
    codes: LevelCodes,
    norms_sq: Vec<f32>,
    ids: Vec<u32>,
}

impl RoutePartition {
    fn new(m: usize, num_codewords: usize) -> Self {
        Self { codes: LevelCodes::new(m, num_codewords), norms_sq: Vec::new(), ids: Vec::new() }
    }

    /// Items stored in this partition.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the partition holds no items.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Global id stored at `slot`.
    pub fn id_at(&self, slot: usize) -> usize {
        self.ids[slot] as usize
    }
}

/// A quantized corpus partitioned behind a k-means coarse quantizer.
///
/// Keeps the flat index's quantizer context (codebooks, LUT stack, metric)
/// plus `nlist` independent [`RoutePartition`] segments and a global-id →
/// `(partition, slot)` locator. Mutations mirror the flat index's
/// swap-remove id relabelling exactly, so a routed overlay tracks a flat
/// mirror id-for-id.
#[derive(Debug, Clone)]
pub struct RoutedIndex {
    /// Empty quantizer context: codebooks / LUT stack / metric / dim.
    context: QuantizedIndex,
    /// `nlist × d` coarse centroids (over reconstruction space).
    centroids: Matrix,
    /// Inverted lists, `Arc`-wrapped for copy-on-write serving overlays.
    partitions: Vec<Arc<RoutePartition>>,
    /// Global id → (partition, slot).
    loc: Vec<(u32, u32)>,
}

impl RoutedIndex {
    /// Trains a coarse quantizer on `index`'s reconstructions and routes
    /// every item to its nearest centroid. Deterministic for a given
    /// `(index, nlist, seed)` at any thread count: k-means assignment is
    /// chunk-deterministic and the routing rule is a pure per-item
    /// function.
    ///
    /// # Panics
    /// Panics when `nlist == 0`.
    pub fn from_index(index: &QuantizedIndex, nlist: usize, seed: u64) -> Self {
        assert!(nlist > 0, "route nlist must be positive");
        let d = index.dim();
        let centroids = if index.is_empty() {
            // Nothing to train on: all-zero centroids; upserts still route
            // deterministically (everything ties to centroid 0).
            Matrix::zeros(nlist, d)
        } else {
            let n = index.len();
            let mut recon = Matrix::zeros(n, d);
            for i in 0..n {
                recon.row_mut(i).copy_from_slice(&index.reconstruct_item(i));
            }
            let config = KMeansConfig { k: nlist, max_iters: TRAIN_MAX_ITERS, tol: 1e-3 };
            kmeans(&recon, config, &mut rng(seed)).centroids
        };
        Self::from_assignable(index, centroids)
    }

    /// Builds the partition layout for `index` under the given centroids
    /// (the deserialization and deterministic-mirror path).
    ///
    /// # Panics
    /// Panics when the centroid width does not match `index.dim()`.
    pub fn from_assignable(index: &QuantizedIndex, centroids: Matrix) -> Self {
        assert_eq!(centroids.cols(), index.dim(), "centroid dimension mismatch");
        assert!(centroids.rows() > 0, "route nlist must be positive");
        let assignments: Vec<u32> = lt_runtime::parallel_map_chunks(index.len(), 256, |range| {
            range
                .map(|i| assign_centroid(&centroids, &index.reconstruct_item(i)) as u32)
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        Self::from_parts(index, centroids, &assignments)
    }

    /// Assembles partitions from precomputed assignments (items enter
    /// their partition in ascending global-id order, so the layout is a
    /// pure function of `(index, centroids, assignments)`).
    ///
    /// # Panics
    /// Panics on a length mismatch or an out-of-range assignment.
    pub fn from_parts(index: &QuantizedIndex, centroids: Matrix, assignments: &[u32]) -> Self {
        assert_eq!(assignments.len(), index.len(), "one assignment per item");
        let nlist = centroids.rows();
        let m = index.num_codebooks();
        let k = index.num_codewords();
        let mut partitions: Vec<RoutePartition> =
            (0..nlist).map(|_| RoutePartition::new(m, k)).collect();
        let mut loc = Vec::with_capacity(index.len());
        for (i, &a) in assignments.iter().enumerate() {
            let a = a as usize;
            assert!(a < nlist, "assignment {a} out of range for nlist {nlist}");
            let part = &mut partitions[a];
            part.codes.push_item(&index.item_codes(i));
            part.norms_sq.push(index.recon_norm_sq(i));
            part.ids.push(i as u32);
            loc.push((a as u32, (part.ids.len() - 1) as u32));
        }
        Self {
            context: index.empty_like(),
            centroids,
            partitions: partitions.into_iter().map(Arc::new).collect(),
            loc,
        }
    }

    /// Items across all partitions.
    pub fn len(&self) -> usize {
        self.loc.len()
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.loc.is_empty()
    }

    /// Number of partitions (`nlist`).
    pub fn nlist(&self) -> usize {
        self.partitions.len()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.context.dim()
    }

    /// Ranking metric.
    pub fn metric(&self) -> Metric {
        self.context.metric()
    }

    /// The trained coarse centroids (`nlist × d`).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// The inverted lists, in partition order.
    pub fn partitions(&self) -> &[Arc<RoutePartition>] {
        &self.partitions
    }

    /// The owning partition of each global id, in id order.
    pub fn assignments(&self) -> Vec<u32> {
        self.loc.iter().map(|&(p, _)| p).collect()
    }

    /// The quantizer context (empty flat index sharing this corpus's
    /// codebooks and metric).
    pub fn context(&self) -> &QuantizedIndex {
        &self.context
    }

    /// Encodes a raw embedding with the shared codebooks and appends it
    /// (see [`RoutedIndex::push_encoded`]).
    pub fn encode_and_push(&mut self, row: &[f32]) -> usize {
        let (codes, norm_sq) = self.context.encode_item(row);
        self.push_encoded(&codes, norm_sq)
    }

    /// Appends an already-encoded item, routing it to the partition its
    /// reconstruction is nearest to. Returns the new global id (`len-1`,
    /// matching the flat index's append contract).
    pub fn push_encoded(&mut self, codes: &[u16], norm_sq: f32) -> usize {
        let recon = self.reconstruct_codes(codes);
        let a = assign_centroid(&self.centroids, &recon);
        let part = Arc::make_mut(&mut self.partitions[a]);
        let id = self.loc.len();
        assert!(id < u32::MAX as usize, "routed index id space exhausted");
        part.codes.push_item(codes);
        part.norms_sq.push(norm_sq);
        part.ids.push(id as u32);
        self.loc.push((a as u32, (part.ids.len() - 1) as u32));
        id
    }

    /// Removes global id `id` with the flat index's swap-remove
    /// relabelling: the highest id (`len-1`) takes over `id`. Returns the
    /// relabelled id (`Some(last)`) or `None` when `id` was the last item
    /// — byte-for-byte the same contract as
    /// [`QuantizedIndex::swap_remove`], so a routed overlay and a flat
    /// mirror stay id-aligned under any mutation schedule.
    ///
    /// # Panics
    /// Panics when `id` is out of bounds.
    pub fn swap_remove(&mut self, id: usize) -> Option<usize> {
        let n = self.len();
        assert!(id < n, "remove id {id} out of bounds ({n} items)");
        let last = n - 1;
        let (p, s) = self.loc[id];
        let (p, s) = (p as usize, s as usize);
        // Remove the victim from its partition (intra-partition
        // swap-remove); if another item slid into slot `s`, re-point its
        // locator.
        let part = Arc::make_mut(&mut self.partitions[p]);
        part.codes.swap_remove(s);
        part.norms_sq.swap_remove(s);
        part.ids.swap_remove(s);
        if s < part.ids.len() {
            let slid = part.ids[s] as usize;
            self.loc[slid] = (p as u32, s as u32);
        }
        if id == last {
            self.loc.pop();
            return None;
        }
        // Relabel global id `last` as `id` (its partition slot is
        // unchanged unless it was the item that just slid).
        let (lp, ls) = self.loc[last];
        Arc::make_mut(&mut self.partitions[lp as usize]).ids[ls as usize] = id as u32;
        self.loc[id] = (lp, ls);
        self.loc.pop();
        Some(last)
    }

    /// Rebuilds the flat index in global-id order (persistence and
    /// verification path; `O(nM)`).
    pub fn flatten(&self) -> QuantizedIndex {
        let mut flat = self.context.clone();
        let m = self.context.num_codebooks();
        let mut codes = vec![0u16; m];
        for &(p, s) in &self.loc {
            let part = &self.partitions[p as usize];
            for (level, slot) in codes.iter_mut().enumerate() {
                *slot = part.codes.code(s as usize, level);
            }
            flat.push_encoded(&codes, part.norms_sq[s as usize]);
        }
        flat
    }

    /// Decodes an item's reconstruction from its codes (level-ascending
    /// accumulation, bitwise identical to
    /// [`QuantizedIndex::reconstruct_item`]).
    fn reconstruct_codes(&self, codes: &[u16]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.context.dim()];
        for (level, cb) in self.context.codebooks().iter().enumerate() {
            for (v, &c) in out.iter_mut().zip(cb.row(codes[level] as usize)) {
                *v += c;
            }
        }
        out
    }

    /// Ranks the centroids for `query` and fills `out` with the top
    /// `nprobe` partition ids in **ascending id order** (the fixed scan
    /// order the determinism contract requires). Centroids score by the
    /// index metric — negative squared L2 or dot product — with ties going
    /// to the lower partition id.
    pub fn rank_partitions(&self, query: &[f32], nprobe: usize, out: &mut Vec<usize>) {
        let nprobe = nprobe.clamp(1, self.nlist());
        let mut topk = TopK::new(nprobe);
        for c in 0..self.centroids.rows() {
            let row = self.centroids.row(c);
            let score = match self.metric() {
                Metric::NegSquaredL2 => -squared_l2(query, row),
                Metric::InnerProduct | Metric::Cosine => dot(query, row),
            };
            topk.push(score, c);
        }
        out.clear();
        out.extend(topk.drain_sorted().into_iter().map(|h| h.index));
        out.sort_unstable();
    }

    /// Routed batch search: one GEMM builds every query's LUT, then each
    /// query ranks centroids, scans its top-`nprobe` partitions with
    /// `backend`, and folds candidates in ascending partition order under
    /// the shared `(score desc, lower id first)` total order.
    ///
    /// With `nprobe >= nlist` every partition is scanned, which reproduces
    /// the exhaustive [`crate::search::adc_search_batch_with_backend`]
    /// bitwise (same per-item scores, same total order — the sharded-merge
    /// argument verbatim).
    ///
    /// # Panics
    /// Panics on a query-width mismatch.
    pub fn search_batch(
        &self,
        backend: &dyn ScanBackend,
        queries: &Matrix,
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<Scored>> {
        self.search_batch_traced(backend, queries, k, nprobe, None)
    }

    /// [`RoutedIndex::search_batch`] with an optional span sink: when
    /// `sink` is given, each query records a `route-probe` span around
    /// centroid ranking and one `shard-scan` span **per probed non-empty
    /// partition** (the routed analogue of a shard: `shard` carries the
    /// partition id), and the sink is the ambient trace target so
    /// backend-internal stages (the u8 re-rank) attribute to the right
    /// query and partition. `None` is exactly the untraced path.
    pub fn search_batch_traced(
        &self,
        backend: &dyn ScanBackend,
        queries: &Matrix,
        k: usize,
        nprobe: usize,
        sink: Option<&lt_obs::trace::SpanSink>,
    ) -> Vec<Vec<Scored>> {
        use lt_obs::trace::{stage, Span, ALL_QUERIES, NO_SHARD};
        assert_eq!(queries.cols(), self.dim(), "query dimension mismatch");
        let lut_t0 = sink.map(|_| lt_obs::now_us());
        let luts = backend.build_lut_batch(self.context.lut_stack(), queries);
        if let (Some(sink), Some(start_us)) = (sink, lut_t0) {
            sink.push(
                ALL_QUERIES,
                Span {
                    stage: stage::LUT_BUILD,
                    shard: NO_SHARD,
                    start_us,
                    dur_us: lt_obs::now_us().saturating_sub(start_us),
                    items: queries.rows() as u64,
                    reranked: 0,
                },
            );
        }
        let obs = lt_obs::enabled().then(route_obs);
        let total = self.len() as u64;
        lt_runtime::parallel_map_chunks(queries.rows(), ROUTE_SEARCH_CHUNK, |range| {
            let mut probes = Vec::new();
            let mut scores = Vec::new();
            let mut topk = TopK::new(0);
            let mut merged = TopK::new(0);
            range
                .map(|i| {
                    let _ambient = sink.map(|s| lt_obs::trace::ambient_sink(s, i as u32, NO_SHARD));
                    let query = queries.row(i);
                    let qn = match self.metric() {
                        Metric::NegSquaredL2 => dot(query, query),
                        Metric::InnerProduct | Metric::Cosine => 0.0,
                    };
                    let t0 = obs.is_some().then(Instant::now);
                    let probe_t0 = sink.map(|_| lt_obs::now_us());
                    self.rank_partitions(query, nprobe, &mut probes);
                    if let (Some(t0), Some(o)) = (t0, obs) {
                        o.centroid_rank_us.record(lt_obs::micros_since(t0));
                    }
                    if let (Some(sink), Some(start_us)) = (sink, probe_t0) {
                        sink.push(
                            i as u32,
                            Span {
                                stage: stage::ROUTE_PROBE,
                                shard: NO_SHARD,
                                start_us,
                                dur_us: lt_obs::now_us().saturating_sub(start_us),
                                items: self.nlist() as u64,
                                reranked: 0,
                            },
                        );
                    }
                    merged.reset(k);
                    let mut scanned = 0u64;
                    let mut nonempty = 0u64;
                    for &p in &probes {
                        let part = self.partitions[p].as_ref();
                        if part.is_empty() {
                            continue;
                        }
                        nonempty += 1;
                        scanned += part.len() as u64;
                        let part_t0 = sink.map(|_| {
                            lt_obs::trace::ambient_retag(i as u32, p as u32);
                            lt_obs::now_us()
                        });
                        scan_partition(
                            part,
                            backend,
                            self.metric(),
                            luts.row(i),
                            qn,
                            k,
                            &mut scores,
                            &mut topk,
                            &mut merged,
                        );
                        if let (Some(sink), Some(start_us)) = (sink, part_t0) {
                            sink.push(
                                i as u32,
                                Span {
                                    stage: stage::SHARD_SCAN,
                                    shard: p as u32,
                                    start_us,
                                    dur_us: lt_obs::now_us().saturating_sub(start_us),
                                    items: part.len() as u64,
                                    reranked: 0,
                                },
                            );
                        }
                    }
                    if let Some(o) = obs {
                        o.probes.add(probes.len() as u64);
                        o.partitions_scanned.add(nonempty);
                        o.items_scanned.add(scanned);
                        o.skipped_items.add(total - scanned);
                    }
                    merged.drain_sorted()
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The partition holding global id `id` (tail-class attribution for
    /// traces: a hit's partition indexes into
    /// [`RoutedIndex::partition_quartiles`]).
    ///
    /// # Panics
    /// Panics when `id` is out of bounds.
    pub fn partition_of(&self, id: usize) -> usize {
        self.loc[id].0 as usize
    }

    /// Head/tail quartile of every partition, indexed by partition id:
    /// partitions ranked by **descending** item count (ties to the lower
    /// partition id), quartile `rank·4 / nlist` — 0 is the head (largest)
    /// quarter of partitions, 3 the tail. A pure function of the current
    /// partition sizes, so it tracks online mutations.
    pub fn partition_quartiles(&self) -> Vec<u8> {
        let nlist = self.nlist();
        let mut by_size: Vec<usize> = (0..nlist).collect();
        by_size.sort_by_key(|&p| (std::cmp::Reverse(self.partitions[p].len()), p));
        let mut quartiles = vec![0u8; nlist];
        for (rank, &p) in by_size.iter().enumerate() {
            quartiles[p] = (rank * 4 / nlist) as u8;
        }
        quartiles
    }
}

/// Nearest centroid by squared L2, ties to the lower id. The single
/// routing rule shared by build, upsert, and WAL replay — a pure function
/// of `(centroids, reconstruction)`.
pub fn assign_centroid(centroids: &Matrix, recon: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..centroids.rows() {
        let d2 = squared_l2(recon, centroids.row(c));
        if d2 < best_d {
            best_d = d2;
            best = c;
        }
    }
    best
}

/// Scans one partition and pushes its candidates (with **global** ids)
/// into `merged`. Mirrors the exhaustive selection exactly: `k ≥ len`
/// materializes every score, otherwise the blocked [`TopK`] scan streams —
/// both feed the same total order, so folding partitions loses nothing the
/// exhaustive path would have kept.
#[allow(clippy::too_many_arguments)]
fn scan_partition(
    part: &RoutePartition,
    backend: &dyn ScanBackend,
    metric: Metric,
    lut: &[f32],
    qn: f32,
    k: usize,
    scores: &mut Vec<f32>,
    topk: &mut TopK,
    merged: &mut TopK,
) {
    let n = part.len();
    let norms = match metric {
        Metric::NegSquaredL2 => Some((part.norms_sq.as_slice(), qn)),
        Metric::InnerProduct | Metric::Cosine => None,
    };
    if k >= n {
        backend.scores(&part.codes, lut, norms, scores);
        for (slot, &score) in scores.iter().enumerate() {
            merged.push(score, part.ids[slot] as usize);
        }
    } else {
        topk.reset(k);
        backend.scan_topk(&part.codes, lut, norms, topk);
        for h in topk.drain_sorted() {
            merged.push(h.score, part.ids[h.index] as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_spec_parses_and_defaults() {
        assert_eq!(RouteSpec::parse("64").unwrap(), RouteSpec { nlist: 64, nprobe: 8 });
        assert_eq!(RouteSpec::parse("16:4").unwrap(), RouteSpec { nlist: 16, nprobe: 4 });
        assert_eq!(RouteSpec::parse("4").unwrap(), RouteSpec { nlist: 4, nprobe: 1 });
        assert!(RouteSpec::parse("0").is_err());
        assert!(RouteSpec::parse("8:0").is_err());
        assert!(RouteSpec::parse("x").is_err());
        assert!(RouteSpec::parse("8:y").is_err());
        assert_eq!(RouteSpec::parse("16:4").unwrap().to_string(), "16:4");
    }

    #[test]
    fn assign_centroid_breaks_ties_toward_lower_id() {
        let centroids = Matrix::from_rows(&[&[1.0f32, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(assign_centroid(&centroids, &[1.0, 0.0]), 0);
        assert_eq!(assign_centroid(&centroids, &[0.0, 1.0]), 2);
    }
}
