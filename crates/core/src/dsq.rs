//! Double Skip Quantization (DSQ), Section III-C.
//!
//! DSQ stacks `M` encoder–decoder pairs. Each pair shares one codebook
//! `C_k ∈ R^{K×d}`: the encoder picks the codeword most similar to its
//! input (Eqn. 3) and the decoder emits that codeword (Eqn. 4). Two skip
//! connections give the module its name:
//!
//! 1. **Residual skip (Eqn. 2).** Encoder `k` sees the residual
//!    `e_k = f(x) − Σ_{j<k} o_j`, so the pairs extract complementary
//!    information instead of memorizing the same dominant signal.
//! 2. **Codebook skip (Eqn. 10).** `C_k = FFN(C_{k−1})·g_k + P_k` with a
//!    one-hidden-layer ReLU FFN and a learnable scalar gate — a gradient
//!    highway that keeps deep stacks trainable (the paper's Eqn. 11
//!    analysis). Disabling it yields the "vanilla residual mechanism" of
//!    the Table-IV ablation.
//!
//! Training uses the tempered softmax + Straight-Through Estimator of
//! Eqns. 5–7: the forward pass uses the one-hot argmax, the backward pass
//! the softmax Jacobian.

use lt_linalg::distance::similarity;
use lt_linalg::gemm::matmul;
use lt_linalg::Matrix;
use lt_linalg::Metric;
use lt_linalg::LevelCodes;
use lt_tensor::{Init, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

use crate::config::CodebookTopology;

/// Parameter-name prefix of every DSQ weight; Algorithm 1's fine-tuning
/// stage selects exactly this prefix.
pub const DSQ_PREFIX: &str = "dsq.";

/// Items per parallel work item in the bulk encode/decode paths. Fixed
/// (never derived from the thread count), so batch codes and
/// reconstructions are bitwise identical for any runtime width.
const CODEC_CHUNK: usize = 16;

/// Below this much per-call work the bulk codecs stay on the calling thread.
const CODEC_PAR_MIN: usize = 1 << 16;

/// Discrete codes for a set of items: `M` codeword ids per item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Codes {
    /// Flattened row-major `n × M` codeword indices.
    data: Vec<u16>,
    /// Number of codebooks `M`.
    m: usize,
}

impl Codes {
    /// Creates a code table.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `m`.
    pub fn new(data: Vec<u16>, m: usize) -> Self {
        assert!(m > 0, "m must be positive");
        assert_eq!(data.len() % m, 0, "code length not a multiple of m");
        Self { data, m }
    }

    /// Number of encoded items.
    pub fn len(&self) -> usize {
        self.data.len() / self.m
    }

    /// True when no items are encoded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of codebooks.
    pub fn num_codebooks(&self) -> usize {
        self.m
    }

    /// Codeword ids of item `i` (length `M`).
    pub fn item(&self, i: usize) -> &[u16] {
        &self.data[i * self.m..(i + 1) * self.m]
    }

    /// Raw flattened storage.
    pub fn as_slice(&self) -> &[u16] {
        &self.data
    }

    /// Serialized size in bytes at `ceil(log2 K)` bits per id, i.e. the
    /// paper's `M·log2(K)/8` bits per item.
    pub fn packed_bytes(&self, num_codewords: usize) -> usize {
        let bits_per_id = (num_codewords as f64).log2().ceil() as usize;
        (self.len() * self.m * bits_per_id).div_ceil(8)
    }

    /// Converts to the level-major scan layout (see [`LevelCodes`]).
    pub fn to_level_codes(&self, num_codewords: usize) -> LevelCodes {
        LevelCodes::from_item_major(&self.data, self.m, num_codewords)
    }

    /// Rebuilds an item-major code table from the level-major scan layout.
    pub fn from_level_codes(codes: &LevelCodes) -> Self {
        Self::new(codes.to_item_major(), codes.num_codebooks())
    }
}

/// The DSQ module: parameter handles plus topology/temperature settings.
#[derive(Debug, Clone)]
pub struct Dsq {
    m: usize,
    k: usize,
    d: usize,
    topology: CodebookTopology,
    temperature: f32,
    metric: Metric,
    /// Main codebooks `P_k` (`K × d`), one per pair.
    main_codebooks: Vec<ParamId>,
    /// Gates `g_k` (`1 × 1`), one per pair after the first.
    gates: Vec<ParamId>,
    /// Shared codebook-skip FFN (present only for [`CodebookTopology::DoubleSkip`]
    /// with `M > 1`): `W1 (d×h)`, `b1 (1×h)`, `W2 (h×d)`, `b2 (1×d)`.
    ffn: Option<[ParamId; 4]>,
}

impl Dsq {
    /// Registers DSQ parameters under [`DSQ_PREFIX`].
    ///
    /// `m` codebooks of `k` codewords in `d` dimensions; `ffn_hidden` sizes
    /// the codebook-skip FFN.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        m: usize,
        k: usize,
        d: usize,
        ffn_hidden: usize,
        topology: CodebookTopology,
        temperature: f32,
        metric: Metric,
        rng: &mut StdRng,
    ) -> Self {
        assert!(m >= 1, "need at least one codebook");
        assert!(k >= 2, "need at least two codewords");
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(
            !matches!(metric, Metric::Cosine),
            "train-time codeword selection supports NegSquaredL2 and InnerProduct; \
             normalize inputs and use InnerProduct for cosine behaviour"
        );
        // Codewords start as small Gaussians around the origin so early
        // residuals dominate selection.
        let init = Init::Normal { std: 0.1 };
        let main_codebooks = (0..m)
            .map(|i| store.register(format!("{DSQ_PREFIX}p.{i}"), init.build(k, d, rng)))
            .collect();
        let gates = (1..m)
            .map(|i| {
                // Gates start at zero: DSQ begins exactly as the vanilla
                // residual topology and opens the codebook skip only when
                // the gradient says it helps — the skip can then never make
                // the initialization worse.
                store.register(format!("{DSQ_PREFIX}gate.{i}"), Matrix::full(1, 1, 0.0))
            })
            .collect();
        let ffn = if topology == CodebookTopology::DoubleSkip && m > 1 {
            let w1 = store.register(
                format!("{DSQ_PREFIX}ffn.w1"),
                Init::HeNormal.build(d, ffn_hidden, rng),
            );
            let b1 = store.register(format!("{DSQ_PREFIX}ffn.b1"), Matrix::zeros(1, ffn_hidden));
            // The FFN output layer starts at zero (together with the zero
            // gates): the skip path contributes nothing at init and grows
            // only under persistent gradient pressure, so it cannot
            // destabilize the early residual-quantization phase.
            let w2 = store.register(
                format!("{DSQ_PREFIX}ffn.w2"),
                Init::Normal { std: 0.01 }.build(ffn_hidden, d, rng),
            );
            let b2 = store.register(format!("{DSQ_PREFIX}ffn.b2"), Matrix::zeros(1, d));
            Some([w1, b1, w2, b2])
        } else {
            None
        };
        Self { m, k, d, topology, temperature, metric, main_codebooks, gates, ffn }
    }

    /// Number of codebooks `M`.
    pub fn num_codebooks(&self) -> usize {
        self.m
    }

    /// Codewords per codebook `K`.
    pub fn num_codewords(&self) -> usize {
        self.k
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Selection metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    // ---- effective codebooks -------------------------------------------

    /// Tape version of Eqn. 10: returns the effective codebooks
    /// `[C_1, …, C_M]` as tape nodes.
    pub fn effective_codebooks_tape(&self, tape: &mut Tape, store: &ParamStore) -> Vec<Var> {
        let mut out = Vec::with_capacity(self.m);
        let first = tape.param(store, self.main_codebooks[0]);
        out.push(first);
        for i in 1..self.m {
            let p = tape.param(store, self.main_codebooks[i]);
            let c = match (self.topology, &self.ffn) {
                (CodebookTopology::DoubleSkip, Some(ffn)) => {
                    let transformed = self.ffn_tape(tape, store, ffn, out[i - 1]);
                    let gate = tape.param(store, self.gates[i - 1]);
                    let gated = tape.mul_scalar_var(transformed, gate);
                    tape.add(gated, p)
                }
                _ => p,
            };
            out.push(c);
        }
        out
    }

    fn ffn_tape(&self, tape: &mut Tape, store: &ParamStore, ffn: &[ParamId; 4], x: Var) -> Var {
        let w1 = tape.param(store, ffn[0]);
        let b1 = tape.param(store, ffn[1]);
        let w2 = tape.param(store, ffn[2]);
        let b2 = tape.param(store, ffn[3]);
        let h = tape.matmul(x, w1);
        let h = tape.add_row_broadcast(h, b1);
        let h = tape.relu(h);
        let y = tape.matmul(h, w2);
        tape.add_row_broadcast(y, b2)
    }

    /// Plain (inference) version of Eqn. 10.
    pub fn effective_codebooks(&self, store: &ParamStore) -> Vec<Matrix> {
        let mut out: Vec<Matrix> = Vec::with_capacity(self.m);
        out.push(store.value(self.main_codebooks[0]).clone());
        for i in 1..self.m {
            let p = store.value(self.main_codebooks[i]);
            let c = match (self.topology, &self.ffn) {
                (CodebookTopology::DoubleSkip, Some(ffn)) => {
                    let transformed = self.ffn_plain(store, ffn, &out[i - 1]);
                    let gate = store.value(self.gates[i - 1])[(0, 0)];
                    let mut c = transformed.scale(gate);
                    c.axpy(1.0, p);
                    c
                }
                _ => p.clone(),
            };
            out.push(c);
        }
        out
    }

    fn ffn_plain(&self, store: &ParamStore, ffn: &[ParamId; 4], x: &Matrix) -> Matrix {
        let mut h = matmul(x, store.value(ffn[0]));
        let b1 = store.value(ffn[1]);
        for r in 0..h.rows() {
            for (v, &b) in h.row_mut(r).iter_mut().zip(b1.row(0)) {
                *v += b;
            }
        }
        h.map_inplace(|v| v.max(0.0));
        let mut y = matmul(&h, store.value(ffn[2]));
        let b2 = store.value(ffn[3]);
        for r in 0..y.rows() {
            for (v, &b) in y.row_mut(r).iter_mut().zip(b2.row(0)) {
                *v += b;
            }
        }
        y
    }

    // ---- training forward ----------------------------------------------

    /// Similarity scores of every residual row against every codeword
    /// (Eqn. 3) as a tape node (`n × K`, higher = more similar).
    fn scores_tape(&self, tape: &mut Tape, residual: Var, codebook: Var) -> Var {
        match self.metric {
            Metric::InnerProduct => tape.matmul_bt(residual, codebook),
            Metric::NegSquaredL2 | Metric::Cosine => {
                // −‖e − c‖² = 2⟨e,c⟩ − ‖e‖² − ‖c‖².
                let ip = tape.matmul_bt(residual, codebook);
                let ip2 = tape.scale(ip, 2.0);
                let en = tape.row_norm_sq(residual); // n × 1
                let en_neg = tape.scale(en, -1.0);
                let with_e = tape.add_col_broadcast(ip2, en_neg);
                let cn = tape.row_norm_sq(codebook); // K × 1
                let cn_t = tape.transpose(cn); // 1 × K
                let cn_neg = tape.scale(cn_t, -1.0);
                tape.add_row_broadcast(with_e, cn_neg)
            }
        }
    }

    /// Full DSQ forward on the tape (Eqns. 2, 5–7, 10).
    ///
    /// Returns the reconstructed representation `o = Σ_k o_k` (a tape node
    /// whose forward value uses the hard one-hot selection and whose
    /// gradient flows through the tempered softmax) together with the hard
    /// codes of the batch.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, f_x: Var) -> (Var, Codes) {
        assert_eq!(
            tape.value(f_x).cols(),
            self.d,
            "DSQ expected {}-dim input",
            self.d
        );
        let n = tape.value(f_x).rows();
        let codebooks = self.effective_codebooks_tape(tape, store);

        let mut residual = f_x;
        let mut recon: Option<Var> = None;
        let mut codes = Vec::with_capacity(n * self.m);
        // The codes vector is filled codebook-major then transposed at the
        // end so `Codes` is item-major.
        let mut per_level_codes: Vec<Vec<u16>> = Vec::with_capacity(self.m);

        for &cb in &codebooks {
            let scores = self.scores_tape(tape, residual, cb);
            // Hard selection (Eqn. 3) from the forward values.
            let hard: Vec<u16> = {
                let sv = tape.value(scores);
                (0..n)
                    .map(|i| {
                        let row = sv.row(i);
                        let mut best = 0usize;
                        let mut best_v = f32::NEG_INFINITY;
                        for (j, &v) in row.iter().enumerate() {
                            if v > best_v {
                                best_v = v;
                                best = j;
                            }
                        }
                        best as u16
                    })
                    .collect()
            };
            // One-hot constant for the STE.
            let mut onehot = Matrix::zeros(n, self.k);
            for (i, &h) in hard.iter().enumerate() {
                onehot[(i, h as usize)] = 1.0;
            }
            let onehot = tape.constant(onehot);

            // Tempered softmax (Eqn. 5) + STE (Eqn. 6).
            let tempered = tape.scale(scores, 1.0 / self.temperature);
            let soft = tape.softmax_rows(tempered);
            let diff = tape.sub(onehot, soft);
            let sg = tape.stop_grad(diff);
            let b = tape.add(soft, sg);

            // Decode (Eqn. 7): o_k = bᵀ-selected codewords.
            let o_k = tape.matmul(b, cb);
            recon = Some(match recon {
                Some(acc) => tape.add(acc, o_k),
                None => o_k,
            });
            residual = tape.sub(residual, o_k);
            per_level_codes.push(hard);
        }

        for i in 0..n {
            for level in &per_level_codes {
                codes.push(level[i]);
            }
        }
        (recon.expect("at least one codebook"), Codes::new(codes, self.m))
    }

    // ---- inference ------------------------------------------------------

    /// Encodes items without a tape: returns hard codes (the database
    /// indexing path of Fig. 3).
    pub fn encode(&self, store: &ParamStore, f_x: &Matrix) -> Codes {
        let codebooks = self.effective_codebooks(store);
        self.encode_with_codebooks(&codebooks, f_x)
    }

    /// Encodes against pre-materialized codebooks (avoids recomputing
    /// Eqn. 10 per call).
    ///
    /// Items are independent — each walks the codebook stack on its own
    /// local residual — so batches fan out on the [`lt_runtime`] pool with
    /// results bitwise identical to a serial walk.
    pub fn encode_with_codebooks(&self, codebooks: &[Matrix], f_x: &Matrix) -> Codes {
        assert_eq!(codebooks.len(), self.m, "codebook count mismatch");
        let n = f_x.rows();
        let mut codes = vec![0u16; n * self.m];
        let _serial = (n * self.m * self.k * self.d < CODEC_PAR_MIN)
            .then(|| lt_runtime::scoped_threads(1));
        lt_runtime::parallel_for_each_mut(&mut codes, CODEC_CHUNK * self.m, |start, slot| {
            let i0 = start / self.m;
            let mut residual = vec![0.0f32; self.d];
            for (ri, item) in slot.chunks_mut(self.m).enumerate() {
                residual.copy_from_slice(f_x.row(i0 + ri));
                for (level, cb) in codebooks.iter().enumerate() {
                    let mut best = 0usize;
                    let mut best_s = f32::NEG_INFINITY;
                    for j in 0..self.k {
                        let s = similarity(self.metric, &residual, cb.row(j));
                        if s > best_s {
                            best_s = s;
                            best = j;
                        }
                    }
                    item[level] = best as u16;
                    for (v, &c) in residual.iter_mut().zip(cb.row(best)) {
                        *v -= c;
                    }
                }
            }
        });
        Codes::new(codes, self.m)
    }

    /// Decodes codes back to reconstructed vectors (`o_i = Σ_k C_k[b_i[k]]`).
    pub fn decode(&self, store: &ParamStore, codes: &Codes) -> Matrix {
        let codebooks = self.effective_codebooks(store);
        self.decode_with_codebooks(&codebooks, codes)
    }

    /// Decodes against pre-materialized codebooks (row-parallel, bitwise
    /// identical for any runtime width).
    pub fn decode_with_codebooks(&self, codebooks: &[Matrix], codes: &Codes) -> Matrix {
        assert_eq!(codebooks.len(), self.m, "codebook count mismatch");
        let n = codes.len();
        let mut out = Matrix::zeros(n, self.d);
        let _serial =
            (n * self.m * self.d < CODEC_PAR_MIN).then(|| lt_runtime::scoped_threads(1));
        lt_runtime::parallel_for_each_mut(out.as_mut_slice(), CODEC_CHUNK * self.d, |start, panel| {
            let i0 = start / self.d;
            for (ri, row) in panel.chunks_mut(self.d).enumerate() {
                for (level, &id) in codes.item(i0 + ri).iter().enumerate() {
                    let cw = codebooks[level].row(id as usize);
                    for (v, &c) in row.iter_mut().zip(cw) {
                        *v += c;
                    }
                }
            }
        });
        out
    }

    /// Convenience: encode then decode (the quantizer's reconstruction).
    pub fn reconstruct(&self, store: &ParamStore, f_x: &Matrix) -> Matrix {
        let codebooks = self.effective_codebooks(store);
        let codes = self.encode_with_codebooks(&codebooks, f_x);
        self.decode_with_codebooks(&codebooks, &codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::{randn, rng};

    fn small_dsq(topology: CodebookTopology, seed: u64) -> (Dsq, ParamStore) {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store,
            3,
            8,
            4,
            16,
            topology,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        (dsq, store)
    }

    #[test]
    fn tape_and_plain_codebooks_agree() {
        let (dsq, store) = small_dsq(CodebookTopology::DoubleSkip, 1);
        let plain = dsq.effective_codebooks(&store);
        let mut tape = Tape::new();
        let tape_cbs = dsq.effective_codebooks_tape(&mut tape, &store);
        for (p, &t) in plain.iter().zip(&tape_cbs) {
            for (a, b) in p.as_slice().iter().zip(tape.value(t).as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn forward_value_equals_hard_reconstruction() {
        // STE: the tape forward value must equal the plain encode→decode
        // reconstruction exactly.
        for topology in [CodebookTopology::DoubleSkip, CodebookTopology::VanillaResidual] {
            let (dsq, store) = small_dsq(topology, 2);
            let x = randn(5, 4, &mut rng(3));
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let (recon, codes) = dsq.forward(&mut tape, &store, xv);
            let plain = dsq.reconstruct(&store, &x);
            for (a, b) in tape.value(recon).as_slice().iter().zip(plain.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b} ({topology:?})");
            }
            let plain_codes = dsq.encode(&store, &x);
            assert_eq!(codes, plain_codes, "{topology:?}");
        }
    }

    #[test]
    fn residual_shrinks_with_more_codebooks() {
        // Encoding with M codebooks should reconstruct no worse than the
        // first codebook alone on average.
        let (dsq, store) = small_dsq(CodebookTopology::DoubleSkip, 4);
        let x = randn(20, 4, &mut rng(5)).scale(0.3);
        let codebooks = dsq.effective_codebooks(&store);
        let codes = dsq.encode_with_codebooks(&codebooks, &x);
        let full = dsq.decode_with_codebooks(&codebooks, &codes);
        // One-level reconstruction.
        let one_level: Matrix = {
            let mut out = Matrix::zeros(x.rows(), 4);
            for i in 0..x.rows() {
                let id = codes.item(i)[0] as usize;
                out.row_mut(i).copy_from_slice(codebooks[0].row(id));
            }
            out
        };
        let err_full = full.sub(&x).frobenius_norm();
        let err_one = one_level.sub(&x).frobenius_norm();
        assert!(
            err_full <= err_one + 1e-4,
            "full {err_full} should be <= one-level {err_one}"
        );
    }

    #[test]
    fn codes_shape_and_range() {
        let (dsq, store) = small_dsq(CodebookTopology::DoubleSkip, 6);
        let x = randn(7, 4, &mut rng(7));
        let codes = dsq.encode(&store, &x);
        assert_eq!(codes.len(), 7);
        assert_eq!(codes.num_codebooks(), 3);
        assert!(codes.as_slice().iter().all(|&c| (c as usize) < 8));
    }

    #[test]
    fn gradient_reaches_first_codebook_through_skip() {
        // With the codebook skip, a loss on the last level's output must
        // produce a nonzero gradient on P_1 even through multiple levels.
        let (dsq, store) = small_dsq(CodebookTopology::DoubleSkip, 8);
        let x = randn(6, 4, &mut rng(9));
        let mut store = store;
        store.zero_grads();
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let (recon, _) = dsq.forward(&mut tape, &store, xv);
        let sq = tape.square(recon);
        let loss = tape.mean(sq);
        let grads = tape.backward(loss);
        tape.accumulate_param_grads(&grads, &mut store);
        let p0 = store.id_of("dsq.p.0").unwrap();
        let gnorm = store.get(p0).grad.frobenius_norm();
        assert!(gnorm > 0.0, "first codebook received no gradient");
    }

    #[test]
    fn vanilla_residual_has_no_ffn_params() {
        let (_, store) = small_dsq(CodebookTopology::VanillaResidual, 10);
        assert!(store.id_of("dsq.ffn.w1").is_none());
        // Still has main codebooks and gates are registered only for DSQ.
        assert!(store.id_of("dsq.p.2").is_some());
    }

    #[test]
    fn all_dsq_params_share_prefix() {
        let (_, store) = small_dsq(CodebookTopology::DoubleSkip, 11);
        assert_eq!(store.ids_with_prefix(DSQ_PREFIX).len(), store.len());
    }

    #[test]
    fn packed_bytes_matches_formula() {
        let codes = Codes::new(vec![0; 10 * 4], 4);
        // 4 codebooks × 8 bits (K=256) × 10 items = 40 bytes.
        assert_eq!(codes.packed_bytes(256), 40);
        // K=8 → 3 bits per id → 120 bits → 15 bytes.
        assert_eq!(codes.packed_bytes(8), 15);
    }

    #[test]
    fn codes_item_access() {
        let codes = Codes::new(vec![1, 2, 3, 4, 5, 6], 3);
        assert_eq!(codes.len(), 2);
        assert_eq!(codes.item(0), &[1, 2, 3]);
        assert_eq!(codes.item(1), &[4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn codes_reject_ragged() {
        let _ = Codes::new(vec![1, 2, 3], 2);
    }

    #[test]
    fn inner_product_metric_encodes() {
        let mut store = ParamStore::new();
        let mut r = rng(12);
        let dsq = Dsq::new(
            &mut store,
            2,
            4,
            4,
            8,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::InnerProduct,
            &mut r,
        );
        let x = randn(3, 4, &mut rng(13));
        let codes = dsq.encode(&store, &x);
        assert_eq!(codes.len(), 3);
        // Tape forward agrees with plain encode under IP too.
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let (_, tape_codes) = dsq.forward(&mut tape, &store, xv);
        assert_eq!(tape_codes, codes);
    }

    #[test]
    #[should_panic(expected = "NegSquaredL2 and InnerProduct")]
    fn cosine_metric_rejected_at_construction() {
        let mut store = ParamStore::new();
        let _ = Dsq::new(
            &mut store,
            2,
            4,
            4,
            8,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::Cosine,
            &mut rng(14),
        );
    }
}
