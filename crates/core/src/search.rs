//! Search: ADC lookup-table kNN over a [`QuantizedIndex`] and the exhaustive
//! dense-scan comparator (Section IV-B).
//!
//! The ADC paths run on the cache-blocked level-major scan engine
//! ([`lt_linalg::scan`]) and reuse a per-caller [`SearchScratch`] so the
//! steady-state query path performs no heap allocation beyond the returned
//! result list. Batch entry points additionally build all query LUTs in one
//! GEMM ([`QuantizedIndex::build_lut_batch`]). Every fast path accumulates
//! per-item sums level-ascending with the same `dot` kernel as the scalar
//! reference, so results are bitwise identical to the reference scorer.

use std::time::Instant;

use lt_linalg::distance::{similarity, Metric};
use lt_linalg::gemm::dot;
use lt_linalg::scan::F32_BACKEND;
use lt_linalg::topk::{Scored, TopK};
use lt_linalg::{Matrix, ScanBackend};

use crate::index::QuantizedIndex;

/// A search request that cannot be executed against the given index.
///
/// The unchecked entry points ([`adc_search`] and friends) assert on these
/// conditions (or silently return an empty result for an empty index);
/// boundary layers that receive untrusted queries — the serving subsystem,
/// the CLI — go through [`adc_search_checked`] /
/// [`adc_search_batch_checked`] instead so a malformed request becomes a
/// typed error rather than a panic or garbage scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchError {
    /// The query's dimensionality does not match [`QuantizedIndex::dim`].
    DimMismatch {
        /// The index's embedding dimensionality.
        expected: usize,
        /// The query's dimensionality.
        got: usize,
    },
    /// `k == 0` requests an empty result set; always a caller bug.
    ZeroK,
    /// The index holds no items, so there is nothing to rank.
    EmptyIndex,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::DimMismatch { expected, got } => {
                write!(f, "query dimension {got} does not match index dimension {expected}")
            }
            SearchError::ZeroK => write!(f, "k must be at least 1"),
            SearchError::EmptyIndex => write!(f, "search over an empty index"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Validates one search request (dimension, `k`, non-empty index) against
/// an index. The boundary check used by [`adc_search_checked`] and by the
/// serving front end, which must reject a malformed request *before*
/// admitting it to the batch queue.
pub fn validate_search_request(
    index: &QuantizedIndex,
    query_dim: usize,
    k: usize,
) -> Result<(), SearchError> {
    if query_dim != index.dim() {
        return Err(SearchError::DimMismatch { expected: index.dim(), got: query_dim });
    }
    if k == 0 {
        return Err(SearchError::ZeroK);
    }
    if index.is_empty() {
        return Err(SearchError::EmptyIndex);
    }
    Ok(())
}

/// Reusable per-caller scratch for the zero-allocation ADC query path:
/// the LUT buffer, the score block, and the top-k accumulator all keep
/// their allocations across queries.
#[derive(Debug)]
pub struct SearchScratch {
    lut: Vec<f32>,
    scores: Vec<f32>,
    topk: TopK,
}

impl SearchScratch {
    /// Creates an empty scratch; buffers grow to steady-state size on the
    /// first query and are reused afterwards.
    pub fn new() -> Self {
        Self { lut: Vec::new(), scores: Vec::new(), topk: TopK::new(0) }
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Query-side norm term: `‖q‖²` for the L2 metric, unused otherwise.
#[inline]
fn query_norm_sq(index: &QuantizedIndex, query: &[f32]) -> f32 {
    match index.metric() {
        Metric::NegSquaredL2 => dot(query, query),
        Metric::InnerProduct | Metric::Cosine => 0.0,
    }
}

/// Core selection over a prebuilt LUT, executed by a [`ScanBackend`].
///
/// `k < n` streams blocks through the reusable [`TopK`] accumulator
/// (scores never materialize); `k ≥ n` materializes the score list once
/// and full-sorts it. Both paths push/compare by the shared total order,
/// so results are identical.
fn search_with_lut(
    index: &QuantizedIndex,
    backend: &dyn ScanBackend,
    lut: &[f32],
    qn: f32,
    k: usize,
    scores: &mut Vec<f32>,
    topk: &mut TopK,
) -> Vec<Scored> {
    let n = index.len();
    let norms = match index.metric() {
        Metric::NegSquaredL2 => Some((index.recon_norms_sq(), qn)),
        Metric::InnerProduct | Metric::Cosine => None,
    };
    if k >= n {
        backend.scores(index.level_codes(), lut, norms, scores);
        return lt_linalg::topk::top_k_by_sort(scores, k);
    }
    topk.reset(k);
    backend.scan_topk(index.level_codes(), lut, norms, topk);
    topk.drain_sorted()
}

/// kNN over the quantized index via asymmetric distance computation:
/// one `O(dMK)` lookup table, then `O(M)` adds per item.
///
/// Allocates a fresh [`SearchScratch`] per call; hot loops should hold one
/// and call [`adc_search_with`] instead.
pub fn adc_search(index: &QuantizedIndex, query: &[f32], k: usize) -> Vec<Scored> {
    let mut scratch = SearchScratch::new();
    adc_search_with(index, query, k, &mut scratch)
}

/// [`adc_search`] behind input validation: a dimension mismatch, `k == 0`,
/// or an empty index becomes a typed [`SearchError`] instead of a panic
/// (or a silently empty result). The validated path is the plain
/// [`adc_search`], so accepted queries return bitwise-identical results.
pub fn adc_search_checked(
    index: &QuantizedIndex,
    query: &[f32],
    k: usize,
) -> Result<Vec<Scored>, SearchError> {
    validate_search_request(index, query.len(), k)?;
    Ok(adc_search(index, query, k))
}

/// [`adc_search`] with caller-provided scratch: no per-query allocation
/// once the scratch buffers have grown to steady-state size. Runs on the
/// default [`lt_linalg::F32ScanBackend`].
pub fn adc_search_with(
    index: &QuantizedIndex,
    query: &[f32],
    k: usize,
    scratch: &mut SearchScratch,
) -> Vec<Scored> {
    adc_search_with_backend(index, &F32_BACKEND, query, k, scratch)
}

/// [`adc_search_with`] on an explicit [`ScanBackend`]: LUT construction
/// and the blocked scan both go through the engine, so alternative
/// implementations (quantized LUTs, routed scans) slot in here.
pub fn adc_search_with_backend(
    index: &QuantizedIndex,
    backend: &dyn ScanBackend,
    query: &[f32],
    k: usize,
    scratch: &mut SearchScratch,
) -> Vec<Scored> {
    assert_eq!(query.len(), index.dim(), "query dimension mismatch");
    let SearchScratch { lut, scores, topk } = scratch;
    backend.build_lut(index.lut_stack(), query, lut);
    let qn = query_norm_sq(index, query);
    search_with_lut(index, backend, lut, qn, k, scores, topk)
}

/// Queries per work item in the batch search paths. Fixed (never derived
/// from the thread count), so batch results are bitwise identical for any
/// runtime width.
const SEARCH_CHUNK: usize = 8;

/// Scan-engine instrumentation: the LUT-build vs. scan wall-time split of
/// [`adc_search_batch`] (global lt-obs registry).
struct ScanObs {
    lut_build_us: std::sync::Arc<lt_obs::Histogram>,
    scan_us: std::sync::Arc<lt_obs::Histogram>,
}

fn scan_obs() -> &'static ScanObs {
    static OBS: std::sync::OnceLock<ScanObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = lt_obs::Registry::global();
        ScanObs {
            lut_build_us: reg.histogram("scan.lut_build_us"),
            scan_us: reg.histogram("scan.scan_us"),
        }
    })
}

/// Batch ADC search: one result list per query row.
///
/// All query LUTs are built up front in one GEMM on the shared runtime
/// (`queries × stacked-codebooksᵀ`), then queries fan out on the
/// [`lt_runtime`] pool with one [`SearchScratch`] per work chunk. Control
/// the width with [`lt_runtime::set_threads`], [`lt_runtime::scoped_threads`],
/// or the `LT_THREADS` environment variable; results are identical either
/// way, and identical to per-query [`adc_search`].
pub fn adc_search_batch(index: &QuantizedIndex, queries: &Matrix, k: usize) -> Vec<Vec<Scored>> {
    adc_search_batch_with_backend(index, &F32_BACKEND, queries, k)
}

/// [`adc_search_batch`] on an explicit [`ScanBackend`].
pub fn adc_search_batch_with_backend(
    index: &QuantizedIndex,
    backend: &dyn ScanBackend,
    queries: &Matrix,
    k: usize,
) -> Vec<Vec<Scored>> {
    adc_search_batch_with_backend_traced(index, backend, queries, k, None)
}

/// [`adc_search_batch_with_backend`] with an optional span sink: when
/// `sink` is given, a `lut-build` span and one `shard-scan` span (shard 0
/// — the unsharded scan is one segment) covering the parallel section are
/// recorded, and the sink is installed as the ambient trace target inside
/// the pool workers so backend-internal stages (the u8 re-rank) attribute
/// to the right query. `None` is exactly the untraced path.
pub fn adc_search_batch_with_backend_traced(
    index: &QuantizedIndex,
    backend: &dyn ScanBackend,
    queries: &Matrix,
    k: usize,
    sink: Option<&lt_obs::trace::SpanSink>,
) -> Vec<Vec<Scored>> {
    use lt_obs::trace::{stage, Span, ALL_QUERIES};
    assert_eq!(queries.cols(), index.dim(), "query dimension mismatch");
    // LUT-build vs. scan split: the two timed sections cover the whole
    // call, so `scan.lut_build_us + scan.scan_us` is end-to-end batch
    // latency. Timing wraps the phases, never the per-item work, so the
    // enabled-mode overhead is two clock reads per batch.
    let observe = lt_obs::enabled() || lt_obs::events_enabled() || sink.is_some();
    let t0 = observe.then(Instant::now);
    let span_t0 = sink.map(|_| lt_obs::now_us());
    let luts = backend.build_lut_batch(index.lut_stack(), queries);
    if let Some(t0) = t0 {
        let micros = lt_obs::micros_since(t0);
        scan_obs().lut_build_us.record(micros);
        lt_obs::emit(&lt_obs::Event::LutBuild { queries: queries.rows() as u64, micros });
        if let (Some(sink), Some(start_us)) = (sink, span_t0) {
            sink.push(
                ALL_QUERIES,
                Span {
                    stage: stage::LUT_BUILD,
                    shard: lt_obs::trace::NO_SHARD,
                    start_us,
                    dur_us: micros,
                    items: queries.rows() as u64,
                    reranked: 0,
                },
            );
        }
    }
    let t1 = observe.then(Instant::now);
    let span_t1 = sink.map(|_| lt_obs::now_us());
    let hits = lt_runtime::parallel_map_chunks(queries.rows(), SEARCH_CHUNK, |range| {
        let mut scratch = SearchScratch::new();
        range
            .map(|i| {
                let _ambient = sink.map(|s| lt_obs::trace::ambient_sink(s, i as u32, 0));
                let qn = query_norm_sq(index, queries.row(i));
                search_with_lut(
                    index,
                    backend,
                    luts.row(i),
                    qn,
                    k,
                    &mut scratch.scores,
                    &mut scratch.topk,
                )
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    if let Some(t1) = t1 {
        let micros = lt_obs::micros_since(t1);
        scan_obs().scan_us.record(micros);
        lt_obs::emit(&lt_obs::Event::ScanBlock {
            queries: queries.rows() as u64,
            items: index.len() as u64,
            micros,
        });
        if let (Some(sink), Some(start_us)) = (sink, span_t1) {
            sink.push(
                ALL_QUERIES,
                Span {
                    stage: stage::SHARD_SCAN,
                    shard: 0,
                    start_us,
                    dur_us: micros,
                    items: (queries.rows() * index.len()) as u64,
                    reranked: 0,
                },
            );
        }
    }
    hits
}

/// Batch ADC search over an index partitioned into shards by the modulo
/// routing rule: global id `g` lives in shard `g % S` at local slot
/// `g / S`. Returns per-query result lists with **global** ids, bitwise
/// identical to [`adc_search_batch`] over the unsharded whole at any
/// shard count and any [`lt_runtime`] thread width.
///
/// Why the bits cannot move: each item's score depends only on its own
/// codes and the query LUT (level-ascending accumulation, no
/// cross-item state), shards share one set of codebooks so one GEMM
/// builds every LUT, and per-shard top-k lists are folded in ascending
/// shard order through the same [`TopK`] total order (score, then lower
/// global id) an unsharded scan pushes through. An item outside its
/// shard's top-k can never be in the global top-k, so folding the
/// per-shard winners loses nothing.
///
/// # Panics
/// Panics if `shards` is empty, the shards disagree on shape/metric, or
/// the query width does not match.
pub fn adc_search_batch_sharded(
    shards: &[&QuantizedIndex],
    queries: &Matrix,
    k: usize,
) -> Vec<Vec<Scored>> {
    adc_search_batch_sharded_with_backend(shards, &F32_BACKEND, queries, k)
}

/// [`adc_search_batch_sharded`] on an explicit [`ScanBackend`].
pub fn adc_search_batch_sharded_with_backend(
    shards: &[&QuantizedIndex],
    backend: &dyn ScanBackend,
    queries: &Matrix,
    k: usize,
) -> Vec<Vec<Scored>> {
    assert!(!shards.is_empty(), "need at least one shard");
    if shards.len() == 1 {
        return adc_search_batch_with_backend(shards[0], backend, queries, k);
    }
    let per_shard = adc_scan_shards_topk(shards, backend, queries, k);
    merge_shard_topk(&per_shard, queries.rows(), k)
}

/// Scan phase of a sharded batch search: every shard's top-k candidates
/// for every query, with shard-local slots already remapped to global ids
/// (`local · S + shard`). Shards fan out on the worker pool — one chunk
/// per shard, so the decomposition never depends on the thread count and
/// every scan is bitwise reproducible. Returned as `[shard][query]`; feed
/// to [`merge_shard_topk`] (lt-serve calls the phases separately to time
/// the merge on its own histogram).
///
/// # Panics
/// Panics when `shards` is empty, the shards disagree on shape/metric, or
/// the query width does not match.
pub fn adc_scan_shards_topk(
    shards: &[&QuantizedIndex],
    backend: &dyn ScanBackend,
    queries: &Matrix,
    k: usize,
) -> Vec<Vec<Vec<Scored>>> {
    adc_scan_shards_topk_traced(shards, backend, queries, k, None)
}

/// [`adc_scan_shards_topk`] with an optional span sink: when `sink` is
/// given, a `lut-build` span plus one `shard-scan` span **per shard**
/// (timed inside the pool worker that scanned it) are recorded, and the
/// sink is installed as the ambient trace target with a per-query retag so
/// backend-internal stages attribute correctly. `None` is exactly the
/// untraced path.
pub fn adc_scan_shards_topk_traced(
    shards: &[&QuantizedIndex],
    backend: &dyn ScanBackend,
    queries: &Matrix,
    k: usize,
    sink: Option<&lt_obs::trace::SpanSink>,
) -> Vec<Vec<Vec<Scored>>> {
    use lt_obs::trace::{stage, Span, ALL_QUERIES};
    assert!(!shards.is_empty(), "need at least one shard");
    let s = shards.len();
    let proto = shards[0];
    for shard in shards {
        assert_eq!(shard.dim(), proto.dim(), "shard dimension mismatch");
        assert_eq!(shard.num_codebooks(), proto.num_codebooks(), "shard codebook count mismatch");
        assert_eq!(shard.num_codewords(), proto.num_codewords(), "shard codeword count mismatch");
        assert_eq!(shard.metric(), proto.metric(), "shard metric mismatch");
    }
    assert_eq!(queries.cols(), proto.dim(), "query dimension mismatch");
    let observe = lt_obs::enabled() || lt_obs::events_enabled() || sink.is_some();
    let t0 = observe.then(Instant::now);
    let span_t0 = sink.map(|_| lt_obs::now_us());
    // Shards share one set of codebooks, so a single GEMM builds every
    // query's LUT for all of them.
    let luts = backend.build_lut_batch(proto.lut_stack(), queries);
    if let Some(t0) = t0 {
        let micros = lt_obs::micros_since(t0);
        scan_obs().lut_build_us.record(micros);
        lt_obs::emit(&lt_obs::Event::LutBuild { queries: queries.rows() as u64, micros });
        if let (Some(sink), Some(start_us)) = (sink, span_t0) {
            sink.push(
                ALL_QUERIES,
                Span {
                    stage: stage::LUT_BUILD,
                    shard: lt_obs::trace::NO_SHARD,
                    start_us,
                    dur_us: micros,
                    items: queries.rows() as u64,
                    reranked: 0,
                },
            );
        }
    }
    let t1 = observe.then(Instant::now);
    // Outer parallelism over shards (one chunk per shard); inside a pool
    // worker nested regions run serial, so chunking never depends on the
    // thread count and every scan is bitwise reproducible.
    let per_shard: Vec<Vec<Vec<Scored>>> =
        lt_runtime::parallel_map_chunks(s, 1, |range| {
            range
                .map(|shard_idx| {
                    let shard = shards[shard_idx];
                    let shard_t0 = sink.map(|_| lt_obs::now_us());
                    let mut scratch = SearchScratch::new();
                    let hits = (0..queries.rows())
                        .map(|i| {
                            let _ambient = sink
                                .map(|s| lt_obs::trace::ambient_sink(s, i as u32, shard_idx as u32));
                            let qn = query_norm_sq(shard, queries.row(i));
                            let mut local = search_with_lut(
                                shard,
                                backend,
                                luts.row(i),
                                qn,
                                k,
                                &mut scratch.scores,
                                &mut scratch.topk,
                            );
                            // Local slot -> global id under modulo routing.
                            for h in &mut local {
                                h.index = h.index * s + shard_idx;
                            }
                            local
                        })
                        .collect::<Vec<_>>();
                    if let (Some(sink), Some(start_us)) = (sink, shard_t0) {
                        sink.push(
                            ALL_QUERIES,
                            Span {
                                stage: stage::SHARD_SCAN,
                                shard: shard_idx as u32,
                                start_us,
                                dur_us: lt_obs::now_us().saturating_sub(start_us),
                                items: (queries.rows() * shard.len()) as u64,
                                reranked: 0,
                            },
                        );
                    }
                    hits
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    if let Some(t1) = t1 {
        let micros = lt_obs::micros_since(t1);
        scan_obs().scan_us.record(micros);
        let items: usize = shards.iter().map(|s| s.len()).sum();
        lt_obs::emit(&lt_obs::Event::ScanBlock {
            queries: queries.rows() as u64,
            items: items as u64,
            micros,
        });
    }
    per_shard
}

/// Merge phase of a sharded batch search: folds the `[shard][query]`
/// candidates from [`adc_scan_shards_topk`] into one global top-k per
/// query. The fold runs in fixed ascending shard order and the heap's
/// total order (score, then lower global id) resolves every cross-shard
/// tie exactly as one global scan would — so the merged results are
/// bitwise identical to an unsharded scan at any shard count.
///
/// # Panics
/// Panics when `per_shard` is empty or a shard's result set does not
/// cover `num_queries` queries.
pub fn merge_shard_topk(
    per_shard: &[Vec<Vec<Scored>>],
    num_queries: usize,
    k: usize,
) -> Vec<Vec<Scored>> {
    assert!(!per_shard.is_empty(), "need at least one shard's results");
    let mut merged = Vec::with_capacity(num_queries);
    let mut topk = TopK::new(k);
    for q in 0..num_queries {
        topk.reset(k);
        for shard_hits in per_shard {
            for h in &shard_hits[q] {
                topk.push(h.score, h.index);
            }
        }
        merged.push(topk.drain_sorted());
    }
    merged
}

/// [`adc_search_batch`] behind input validation (see
/// [`adc_search_checked`]); the whole batch shares one validation pass
/// since every row of a [`Matrix`] has the same width.
pub fn adc_search_batch_checked(
    index: &QuantizedIndex,
    queries: &Matrix,
    k: usize,
) -> Result<Vec<Vec<Scored>>, SearchError> {
    validate_search_request(index, queries.cols(), k)?;
    Ok(adc_search_batch(index, queries, k))
}

/// Exhaustive kNN over dense embeddings (`n × d`), the `O(nd)` baseline.
pub fn exhaustive_search(
    database: &Matrix,
    query: &[f32],
    metric: Metric,
    k: usize,
) -> Vec<Scored> {
    assert_eq!(database.cols(), query.len(), "query dimension mismatch");
    let mut acc = TopK::new(k);
    for i in 0..database.rows() {
        acc.push(similarity(metric, query, database.row(i)), i);
    }
    acc.into_sorted_vec()
}

/// Batch exhaustive search (parallel over queries, like [`adc_search_batch`]).
pub fn exhaustive_search_batch(
    database: &Matrix,
    queries: &Matrix,
    metric: Metric,
    k: usize,
) -> Vec<Vec<Scored>> {
    lt_runtime::parallel_map_chunks(queries.rows(), SEARCH_CHUNK, |range| {
        range
            .map(|i| exhaustive_search(database, queries.row(i), metric, k))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Two-stage search: an ADC shortlist of `shortlist` candidates is
/// re-ranked by exact distance against the dense embeddings, returning the
/// best `k`.
///
/// This trades a little memory (the dense vectors must be available, e.g.
/// on disk or a slower tier) for recall close to exact search while the
/// expensive exact distances are computed on only `shortlist ≪ n` items —
/// the standard production topology for quantized indexes.
///
/// # Panics
/// Panics if `database` and the index disagree on item count or dimension.
pub fn adc_search_rerank(
    index: &QuantizedIndex,
    database: &Matrix,
    query: &[f32],
    k: usize,
    shortlist: usize,
) -> Vec<Scored> {
    assert_eq!(database.rows(), index.len(), "database/index item count mismatch");
    assert_eq!(database.cols(), index.dim(), "database/index dimension mismatch");
    let shortlist = shortlist.max(k);
    let candidates = adc_search(index, query, shortlist);
    let mut acc = TopK::new(k);
    for c in candidates {
        acc.push(similarity(index.metric(), query, database.row(c.index)), c.index);
    }
    acc.into_sorted_vec()
}

/// Full descending ranking of all indexed items for one query (used by MAP
/// evaluation, which ranks the entire database). Scores once, then
/// full-sorts — no top-k heap overhead at `k = n`.
pub fn adc_rank_all(index: &QuantizedIndex, query: &[f32]) -> Vec<usize> {
    let mut scratch = SearchScratch::new();
    adc_rank_all_with(index, query, &mut scratch)
}

/// [`adc_rank_all`] with caller-provided scratch (zero-allocation scoring;
/// only the returned ranking allocates).
pub fn adc_rank_all_with(
    index: &QuantizedIndex,
    query: &[f32],
    scratch: &mut SearchScratch,
) -> Vec<usize> {
    let SearchScratch { lut, scores, .. } = scratch;
    index.build_lut_into(query, lut);
    index.scores_with_lut(lut, query_norm_sq(index, query), scores);
    lt_linalg::topk::rank_all(scores)
}

/// Batch full ranking: one descending permutation per query row.
///
/// LUTs come from one batched GEMM, then queries fan out on the runtime
/// pool with a scratch per work chunk — the MAP-evaluation hot path.
/// Rankings are identical to per-query [`adc_rank_all`] for any thread
/// count.
pub fn adc_rank_all_batch(index: &QuantizedIndex, queries: &Matrix) -> Vec<Vec<usize>> {
    let luts = index.build_lut_batch(queries);
    lt_runtime::parallel_map_chunks(queries.rows(), SEARCH_CHUNK, |range| {
        let mut scores = Vec::new();
        range
            .map(|i| {
                let qn = query_norm_sq(index, queries.row(i));
                index.scores_with_lut(luts.row(i), qn, &mut scores);
                lt_linalg::topk::rank_all(&scores)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Full descending ranking of a dense database for one query (scores once,
/// then full-sorts by the shared total order).
pub fn exhaustive_rank_all(database: &Matrix, query: &[f32], metric: Metric) -> Vec<usize> {
    let mut scores = Vec::with_capacity(database.rows());
    for i in 0..database.rows() {
        scores.push(similarity(metric, query, database.row(i)));
    }
    lt_linalg::topk::rank_all(&scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodebookTopology;
    use crate::dsq::Dsq;
    use lt_linalg::random::{randn, rng};
    use lt_tensor::ParamStore;

    fn build_index(seed: u64) -> (QuantizedIndex, Matrix) {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            6,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(60, 6, &mut rng(seed + 1)).scale(0.4);
        (QuantizedIndex::build(&dsq, &store, &db), db)
    }

    #[test]
    fn adc_matches_reconstructed_exhaustive() {
        // ADC over codes must return the same ranking as exhaustive search
        // over the explicitly reconstructed database.
        let (idx, _) = build_index(10);
        let recon = {
            let mut m = Matrix::zeros(idx.len(), idx.dim());
            for i in 0..idx.len() {
                m.row_mut(i).copy_from_slice(&idx.reconstruct_item(i));
            }
            m
        };
        let q = [0.3f32, -0.2, 0.1, 0.5, -0.4, 0.0];
        let adc = adc_search(&idx, &q, 10);
        let exact = exhaustive_search(&recon, &q, Metric::NegSquaredL2, 10);
        let adc_ids: Vec<usize> = adc.iter().map(|s| s.index).collect();
        let exact_ids: Vec<usize> = exact.iter().map(|s| s.index).collect();
        assert_eq!(adc_ids, exact_ids);
        for (a, e) in adc.iter().zip(&exact) {
            assert!((a.score - e.score).abs() < 1e-3);
        }
    }

    #[test]
    fn exhaustive_finds_self() {
        let db = randn(30, 5, &mut rng(20));
        let q = db.row(7).to_vec();
        let hits = exhaustive_search(&db, &q, Metric::NegSquaredL2, 1);
        assert_eq!(hits[0].index, 7);
        assert!(hits[0].score.abs() < 1e-6);
    }

    #[test]
    fn rank_all_returns_permutation() {
        let (idx, _) = build_index(30);
        let q = [0.0f32; 6];
        let rank = adc_rank_all(&idx, &q);
        assert_eq!(rank.len(), idx.len());
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..idx.len()).collect::<Vec<_>>());
    }

    #[test]
    fn batch_search_consistent_with_single() {
        let (idx, _) = build_index(40);
        let queries = randn(4, 6, &mut rng(41));
        let batch = adc_search_batch(&idx, &queries, 5);
        for (i, single) in batch.iter().enumerate() {
            let expect = adc_search(&idx, queries.row(i), 5);
            assert_eq!(single.len(), expect.len());
            for (a, b) in single.iter().zip(&expect) {
                assert_eq!(a.index, b.index);
            }
        }
    }

    #[test]
    fn rerank_recovers_exact_results_with_full_shortlist() {
        let (idx, db) = build_index(70);
        let q = [0.2f32, -0.1, 0.4, 0.0, -0.3, 0.1];
        // shortlist = n degenerates to exact search.
        let reranked = adc_search_rerank(&idx, &db, &q, 5, idx.len());
        let exact = exhaustive_search(&db, &q, Metric::NegSquaredL2, 5);
        let ri: Vec<usize> = reranked.iter().map(|s| s.index).collect();
        let ei: Vec<usize> = exact.iter().map(|s| s.index).collect();
        assert_eq!(ri, ei);
        for (a, b) in reranked.iter().zip(&exact) {
            assert!((a.score - b.score).abs() < 1e-5);
        }
    }

    #[test]
    fn rerank_scores_are_exact_distances() {
        let (idx, db) = build_index(80);
        let q = [0.0f32, 0.5, -0.5, 0.2, 0.1, -0.2];
        let hits = adc_search_rerank(&idx, &db, &q, 3, 10);
        for h in hits {
            let exact = -lt_linalg::distance::squared_l2(&q, db.row(h.index));
            assert!((h.score - exact).abs() < 1e-5);
        }
    }

    #[test]
    fn rerank_recall_improves_with_shortlist_size() {
        // Recall@10 against exact search must be non-decreasing in the
        // shortlist size (on average; we check the endpoints).
        let (idx, db) = build_index(90);
        let queries = randn(8, 6, &mut rng(91)).scale(0.4);
        let recall = |shortlist: usize| -> f64 {
            let mut hits = 0usize;
            for qi in 0..queries.rows() {
                let q = queries.row(qi);
                let exact: Vec<usize> = exhaustive_search(&db, q, Metric::NegSquaredL2, 10)
                    .into_iter()
                    .map(|s| s.index)
                    .collect();
                let got = adc_search_rerank(&idx, &db, q, 10, shortlist);
                hits += got.iter().filter(|s| exact.contains(&s.index)).count();
            }
            hits as f64 / (queries.rows() * 10) as f64
        };
        let small = recall(10);
        let large = recall(idx.len());
        assert!((large - 1.0).abs() < 1e-9, "full shortlist must be exact");
        assert!(small <= large + 1e-9);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let (idx, _) = build_index(60);
        let queries = randn(9, 6, &mut rng(61));
        let seq = {
            let _serial = lt_runtime::scoped_threads(1);
            adc_search_batch(&idx, &queries, 7)
        };
        for threads in [2usize, 4, 16] {
            let _width = lt_runtime::scoped_threads(threads);
            let par = adc_search_batch(&idx, &queries, 7);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                let ai: Vec<usize> = a.iter().map(|s| s.index).collect();
                let bi: Vec<usize> = b.iter().map(|s| s.index).collect();
                assert_eq!(ai, bi, "threads={threads}");
            }
        }
    }

    #[test]
    fn sharded_batch_matches_unsharded_bitwise() {
        // The tentpole invariant: shard count and thread width never move
        // a bit. 60 items over up to 8 shards with k=9 also exercises the
        // per-shard k >= n full-sort path.
        let (idx, _) = build_index(140);
        let queries = randn(6, 6, &mut rng(141)).scale(0.4);
        let expect = {
            let _serial = lt_runtime::scoped_threads(1);
            adc_search_batch(&idx, &queries, 9)
        };
        for s in [1usize, 2, 4, 8] {
            let shards = crate::index::split_modulo(&idx, s);
            let refs: Vec<&QuantizedIndex> = shards.iter().collect();
            for threads in [1usize, 4] {
                let _width = lt_runtime::scoped_threads(threads);
                let got = adc_search_batch_sharded(&refs, &queries, 9);
                assert_eq!(got.len(), expect.len());
                for (a, b) in got.iter().zip(&expect) {
                    assert_eq!(a.len(), b.len(), "shards={s} threads={threads}");
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.index, y.index, "shards={s} threads={threads}");
                        assert_eq!(
                            x.score.to_bits(),
                            y.score.to_bits(),
                            "shards={s} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_batch_handles_k_past_total_and_empty_shards() {
        let (idx, _) = build_index(150);
        let queries = randn(3, 6, &mut rng(151)).scale(0.4);
        // More shards than items leaves some shards empty.
        let head: Vec<usize> = (0..5).collect();
        let small = {
            let shards = crate::index::split_modulo(&idx, 1);
            let mut tiny = shards[0].empty_like();
            for &g in &head {
                tiny.push_encoded(&idx.item_codes(g), idx.recon_norm_sq(g));
            }
            tiny
        };
        let expect = adc_search_batch(&small, &queries, 1000);
        let shards = crate::index::split_modulo(&small, 8);
        let refs: Vec<&QuantizedIndex> = shards.iter().collect();
        let got = adc_search_batch_sharded(&refs, &queries, 1000);
        for (a, b) in got.iter().zip(&expect) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn backend_entry_points_match_default_bitwise() {
        let (idx, _) = build_index(160);
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.2, -0.1];
        let via_default = adc_search(&idx, &q, 5);
        let mut scratch = SearchScratch::new();
        let via_backend =
            adc_search_with_backend(&idx, &lt_linalg::scan::F32ScanBackend, &q, 5, &mut scratch);
        assert_eq!(via_default.len(), via_backend.len());
        for (a, b) in via_default.iter().zip(&via_backend) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn checked_search_rejects_malformed_requests() {
        let (idx, _) = build_index(110);
        assert_eq!(
            adc_search_checked(&idx, &[0.0; 4], 3).unwrap_err(),
            SearchError::DimMismatch { expected: 6, got: 4 }
        );
        assert_eq!(adc_search_checked(&idx, &[0.0; 6], 0).unwrap_err(), SearchError::ZeroK);
        let queries = randn(3, 4, &mut rng(111));
        assert!(matches!(
            adc_search_batch_checked(&idx, &queries, 5).unwrap_err(),
            SearchError::DimMismatch { expected: 6, got: 4 }
        ));
    }

    #[test]
    fn checked_search_rejects_empty_index() {
        let (idx, _) = build_index(120);
        let codebooks = idx.codebooks().to_vec();
        let empty = QuantizedIndex::from_parts(
            codebooks,
            crate::dsq::Codes::new(Vec::new(), idx.num_codebooks()),
            Vec::new(),
            idx.metric(),
            idx.dim(),
            idx.num_codewords(),
        );
        assert_eq!(adc_search_checked(&empty, &[0.0; 6], 3).unwrap_err(), SearchError::EmptyIndex);
    }

    #[test]
    fn checked_search_matches_unchecked_bitwise() {
        let (idx, _) = build_index(130);
        let q = [0.2f32, -0.3, 0.4, 0.1, -0.2, 0.0];
        let a = adc_search(&idx, &q, 5);
        let b = adc_search_checked(&idx, &q, 5).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn k_truncates_results() {
        let (idx, _) = build_index(50);
        assert_eq!(adc_search(&idx, &[0.0; 6], 3).len(), 3);
        assert_eq!(adc_search(&idx, &[0.0; 6], 1000).len(), idx.len());
    }
}
