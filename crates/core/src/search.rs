//! Search: ADC lookup-table kNN over a [`QuantizedIndex`] and the exhaustive
//! dense-scan comparator (Section IV-B).

use lt_linalg::distance::{similarity, Metric};
use lt_linalg::gemm::dot;
use lt_linalg::topk::{Scored, TopK};
use lt_linalg::Matrix;

use crate::index::QuantizedIndex;

/// kNN over the quantized index via asymmetric distance computation:
/// one `O(dMK)` lookup table, then `O(M)` adds per item.
pub fn adc_search(index: &QuantizedIndex, query: &[f32], k: usize) -> Vec<Scored> {
    let lut = index.build_lut(query);
    let qn = match index.metric() {
        Metric::NegSquaredL2 => dot(query, query),
        _ => 0.0,
    };
    let mut scores = Vec::new();
    index.scores_with_lut(&lut, qn, &mut scores);
    let mut acc = TopK::new(k);
    for (i, &s) in scores.iter().enumerate() {
        acc.push(s, i);
    }
    acc.into_sorted_vec()
}

/// Queries per work item in the batch search paths. Fixed (never derived
/// from the thread count), so batch results are bitwise identical for any
/// runtime width.
const SEARCH_CHUNK: usize = 8;

/// Batch ADC search: one result list per query row.
///
/// Queries are embarrassingly parallel (the index is read-only), so this
/// fans out on the [`lt_runtime`] pool and scales close to linearly until
/// memory bandwidth saturates. Control the width with
/// [`lt_runtime::set_threads`], [`lt_runtime::scoped_threads`], or the
/// `LT_THREADS` environment variable; results are identical either way.
pub fn adc_search_batch(index: &QuantizedIndex, queries: &Matrix, k: usize) -> Vec<Vec<Scored>> {
    lt_runtime::parallel_map_chunks(queries.rows(), SEARCH_CHUNK, |range| {
        range.map(|i| adc_search(index, queries.row(i), k)).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Batch ADC search over an explicit number of worker threads.
///
/// `num_threads == 0` is a request for "pick for me": it falls back to the
/// runtime's resolved default width (it is *not* silently clamped to one
/// thread). Results are in query order, identical to [`adc_search_batch`]
/// for every `num_threads` value.
#[deprecated(
    note = "use `adc_search_batch`, which runs on the shared lt-runtime pool; \
            control the width with `lt_runtime::set_threads` or `LT_THREADS`"
)]
pub fn adc_search_batch_parallel(
    index: &QuantizedIndex,
    queries: &Matrix,
    k: usize,
    num_threads: usize,
) -> Vec<Vec<Scored>> {
    // scoped_threads(0) is a no-op guard, i.e. the runtime default.
    let _width = lt_runtime::scoped_threads(num_threads.min(lt_runtime::MAX_THREADS));
    adc_search_batch(index, queries, k)
}

/// Exhaustive kNN over dense embeddings (`n × d`), the `O(nd)` baseline.
pub fn exhaustive_search(
    database: &Matrix,
    query: &[f32],
    metric: Metric,
    k: usize,
) -> Vec<Scored> {
    assert_eq!(database.cols(), query.len(), "query dimension mismatch");
    let mut acc = TopK::new(k);
    for i in 0..database.rows() {
        acc.push(similarity(metric, query, database.row(i)), i);
    }
    acc.into_sorted_vec()
}

/// Batch exhaustive search (parallel over queries, like [`adc_search_batch`]).
pub fn exhaustive_search_batch(
    database: &Matrix,
    queries: &Matrix,
    metric: Metric,
    k: usize,
) -> Vec<Vec<Scored>> {
    lt_runtime::parallel_map_chunks(queries.rows(), SEARCH_CHUNK, |range| {
        range
            .map(|i| exhaustive_search(database, queries.row(i), metric, k))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Two-stage search: an ADC shortlist of `shortlist` candidates is
/// re-ranked by exact distance against the dense embeddings, returning the
/// best `k`.
///
/// This trades a little memory (the dense vectors must be available, e.g.
/// on disk or a slower tier) for recall close to exact search while the
/// expensive exact distances are computed on only `shortlist ≪ n` items —
/// the standard production topology for quantized indexes.
///
/// # Panics
/// Panics if `database` and the index disagree on item count or dimension.
pub fn adc_search_rerank(
    index: &QuantizedIndex,
    database: &Matrix,
    query: &[f32],
    k: usize,
    shortlist: usize,
) -> Vec<Scored> {
    assert_eq!(database.rows(), index.len(), "database/index item count mismatch");
    assert_eq!(database.cols(), index.dim(), "database/index dimension mismatch");
    let shortlist = shortlist.max(k);
    let candidates = adc_search(index, query, shortlist);
    let mut acc = TopK::new(k);
    for c in candidates {
        acc.push(similarity(index.metric(), query, database.row(c.index)), c.index);
    }
    acc.into_sorted_vec()
}

/// Full descending ranking of all indexed items for one query (used by MAP
/// evaluation, which ranks the entire database).
pub fn adc_rank_all(index: &QuantizedIndex, query: &[f32]) -> Vec<usize> {
    adc_search(index, query, index.len()).into_iter().map(|s| s.index).collect()
}

/// Full descending ranking of a dense database for one query.
pub fn exhaustive_rank_all(database: &Matrix, query: &[f32], metric: Metric) -> Vec<usize> {
    exhaustive_search(database, query, metric, database.rows())
        .into_iter()
        .map(|s| s.index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodebookTopology;
    use crate::dsq::Dsq;
    use lt_linalg::random::{randn, rng};
    use lt_tensor::ParamStore;

    fn build_index(seed: u64) -> (QuantizedIndex, Matrix) {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            6,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(60, 6, &mut rng(seed + 1)).scale(0.4);
        (QuantizedIndex::build(&dsq, &store, &db), db)
    }

    #[test]
    fn adc_matches_reconstructed_exhaustive() {
        // ADC over codes must return the same ranking as exhaustive search
        // over the explicitly reconstructed database.
        let (idx, _) = build_index(10);
        let recon = {
            let mut m = Matrix::zeros(idx.len(), idx.dim());
            for i in 0..idx.len() {
                m.row_mut(i).copy_from_slice(&idx.reconstruct_item(i));
            }
            m
        };
        let q = [0.3f32, -0.2, 0.1, 0.5, -0.4, 0.0];
        let adc = adc_search(&idx, &q, 10);
        let exact = exhaustive_search(&recon, &q, Metric::NegSquaredL2, 10);
        let adc_ids: Vec<usize> = adc.iter().map(|s| s.index).collect();
        let exact_ids: Vec<usize> = exact.iter().map(|s| s.index).collect();
        assert_eq!(adc_ids, exact_ids);
        for (a, e) in adc.iter().zip(&exact) {
            assert!((a.score - e.score).abs() < 1e-3);
        }
    }

    #[test]
    fn exhaustive_finds_self() {
        let db = randn(30, 5, &mut rng(20));
        let q = db.row(7).to_vec();
        let hits = exhaustive_search(&db, &q, Metric::NegSquaredL2, 1);
        assert_eq!(hits[0].index, 7);
        assert!(hits[0].score.abs() < 1e-6);
    }

    #[test]
    fn rank_all_returns_permutation() {
        let (idx, _) = build_index(30);
        let q = [0.0f32; 6];
        let rank = adc_rank_all(&idx, &q);
        assert_eq!(rank.len(), idx.len());
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..idx.len()).collect::<Vec<_>>());
    }

    #[test]
    fn batch_search_consistent_with_single() {
        let (idx, _) = build_index(40);
        let queries = randn(4, 6, &mut rng(41));
        let batch = adc_search_batch(&idx, &queries, 5);
        for (i, single) in batch.iter().enumerate() {
            let expect = adc_search(&idx, queries.row(i), 5);
            assert_eq!(single.len(), expect.len());
            for (a, b) in single.iter().zip(&expect) {
                assert_eq!(a.index, b.index);
            }
        }
    }

    #[test]
    fn rerank_recovers_exact_results_with_full_shortlist() {
        let (idx, db) = build_index(70);
        let q = [0.2f32, -0.1, 0.4, 0.0, -0.3, 0.1];
        // shortlist = n degenerates to exact search.
        let reranked = adc_search_rerank(&idx, &db, &q, 5, idx.len());
        let exact = exhaustive_search(&db, &q, Metric::NegSquaredL2, 5);
        let ri: Vec<usize> = reranked.iter().map(|s| s.index).collect();
        let ei: Vec<usize> = exact.iter().map(|s| s.index).collect();
        assert_eq!(ri, ei);
        for (a, b) in reranked.iter().zip(&exact) {
            assert!((a.score - b.score).abs() < 1e-5);
        }
    }

    #[test]
    fn rerank_scores_are_exact_distances() {
        let (idx, db) = build_index(80);
        let q = [0.0f32, 0.5, -0.5, 0.2, 0.1, -0.2];
        let hits = adc_search_rerank(&idx, &db, &q, 3, 10);
        for h in hits {
            let exact = -lt_linalg::distance::squared_l2(&q, db.row(h.index));
            assert!((h.score - exact).abs() < 1e-5);
        }
    }

    #[test]
    fn rerank_recall_improves_with_shortlist_size() {
        // Recall@10 against exact search must be non-decreasing in the
        // shortlist size (on average; we check the endpoints).
        let (idx, db) = build_index(90);
        let queries = randn(8, 6, &mut rng(91)).scale(0.4);
        let recall = |shortlist: usize| -> f64 {
            let mut hits = 0usize;
            for qi in 0..queries.rows() {
                let q = queries.row(qi);
                let exact: Vec<usize> = exhaustive_search(&db, q, Metric::NegSquaredL2, 10)
                    .into_iter()
                    .map(|s| s.index)
                    .collect();
                let got = adc_search_rerank(&idx, &db, q, 10, shortlist);
                hits += got.iter().filter(|s| exact.contains(&s.index)).count();
            }
            hits as f64 / (queries.rows() * 10) as f64
        };
        let small = recall(10);
        let large = recall(idx.len());
        assert!((large - 1.0).abs() < 1e-9, "full shortlist must be exact");
        assert!(small <= large + 1e-9);
    }

    #[test]
    #[allow(deprecated)]
    fn parallel_batch_matches_sequential() {
        let (idx, _) = build_index(60);
        let queries = randn(9, 6, &mut rng(61));
        let seq = {
            let _serial = lt_runtime::scoped_threads(1);
            adc_search_batch(&idx, &queries, 7)
        };
        // 0 exercises the graceful "runtime default" fallback.
        for threads in [0usize, 1, 2, 4, 16] {
            let par = adc_search_batch_parallel(&idx, &queries, 7, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                let ai: Vec<usize> = a.iter().map(|s| s.index).collect();
                let bi: Vec<usize> = b.iter().map(|s| s.index).collect();
                assert_eq!(ai, bi, "threads={threads}");
            }
        }
    }

    #[test]
    fn k_truncates_results() {
        let (idx, _) = build_index(50);
        assert_eq!(adc_search(&idx, &[0.0; 6], 3).len(), 3);
        assert_eq!(adc_search(&idx, &[0.0; 6], 1000).len(), idx.len());
    }
}
