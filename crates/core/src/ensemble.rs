//! Model weight ensemble and DSQ fine-tuning (Section III-E, Algorithm 1).
//!
//! The paper trains `n` LightLT models "with different initialization",
//! averages their weights (Eqn. 23), and — because codewords are only
//! identified up to a permutation (Example 1), making a naive codebook
//! average meaningless — freezes the backbone and classifier and fine-tunes
//! the DSQ module so the averaged codebooks re-align.
//!
//! **Staging note.** Weight averaging is only meaningful when the averaged
//! models share a loss basin; the cited model-soups result averages models
//! fine-tuned *from the same pretrained weights*. The paper is in exactly
//! that regime: every base model starts from the same pretrained
//! ResNet34/BERT backbone and trains with a tiny learning rate (5e-5/1e-5),
//! so "different initializations" diversifies the quantization heads and
//! training stochasticity, not the basin. Our backbone is trained from
//! scratch, so we reproduce the paper's regime explicitly:
//!
//! 1. **Shared stage** — one full training run (stands in for the shared
//!    pretrained-and-fine-tuned weights).
//! 2. **Branch stage** — `n` copies, each with its quantization/classifier/
//!    prototype parameters perturbed by per-branch noise (the "different
//!    initializations") and trained further with a per-branch data order.
//! 3. **Average** (Eqn. 23) and **DSQ fine-tune** (Algorithm 1 line 8).
//!
//! **Fault tolerance.** [`train_ensemble_resumable`] checkpoints every
//! stage into its own file (`shared.ckpt`, `branch-<i>.ckpt`,
//! `finetune.ckpt`); rerunning it after an interruption skips completed
//! stages instantly and continues the interrupted one mid-run, yielding
//! the same weights an uninterrupted run would.

use std::path::Path;

use lt_data::Dataset;
use lt_linalg::random::rng;
use lt_tensor::ParamStore;
use rand_distr::{Distribution, Normal};

use crate::backbone::BACKBONE_PREFIX;
use crate::config::LightLtConfig;
use crate::dsq::DSQ_PREFIX;
use crate::fault::TrainError;
use crate::model::{LightLt, PROTO_PREFIX};
use crate::trainer::{train_with_options, CheckpointSpec, TrainHistory, TrainOptions};

/// Outcome of the full ensemble pipeline.
#[derive(Debug)]
pub struct EnsembleResult {
    /// The model structure (identical across base models).
    pub model: LightLt,
    /// Averaged-and-fine-tuned weights.
    pub store: ParamStore,
    /// Training history of the shared stage followed by each branch.
    pub base_histories: Vec<TrainHistory>,
    /// Fine-tuning history (empty when `ensemble_size == 1`).
    pub finetune_history: TrainHistory,
}

/// Adds Gaussian noise to every non-backbone parameter (the per-branch
/// "different initialization" of the quantization module and heads).
fn perturb_heads(store: &mut ParamStore, std: f32, seed: u64) {
    if std <= 0.0 {
        return;
    }
    let mut r = rng(seed);
    let dist = Normal::new(0.0f32, std).expect("valid std");
    for id in store.ids() {
        if store.get(id).name.starts_with(BACKBONE_PREFIX) {
            continue;
        }
        let p = store.get_mut(id);
        for v in p.value.as_mut_slice() {
            *v += dist.sample(&mut r);
        }
    }
}

/// Trains the full LightLT pipeline: shared stage → `n` perturbed branches
/// → weight average → DSQ fine-tune. With `ensemble_size == 1` this is
/// exactly one base model (the "LightLT w/o ensemble" rows of
/// Tables II/III).
///
/// # Errors
/// Fails on an invalid config, an empty training set, or when any stage's
/// NaN/divergence guards exhaust their retry budget.
pub fn train_ensemble(
    config: &LightLtConfig,
    train_set: &Dataset,
) -> Result<EnsembleResult, TrainError> {
    run_ensemble(config, train_set, None)
}

/// [`train_ensemble`] with per-stage checkpoints in `checkpoint_dir`.
///
/// Each stage writes its own checksummed checkpoint after every epoch
/// (`shared.ckpt`, `branch-<i>.ckpt`, `finetune.ckpt`). Calling this again
/// after a crash loads completed stages from disk, resumes the interrupted
/// stage mid-run, and produces the same weights as an uninterrupted call.
///
/// # Errors
/// Everything [`train_ensemble`] rejects, plus checkpoint I/O failures and
/// checkpoints written by a different configuration.
pub fn train_ensemble_resumable(
    config: &LightLtConfig,
    train_set: &Dataset,
    checkpoint_dir: &Path,
) -> Result<EnsembleResult, TrainError> {
    run_ensemble(config, train_set, Some(checkpoint_dir))
}

fn run_ensemble(
    config: &LightLtConfig,
    train_set: &Dataset,
    ckpt_dir: Option<&Path>,
) -> Result<EnsembleResult, TrainError> {
    config.validate()?;
    if train_set.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }
    // Pin the runtime width to the configured knob for the whole pipeline
    // (0 = keep the ambient resolution). Results never depend on it.
    let _threads = lt_runtime::scoped_threads(config.threads);
    let n = config.ensemble_size;
    let spec_for = |stage: &str| ckpt_dir.map(|dir| CheckpointSpec::new(dir, stage));

    // Shared stage (also the whole pipeline when n == 1).
    let (mut model, mut shared_store) = LightLt::new(config, 0);
    model.set_class_counts(&train_set.class_counts());
    let shared_history = train_with_options(
        &model,
        &mut shared_store,
        train_set,
        &TrainOptions {
            checkpoint: spec_for("shared"),
            resume: ckpt_dir.is_some(),
            ..TrainOptions::default()
        },
    )?;
    if n == 1 {
        return Ok(EnsembleResult {
            model,
            store: shared_store,
            base_histories: vec![shared_history],
            finetune_history: TrainHistory::default(),
        });
    }

    // Branch stage: n perturbed copies trained in parallel on the runtime
    // pool (one branch per chunk; each worker trains serially, so branch
    // results never depend on the thread count). Each branch checkpoints
    // under its own stage name, so a completed branch is loaded back
    // instantly on resume. Worker panics are captured per branch and
    // surfaced as a typed error instead of tearing down the process.
    let branch_outcomes = lt_runtime::try_parallel_map_chunks(n, 1, |range| {
        let i = range.start;
        let mut store = shared_store.clone();
        let mut branch_model = model.clone();
        let spec = spec_for(&format!("branch-{i}"));
        branch_model.seed_offset = i as u64 + 1;
        // Branch 0 keeps the shared weights unperturbed; later branches
        // get noisy head re-initializations. (On resume a loaded
        // checkpoint replaces the perturbed store wholesale, so this
        // stays deterministic either way.)
        if i > 0 {
            perturb_heads(
                &mut store,
                config.ensemble_perturb_std,
                config.seed.wrapping_add(1000 + i as u64),
            );
        }
        let resume = spec.is_some();
        let history = train_with_options(
            &branch_model,
            &mut store,
            train_set,
            &TrainOptions {
                epochs_override: Some(config.ensemble_branch_epochs),
                checkpoint: spec,
                resume,
                ..TrainOptions::default()
            },
        )?;
        Ok((store, history))
    });
    let mut branch_runs: Vec<(ParamStore, TrainHistory)> = Vec::with_capacity(n);
    for (branch, outcome) in branch_outcomes.into_iter().enumerate() {
        match outcome {
            Ok(Ok(run)) => branch_runs.push(run),
            Ok(Err(train_err)) => return Err(train_err),
            Err(panic) => {
                return Err(TrainError::BranchPanicked { branch, message: panic.message })
            }
        }
    }

    let mut base_histories = vec![shared_history];
    base_histories.extend(branch_runs.iter().map(|(_, h)| h.clone()));

    // Eqn. 23: average all branch weights.
    let stores: Vec<&ParamStore> = branch_runs.iter().map(|(s, _)| s).collect();
    let mut averaged = ParamStore::average(&stores);

    // Algorithm 1 line 8: freeze everything but DSQ, fine-tune to re-align
    // codebooks.
    model.set_class_counts(&train_set.class_counts());
    let mut trainable = averaged.ids_with_prefix(DSQ_PREFIX);
    if config.finetune_prototypes {
        trainable.extend(averaged.ids_with_prefix(PROTO_PREFIX));
    }
    let finetune_history = train_with_options(
        &model,
        &mut averaged,
        train_set,
        &TrainOptions {
            trainable: Some(&trainable),
            epochs_override: Some(config.finetune_epochs),
            checkpoint: spec_for("finetune"),
            resume: ckpt_dir.is_some(),
            ..TrainOptions::default()
        },
    )?;

    Ok(EnsembleResult { model, store: averaged, base_histories, finetune_history })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_data::synth::{generate_split, Domain, SynthConfig};

    fn tiny_split() -> lt_data::RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 8,
            pi1: 24,
            imbalance_factor: 6.0,
            n_query: 12,
            n_database: 40,
            domain: Domain::ImageLike,
            intra_class_std: None,
            seed: 21,
        })
    }

    fn tiny_config(n: usize) -> LightLtConfig {
        LightLtConfig {
            input_dim: 8,
            backbone_hidden: 12,
            embed_dim: 6,
            num_classes: 4,
            num_codebooks: 2,
            num_codewords: 8,
            ffn_hidden: 8,
            epochs: 3,
            batch_size: 16,
            learning_rate: 5e-3,
            ensemble_size: n,
            ensemble_branch_epochs: 2,
            finetune_epochs: 2,
            seed: 31,
            ..Default::default()
        }
    }

    #[test]
    fn single_model_skips_finetune() {
        let split = tiny_split();
        let res = train_ensemble(&tiny_config(1), &split.train).unwrap();
        assert_eq!(res.base_histories.len(), 1);
        assert!(res.finetune_history.epochs.is_empty());
    }

    #[test]
    fn ensemble_averages_and_finetunes() {
        let split = tiny_split();
        let res = train_ensemble(&tiny_config(2), &split.train).unwrap();
        // Shared stage + 2 branches.
        assert_eq!(res.base_histories.len(), 3);
        assert_eq!(res.finetune_history.epochs.len(), 2);
        // The result store has the same schema as a fresh model.
        let (_, fresh) = LightLt::new(&tiny_config(2), 0);
        assert!(res.store.schema_matches(&fresh));
    }

    #[test]
    fn rejects_invalid_config() {
        let split = tiny_split();
        let cfg = LightLtConfig { num_codewords: 1, ..tiny_config(2) };
        assert!(matches!(
            train_ensemble(&cfg, &split.train),
            Err(TrainError::Config(_))
        ));
    }

    #[test]
    fn perturb_leaves_backbone_untouched() {
        let (_, mut store) = LightLt::new(&tiny_config(2), 0);
        let backbone_id = store.id_of("backbone.0.weight").unwrap();
        let dsq_id = store.id_of("dsq.p.0").unwrap();
        let bb_before = store.value(backbone_id).clone();
        let dsq_before = store.value(dsq_id).clone();
        perturb_heads(&mut store, 0.05, 9);
        assert_eq!(store.value(backbone_id), &bb_before);
        assert_ne!(store.value(dsq_id), &dsq_before);
    }

    #[test]
    fn perturb_zero_std_is_noop() {
        let (_, mut store) = LightLt::new(&tiny_config(2), 0);
        let dsq_id = store.id_of("dsq.p.0").unwrap();
        let before = store.value(dsq_id).clone();
        perturb_heads(&mut store, 0.0, 9);
        assert_eq!(store.value(dsq_id), &before);
    }

    #[test]
    fn finetune_only_moves_dsq() {
        let split = tiny_split();
        let cfg = tiny_config(2);
        let res = train_ensemble(&cfg, &split.train).unwrap();
        // Rebuild the pre-finetune average to compare the frozen parts:
        // frozen parameters in the result must equal a plain average of the
        // branch stores. We can't easily reconstruct the branches here, but
        // the invariant "fine-tune moved DSQ while backbone matches the
        // classifier-frozen average" is covered by checking determinism of
        // the frozen parts across two identical runs plus movement of DSQ
        // relative to a run with zero fine-tune epochs.
        let cfg_no_ft = LightLtConfig { finetune_epochs: 0, ..cfg.clone() };
        let res_no_ft = train_ensemble(&cfg_no_ft, &split.train).unwrap();
        let bb = res.store.id_of("backbone.0.weight").unwrap();
        assert_eq!(
            res.store.value(bb),
            res_no_ft.store.value(bb),
            "backbone must be frozen during fine-tune"
        );
        let dsq = res.store.id_of("dsq.p.0").unwrap();
        assert_ne!(
            res.store.value(dsq),
            res_no_ft.store.value(dsq),
            "DSQ should have moved during fine-tune"
        );
    }

    #[test]
    fn ensemble_is_deterministic() {
        let split = tiny_split();
        let cfg = tiny_config(2);
        let a = train_ensemble(&cfg, &split.train).unwrap();
        let b = train_ensemble(&cfg, &split.train).unwrap();
        let id = a.store.id_of("dsq.p.0").unwrap();
        assert_eq!(a.store.value(id), b.store.value(id));
    }

    #[test]
    fn resumable_matches_plain_ensemble() {
        let split = tiny_split();
        let cfg = tiny_config(2);
        let dir = std::env::temp_dir()
            .join(format!("lightlt_ensemble_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let plain = train_ensemble(&cfg, &split.train).unwrap();
        let ckpt = train_ensemble_resumable(&cfg, &split.train, &dir).unwrap();
        // A rerun over the completed checkpoints is a fast no-op.
        let rerun = train_ensemble_resumable(&cfg, &split.train, &dir).unwrap();

        for (id, p) in plain.store.iter() {
            assert_eq!(p.value, *ckpt.store.value(id), "checkpointed run diverged: {}", p.name);
            assert_eq!(p.value, *rerun.store.value(id), "rerun diverged: {}", p.name);
        }
        assert_eq!(plain.finetune_history, ckpt.finetune_history);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
