//! Training loop for a single LightLT base model (Algorithm 1, lines 2–6).

use lt_data::{BatchIter, Dataset};
use lt_tensor::optim::{AdamW, Optimizer};
use lt_tensor::{LrSchedule, ParamId, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{LightLtConfig, ScheduleKind};
use crate::model::LightLt;

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean total loss over the epoch's batches.
    pub loss: f32,
    /// Mean cross-entropy component.
    pub ce: f32,
    /// Mean center-loss component.
    pub center: f32,
    /// Mean ranking-loss component.
    pub ranking: f32,
    /// Learning rate at the end of the epoch.
    pub lr: f32,
}

/// Full training history of one run.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainHistory {
    /// Final-epoch loss (infinity when untrained).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::INFINITY, |e| e.loss)
    }
}

/// Builds the LR schedule implied by the config for a run of `total_steps`.
pub fn build_schedule(config: &LightLtConfig, total_steps: usize) -> LrSchedule {
    let warmup = ((total_steps as f32 * config.warmup_fraction).round() as usize)
        .min(total_steps.saturating_sub(1));
    match config.schedule {
        ScheduleKind::Constant => LrSchedule::Constant { lr: config.learning_rate },
        ScheduleKind::Cosine => LrSchedule::CosineAnnealing {
            lr: config.learning_rate,
            min_lr: config.learning_rate * 0.01,
            warmup_steps: warmup,
            total_steps,
        },
        ScheduleKind::Linear => LrSchedule::LinearWithWarmup {
            lr: config.learning_rate,
            warmup_steps: warmup,
            total_steps,
        },
    }
}

/// Trains `model`'s parameters in `store` on the long-tail training set.
///
/// `trainable` restricts updates to a parameter subset (`None` = all); this
/// is how the ensemble fine-tuning stage trains DSQ only. `epochs_override`
/// lets the fine-tuning stage run fewer epochs than `config.epochs`.
pub fn train(
    model: &LightLt,
    store: &mut ParamStore,
    train_set: &Dataset,
    trainable: Option<&[ParamId]>,
    epochs_override: Option<usize>,
) -> TrainHistory {
    let config = &model.config;
    let epochs = epochs_override.unwrap_or(config.epochs);
    let steps_per_epoch = train_set.len().div_ceil(config.batch_size).max(1);
    let total_steps = (epochs * steps_per_epoch).max(1);
    let schedule = build_schedule(config, total_steps);

    let mut opt = AdamW::new(config.learning_rate);
    // The codebook-skip parameters (gates + FFN) stay frozen for the first
    // `skip_warmup_fraction` of steps; see `LightLtConfig` docs.
    let skip_warmup_steps =
        (total_steps as f32 * config.skip_warmup_fraction.clamp(0.0, 1.0)).round() as usize;
    let is_skip_param =
        |store: &ParamStore, id: ParamId| -> bool {
            let name = &store.get(id).name;
            name.starts_with("dsq.gate.") || name.starts_with("dsq.ffn.")
        };
    let all_ids: Vec<ParamId> = match trainable {
        Some(ids) => ids.to_vec(),
        None => store.ids(),
    };
    let warmup_ids: Vec<ParamId> =
        all_ids.iter().copied().filter(|&id| !is_skip_param(store, id)).collect();
    // Data order varies per ensemble base model (the paper's stochastic
    // diversity between base runs).
    let mut data_rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(7)
            .wrapping_add(model.seed_offset.wrapping_mul(0x5851_F42D)),
    );
    let mut history = TrainHistory::default();
    let mut step = 0usize;

    for epoch in 0..epochs {
        let mut sums = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let mut batches = 0usize;
        for batch in BatchIter::new(train_set, config.batch_size, &mut data_rng) {
            store.zero_grads();
            let (breakdown, _) = model.loss_on_batch(store, &batch.features, &batch.labels);

            if config.grad_clip > 0.0 {
                let norm = store.grad_norm();
                if norm > config.grad_clip {
                    store.scale_grads(config.grad_clip / norm);
                }
            }

            opt.set_lr(schedule.at(step));
            if step < skip_warmup_steps {
                opt.step_subset(store, &warmup_ids);
            } else {
                opt.step_subset(store, &all_ids);
            }
            step += 1;
            sums.0 += breakdown.total;
            sums.1 += breakdown.ce;
            sums.2 += breakdown.center;
            sums.3 += breakdown.ranking;
            batches += 1;
        }
        let inv = 1.0 / batches.max(1) as f32;
        history.epochs.push(EpochStats {
            epoch,
            loss: sums.0 * inv,
            ce: sums.1 * inv,
            center: sums.2 * inv,
            ranking: sums.3 * inv,
            lr: schedule.at(step.saturating_sub(1)),
        });
    }
    history
}

/// Convenience: construct, configure class weights, and train one base
/// model with the given seed offset. Returns the model, its weights, and
/// the history.
pub fn train_base_model(
    config: &LightLtConfig,
    train_set: &Dataset,
    seed_offset: u64,
) -> (LightLt, ParamStore, TrainHistory) {
    let (mut model, mut store) = LightLt::new(config, seed_offset);
    model.set_class_counts(&train_set.class_counts());
    let history = train(&model, &mut store, train_set, None, None);
    (model, store, history)
}

/// Grid-searches the loss weight α on a validation split, the paper's
/// Section V-A4 protocol ("we tune the hyper-parameter α with grid search
/// on the validation set").
///
/// A holdout slice of the training set serves as the validation query set;
/// the remaining slice is both the training data and the search database.
/// Returns the candidate with the highest validation MAP (ties go to the
/// earlier candidate).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn tune_alpha(
    config: &LightLtConfig,
    train_set: &lt_data::Dataset,
    candidates: &[f32],
) -> f32 {
    assert!(!candidates.is_empty(), "need at least one alpha candidate");
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xA1FA));
    let (fit_set, holdout) = lt_data::split::train_holdout_split(train_set, 0.15, &mut rng);

    let mut best = candidates[0];
    let mut best_map = f64::NEG_INFINITY;
    for &alpha in candidates {
        let candidate_config = LightLtConfig { alpha, ensemble_size: 1, ..config.clone() };
        let (model, store, _) = train_base_model(&candidate_config, &fit_set, 0);
        let db_emb = model.embed(&store, &fit_set.features);
        let q_emb = model.embed(&store, &holdout.features);
        let index = crate::index::QuantizedIndex::build(&model.dsq, &store, &db_emb);
        let rankings: Vec<Vec<usize>> = (0..q_emb.rows())
            .map(|i| crate::search::adc_rank_all(&index, q_emb.row(i)))
            .collect();
        let map = lt_eval::mean_average_precision(&rankings, &holdout.labels, &fit_set.labels);
        if map > best_map {
            best_map = map;
            best = alpha;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_data::synth::{generate_split, Domain, SynthConfig};

    fn tiny_split() -> lt_data::RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 8,
            pi1: 30,
            imbalance_factor: 6.0,
            n_query: 12,
            n_database: 60,
            domain: Domain::ImageLike,
            intra_class_std: None,
            seed: 11,
        })
    }

    fn tiny_config() -> LightLtConfig {
        LightLtConfig {
            input_dim: 8,
            backbone_hidden: 16,
            embed_dim: 6,
            num_classes: 4,
            num_codebooks: 2,
            num_codewords: 8,
            ffn_hidden: 8,
            epochs: 6,
            batch_size: 16,
            learning_rate: 5e-3,
            ensemble_size: 1,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let split = tiny_split();
        let (_, _, history) = train_base_model(&tiny_config(), &split.train, 0);
        assert_eq!(history.epochs.len(), 6);
        let first = history.epochs.first().unwrap().loss;
        let last = history.final_loss();
        assert!(last < first, "loss did not improve: {first} → {last}");
    }

    #[test]
    fn training_is_deterministic() {
        let split = tiny_split();
        let (_, s1, h1) = train_base_model(&tiny_config(), &split.train, 0);
        let (_, s2, h2) = train_base_model(&tiny_config(), &split.train, 0);
        assert_eq!(h1.final_loss(), h2.final_loss());
        let id = s1.id_of("dsq.p.0").unwrap();
        assert_eq!(s1.value(id), s2.value(id));
    }

    #[test]
    fn subset_training_freezes_backbone() {
        let split = tiny_split();
        let cfg = tiny_config();
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let backbone_id = store.id_of("backbone.0.weight").unwrap();
        let before = store.value(backbone_id).clone();
        let dsq_ids = store.ids_with_prefix("dsq.");
        let _ = train(&model, &mut store, &split.train, Some(&dsq_ids), Some(2));
        assert_eq!(store.value(backbone_id), &before, "frozen backbone moved");
        // DSQ did move.
        let p0 = store.id_of("dsq.p.0").unwrap();
        let (_, fresh) = LightLt::new(&cfg, 0);
        assert_ne!(store.value(p0), fresh.value(p0));
    }

    #[test]
    fn tune_alpha_returns_a_candidate() {
        let split = tiny_split();
        let mut cfg = tiny_config();
        cfg.epochs = 2;
        let best = tune_alpha(&cfg, &split.train, &[0.0, 0.01, 0.1]);
        assert!([0.0, 0.01, 0.1].contains(&best));
    }

    #[test]
    #[should_panic(expected = "at least one alpha candidate")]
    fn tune_alpha_rejects_empty_grid() {
        let split = tiny_split();
        let _ = tune_alpha(&tiny_config(), &split.train, &[]);
    }

    #[test]
    fn schedule_built_per_kind() {
        let mut cfg = tiny_config();
        cfg.schedule = ScheduleKind::Constant;
        assert!(matches!(build_schedule(&cfg, 100), LrSchedule::Constant { .. }));
        cfg.schedule = ScheduleKind::Cosine;
        assert!(matches!(build_schedule(&cfg, 100), LrSchedule::CosineAnnealing { .. }));
        cfg.schedule = ScheduleKind::Linear;
        assert!(matches!(build_schedule(&cfg, 100), LrSchedule::LinearWithWarmup { .. }));
    }
}
