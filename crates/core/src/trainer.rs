//! Training loop for a single LightLT base model (Algorithm 1, lines 2–6),
//! hardened for long runs.
//!
//! Every step is guarded: a non-finite loss, a non-finite gradient norm, or
//! a loss exceeding `divergence_factor ×` the best seen trips a rollback to
//! the epoch-start snapshot (weights *and* AdamW moments), backs the
//! learning rate off, reshuffles the data order, and retries — up to
//! [`FaultPolicy::max_retries`](crate::config::FaultPolicy) times before the
//! run fails with a typed [`TrainError`]. Training is therefore fallible:
//! every entry point returns `Result`.
//!
//! Runs can also be made restartable: [`train_resumable`] writes a
//! checksummed [`Checkpoint`] after each epoch, and [`resume`] continues an
//! interrupted run so that the final weights are bit-for-bit identical to
//! an uninterrupted run (the `kill_and_resume` integration tests pin this).

use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use lt_data::{BatchIter, Dataset};
use lt_tensor::optim::{AdamW, Optimizer};
use lt_tensor::{LrSchedule, ParamId, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{checkpoint_path, Checkpoint, CheckpointError, CHECKPOINT_VERSION};
use crate::config::{LightLtConfig, ScheduleKind};
use crate::fault::{FaultPlan, GuardTrip, TrainError};
use crate::model::LightLt;

/// Trainer instrumentation handles (global lt-obs registry). Metric
/// recording is a no-op when observability is disabled; `train_step`
/// events additionally require an installed event sink.
struct TrainObs {
    steps: Arc<lt_obs::Counter>,
    rollbacks: Arc<lt_obs::Counter>,
    step_us: Arc<lt_obs::Histogram>,
    checkpoint_us: Arc<lt_obs::Histogram>,
}

fn train_obs() -> &'static TrainObs {
    static OBS: OnceLock<TrainObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = lt_obs::Registry::global();
        TrainObs {
            steps: reg.counter("train.steps"),
            rollbacks: reg.counter("train.rollbacks"),
            step_us: reg.histogram("train.step_us"),
            checkpoint_us: reg.histogram("train.checkpoint_us"),
        }
    })
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean total loss over the epoch's batches.
    pub loss: f32,
    /// Mean cross-entropy component.
    pub ce: f32,
    /// Mean center-loss component.
    pub center: f32,
    /// Mean ranking-loss component.
    pub ranking: f32,
    /// Learning rate at the end of the epoch.
    pub lr: f32,
}

/// Full training history of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainHistory {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainHistory {
    /// Final-epoch loss (infinity when untrained).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::INFINITY, |e| e.loss)
    }
}

/// Builds the LR schedule implied by the config for a run of `total_steps`.
pub fn build_schedule(config: &LightLtConfig, total_steps: usize) -> LrSchedule {
    let warmup = ((total_steps as f32 * config.warmup_fraction).round() as usize)
        .min(total_steps.saturating_sub(1));
    match config.schedule {
        ScheduleKind::Constant => LrSchedule::Constant { lr: config.learning_rate },
        ScheduleKind::Cosine => LrSchedule::CosineAnnealing {
            lr: config.learning_rate,
            min_lr: config.learning_rate * 0.01,
            warmup_steps: warmup,
            total_steps,
        },
        ScheduleKind::Linear => LrSchedule::LinearWithWarmup {
            lr: config.learning_rate,
            warmup_steps: warmup,
            total_steps,
        },
    }
}

/// Where (and how often) a training run writes its checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory the stage checkpoint lives in (created on first write).
    pub dir: std::path::PathBuf,
    /// Stage label; also the checkpoint file stem (`<stage>.ckpt`).
    pub stage: String,
    /// Write a checkpoint every this many epochs (the final epoch is
    /// always checkpointed); clamped to at least 1.
    pub every_epochs: usize,
}

impl CheckpointSpec {
    /// Checkpoint every epoch into `dir/<stage>.ckpt`.
    pub fn new(dir: impl Into<std::path::PathBuf>, stage: impl Into<String>) -> Self {
        Self { dir: dir.into(), stage: stage.into(), every_epochs: 1 }
    }

    fn path(&self) -> std::path::PathBuf {
        checkpoint_path(&self.dir, &self.stage)
    }
}

/// Options for [`train_with_options`]; `Default` reproduces plain
/// [`train`] over all parameters with no checkpointing or fault injection.
#[derive(Debug, Clone, Default)]
pub struct TrainOptions<'a> {
    /// Restrict updates to a parameter subset (`None` = all) — how the
    /// ensemble fine-tuning stage trains DSQ only.
    pub trainable: Option<&'a [ParamId]>,
    /// Train fewer/more epochs than `config.epochs`.
    pub epochs_override: Option<usize>,
    /// Write checkpoints when set.
    pub checkpoint: Option<CheckpointSpec>,
    /// Continue from an existing checkpoint if one is present (requires
    /// `checkpoint`); a mismatched checkpoint is an error, a missing one a
    /// fresh start.
    pub resume: bool,
    /// Deterministic fault injection (tests only; default injects nothing).
    pub fault_plan: FaultPlan,
}

/// The seed of the epoch-shuffle RNG stream — data order varies per
/// ensemble base model (the paper's stochastic diversity between runs).
fn data_seed(config: &LightLtConfig, seed_offset: u64) -> u64 {
    config
        .seed
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(7)
        .wrapping_add(seed_offset.wrapping_mul(0x5851_F42D))
}

/// Mutable bookkeeping of a run, mirrored 1:1 by the checkpoint format.
struct RunState {
    next_epoch: usize,
    step: usize,
    shuffles: u64,
    lr_scale: f32,
    retries: usize,
    best_loss: f32,
    history: TrainHistory,
}

/// Immutable per-run context shared by every epoch.
struct RunCtx<'a> {
    config: &'a LightLtConfig,
    schedule: LrSchedule,
    all_ids: Vec<ParamId>,
    warmup_ids: Vec<ParamId>,
    skip_warmup_steps: usize,
    steps_per_epoch: usize,
}

/// Trains `model`'s parameters in `store` on the long-tail training set.
///
/// `trainable` restricts updates to a parameter subset (`None` = all); this
/// is how the ensemble fine-tuning stage trains DSQ only. `epochs_override`
/// lets the fine-tuning stage run fewer epochs than `config.epochs`.
///
/// # Errors
/// Fails on an invalid config, an empty training set, or when the
/// NaN/divergence guards exhaust their retry budget.
pub fn train(
    model: &LightLt,
    store: &mut ParamStore,
    train_set: &Dataset,
    trainable: Option<&[ParamId]>,
    epochs_override: Option<usize>,
) -> Result<TrainHistory, TrainError> {
    train_with_options(
        model,
        store,
        train_set,
        &TrainOptions { trainable, epochs_override, ..TrainOptions::default() },
    )
}

/// [`train`] with checkpointing and resumption: writes `model.ckpt` into
/// `checkpoint_dir` after every epoch and continues from it when one from
/// the same run is already there (so calling this again after a crash — or
/// via [`resume`] — picks up where the run left off).
///
/// # Errors
/// Everything [`train`] rejects, plus checkpoint I/O and mismatched
/// existing checkpoints.
pub fn train_resumable(
    model: &LightLt,
    store: &mut ParamStore,
    train_set: &Dataset,
    checkpoint_dir: &Path,
) -> Result<TrainHistory, TrainError> {
    train_with_options(
        model,
        store,
        train_set,
        &TrainOptions {
            checkpoint: Some(CheckpointSpec::new(checkpoint_dir, "model")),
            resume: true,
            ..TrainOptions::default()
        },
    )
}

/// Continues an interrupted [`train_resumable`] run from its checkpoint,
/// reconstructing the model from the checkpointed config. The resumed run
/// finishes with weights bit-for-bit identical to an uninterrupted run.
///
/// # Errors
/// Fails when the checkpoint is missing/corrupt, its config is invalid, or
/// its weights do not match the architecture the config describes.
pub fn resume(
    train_set: &Dataset,
    checkpoint_dir: &Path,
) -> Result<(LightLt, ParamStore, TrainHistory), TrainError> {
    let ck = Checkpoint::load(&checkpoint_path(checkpoint_dir, "model"))?;
    ck.config.validate()?;
    let (mut model, mut store) = LightLt::new(&ck.config, ck.seed_offset);
    if !store.schema_matches(&ck.store) {
        return Err(CheckpointError::Mismatch(
            "checkpointed weights do not match the architecture its config describes".into(),
        )
        .into());
    }
    model.set_class_counts(&train_set.class_counts());
    let history = train_resumable(&model, &mut store, train_set, checkpoint_dir)?;
    Ok((model, store, history))
}

/// The fully-optioned training entry point all others delegate to.
///
/// # Errors
/// See [`TrainError`]; with `resume` set, also every checkpoint reject.
pub fn train_with_options(
    model: &LightLt,
    store: &mut ParamStore,
    train_set: &Dataset,
    opts: &TrainOptions<'_>,
) -> Result<TrainHistory, TrainError> {
    let config = &model.config;
    config.validate()?;
    if train_set.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }
    // Pin the runtime width to the configured knob for the whole run
    // (0 = keep the ambient resolution). Every parallel kernel underneath
    // is bitwise deterministic in the thread count, so this affects wall
    // clock only — never the trained weights.
    let _threads = lt_runtime::scoped_threads(config.threads);

    let epochs = opts.epochs_override.unwrap_or(config.epochs);
    let steps_per_epoch = train_set.len().div_ceil(config.batch_size).max(1);
    let total_steps = (epochs * steps_per_epoch).max(1);
    // The codebook-skip parameters (gates + FFN) stay frozen for the first
    // `skip_warmup_fraction` of steps; see `LightLtConfig` docs.
    let skip_warmup_steps =
        (total_steps as f32 * config.skip_warmup_fraction.clamp(0.0, 1.0)).round() as usize;
    let is_skip_param = |store: &ParamStore, id: ParamId| -> bool {
        let name = &store.get(id).name;
        name.starts_with("dsq.gate.") || name.starts_with("dsq.ffn.")
    };
    let all_ids: Vec<ParamId> = match opts.trainable {
        Some(ids) => ids.to_vec(),
        None => store.ids(),
    };
    let warmup_ids: Vec<ParamId> =
        all_ids.iter().copied().filter(|&id| !is_skip_param(store, id)).collect();
    let ctx = RunCtx {
        config,
        schedule: build_schedule(config, total_steps),
        all_ids,
        warmup_ids,
        skip_warmup_steps,
        steps_per_epoch,
    };

    let mut opt = AdamW::new(config.learning_rate);
    let mut state = RunState {
        next_epoch: 0,
        step: 0,
        shuffles: 0,
        lr_scale: 1.0,
        retries: 0,
        best_loss: f32::INFINITY,
        history: TrainHistory::default(),
    };

    if opts.resume {
        if let Some(spec) = &opts.checkpoint {
            let path = spec.path();
            if path.exists() {
                let ck = Checkpoint::load(&path)?;
                verify_resume(&ck, model, store, spec, epochs)?;
                *store = ck.store;
                opt = ck.optimizer;
                state = RunState {
                    next_epoch: ck.next_epoch,
                    step: ck.step,
                    shuffles: ck.shuffles_drawn,
                    lr_scale: ck.lr_scale,
                    retries: ck.retries_used,
                    best_loss: ck.best_loss.unwrap_or(f32::INFINITY),
                    history: ck.history,
                };
            }
        }
    }
    if state.next_epoch >= epochs {
        return Ok(state.history);
    }

    // Restore the data-RNG state: the stream is a pure function of the
    // seed, so replaying the checkpointed number of epoch shuffles lands
    // the generator exactly where the interrupted run left it.
    let mut data_rng = StdRng::seed_from_u64(data_seed(config, model.seed_offset));
    for _ in 0..state.shuffles {
        let _ = BatchIter::new(train_set, config.batch_size, &mut data_rng);
    }

    let mut plan = opts.fault_plan.clone();
    while state.next_epoch < epochs {
        let epoch = state.next_epoch;
        // Last-good snapshot the guards roll back to: weights, moments,
        // and schedule position as of the top of the epoch.
        let snap_store = store.clone();
        let snap_opt = opt.clone();
        let snap_step = state.step;

        state.shuffles += 1;
        let outcome = run_epoch(
            &ctx,
            model,
            store,
            &mut opt,
            train_set,
            &mut data_rng,
            epoch,
            &mut state.step,
            state.lr_scale,
            &mut state.best_loss,
            &mut plan,
        );
        match outcome {
            Ok(stats) => {
                state.history.epochs.push(stats);
                state.next_epoch += 1;
                if let Some(spec) = &opts.checkpoint {
                    let due = state.next_epoch == epochs
                        || state.next_epoch % spec.every_epochs.max(1) == 0;
                    if due {
                        let ck_t0 = (lt_obs::enabled() || lt_obs::events_enabled())
                            .then(Instant::now);
                        write_checkpoint(spec, model, store, &opt, &state, epochs)?;
                        let micros = ck_t0.map_or(0, lt_obs::micros_since);
                        train_obs().checkpoint_us.record(micros);
                        lt_obs::emit(&lt_obs::Event::Checkpoint {
                            step: state.step as u64,
                            micros,
                        });
                    }
                }
                if plan.should_kill(epoch) {
                    return Err(TrainError::SimulatedKill { epoch });
                }
            }
            Err(trip) => {
                if state.retries >= config.fault.max_retries {
                    return Err(TrainError::RetriesExhausted {
                        retries: state.retries,
                        step: state.step,
                        reason: trip,
                    });
                }
                state.retries += 1;
                train_obs().rollbacks.inc();
                if lt_obs::events_enabled() {
                    lt_obs::emit(&lt_obs::Event::FaultRetry {
                        epoch: epoch as u64,
                        retry: state.retries as u64,
                        reason: &trip.to_string(),
                    });
                    lt_obs::emit(&lt_obs::Event::Rollback { epoch: epoch as u64 });
                }
                // Roll back to the last-good state; the next attempt sees a
                // reduced LR and a freshly-drawn data order.
                *store = snap_store;
                opt = snap_opt;
                state.step = snap_step;
                state.lr_scale *= config.fault.lr_backoff;
            }
        }
    }
    debug_assert!(store.all_finite(), "guards let a non-finite weight through");
    Ok(state.history)
}

/// One epoch over freshly shuffled batches; stops at the first tripped
/// guard without touching the history.
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    ctx: &RunCtx<'_>,
    model: &LightLt,
    store: &mut ParamStore,
    opt: &mut AdamW,
    train_set: &Dataset,
    data_rng: &mut StdRng,
    epoch: usize,
    step: &mut usize,
    lr_scale: f32,
    best_loss: &mut f32,
    plan: &mut FaultPlan,
) -> Result<EpochStats, GuardTrip> {
    let config = ctx.config;
    let mut sums = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut batches = 0usize;
    for batch in BatchIter::new(train_set, config.batch_size, data_rng) {
        let step_t0 = lt_obs::enabled().then(Instant::now);
        store.zero_grads();
        let (breakdown, _) = model.loss_on_batch(store, &batch.features, &batch.labels);
        if plan.take_nan(*step) {
            // Fault injection: poison one gradient entry. The guard below
            // must catch it before it can reach the parameter store.
            let id = ctx.all_ids[0];
            store.get_mut(id).grad.as_mut_slice()[0] = f32::NAN;
        }

        if !breakdown.total.is_finite() {
            return Err(GuardTrip::NonFiniteLoss);
        }
        let norm = store.grad_norm();
        if !norm.is_finite() {
            return Err(GuardTrip::NonFiniteGradNorm);
        }
        // Divergence detector, after a one-epoch grace period: a batch loss
        // far above the best ever seen means the run has blown up even if
        // every value is still finite.
        if *step >= ctx.steps_per_epoch
            && best_loss.is_finite()
            && breakdown.total > config.fault.divergence_factor * best_loss.max(1e-3)
        {
            return Err(GuardTrip::Diverged { loss: breakdown.total, best: *best_loss });
        }
        *best_loss = best_loss.min(breakdown.total);

        if config.grad_clip > 0.0 && norm > config.grad_clip {
            store.scale_grads(config.grad_clip / norm);
        }
        let lr = ctx.schedule.at(*step) * lr_scale;
        opt.set_lr(lr);
        if *step < ctx.skip_warmup_steps {
            opt.step_subset(store, &ctx.warmup_ids);
        } else {
            opt.step_subset(store, &ctx.all_ids);
        }
        if let Some(t0) = step_t0 {
            let o = train_obs();
            o.steps.inc();
            o.step_us.record(lt_obs::micros_since(t0));
        }
        lt_obs::emit(&lt_obs::Event::TrainStep {
            step: *step as u64,
            loss: breakdown.total,
            grad_norm: norm,
            lr,
        });
        *step += 1;
        sums.0 += breakdown.total;
        sums.1 += breakdown.ce;
        sums.2 += breakdown.center;
        sums.3 += breakdown.ranking;
        batches += 1;
    }
    let inv = 1.0 / batches.max(1) as f32;
    Ok(EpochStats {
        epoch,
        loss: sums.0 * inv,
        ce: sums.1 * inv,
        center: sums.2 * inv,
        ranking: sums.3 * inv,
        lr: ctx.schedule.at(step.saturating_sub(1)) * lr_scale,
    })
}

fn write_checkpoint(
    spec: &CheckpointSpec,
    model: &LightLt,
    store: &ParamStore,
    opt: &AdamW,
    state: &RunState,
    target_epochs: usize,
) -> Result<(), CheckpointError> {
    let ck = Checkpoint {
        version: CHECKPOINT_VERSION,
        stage: spec.stage.clone(),
        config: model.config.clone(),
        seed_offset: model.seed_offset,
        next_epoch: state.next_epoch,
        target_epochs,
        step: state.step,
        shuffles_drawn: state.shuffles,
        lr_scale: state.lr_scale,
        retries_used: state.retries,
        best_loss: state.best_loss.is_finite().then_some(state.best_loss),
        history: state.history.clone(),
        store: store.clone(),
        optimizer: opt.clone(),
    };
    ck.save_atomic(&spec.path())
}

/// A checkpoint may only resume the run that wrote it.
fn verify_resume(
    ck: &Checkpoint,
    model: &LightLt,
    store: &ParamStore,
    spec: &CheckpointSpec,
    epochs: usize,
) -> Result<(), CheckpointError> {
    if ck.stage != spec.stage {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint stage `{}` but this run is stage `{}`",
            ck.stage, spec.stage
        )));
    }
    // The thread count changes speed, never results, so a checkpoint
    // written under one width may resume under any other.
    let comparable = LightLtConfig { threads: model.config.threads, ..ck.config.clone() };
    if comparable != model.config {
        return Err(CheckpointError::Mismatch(
            "training configuration differs from the checkpoint's; \
             delete the checkpoint directory to start over"
                .into(),
        ));
    }
    if ck.seed_offset != model.seed_offset {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint seed_offset {} but this run uses {}",
            ck.seed_offset, model.seed_offset
        )));
    }
    if ck.target_epochs != epochs {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint targets {} epochs but this run targets {epochs}",
            ck.target_epochs
        )));
    }
    if !ck.store.schema_matches(store) {
        return Err(CheckpointError::Mismatch(
            "checkpointed parameter schema does not match the model's".into(),
        ));
    }
    Ok(())
}

/// Convenience: construct, configure class weights, and train one base
/// model with the given seed offset. Returns the model, its weights, and
/// the history.
///
/// # Errors
/// Everything [`train`] rejects.
pub fn train_base_model(
    config: &LightLtConfig,
    train_set: &Dataset,
    seed_offset: u64,
) -> Result<(LightLt, ParamStore, TrainHistory), TrainError> {
    config.validate()?;
    if train_set.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }
    let (mut model, mut store) = LightLt::new(config, seed_offset);
    model.set_class_counts(&train_set.class_counts());
    let history = train(&model, &mut store, train_set, None, None)?;
    Ok((model, store, history))
}

/// Grid-searches the loss weight α on a validation split, the paper's
/// Section V-A4 protocol ("we tune the hyper-parameter α with grid search
/// on the validation set").
///
/// A holdout slice of the training set serves as the validation query set;
/// the remaining slice is both the training data and the search database.
/// Returns the candidate with the highest *finite* validation MAP (ties go
/// to the earlier candidate); candidates whose validation MAP comes back
/// NaN are skipped rather than silently winning a `>` comparison.
///
/// # Errors
/// Fails on an empty candidate grid, when every candidate's validation MAP
/// is non-finite, or when any candidate's training run fails.
pub fn tune_alpha(
    config: &LightLtConfig,
    train_set: &lt_data::Dataset,
    candidates: &[f32],
) -> Result<f32, TrainError> {
    if candidates.is_empty() {
        return Err(TrainError::NoAlphaCandidates);
    }
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xA1FA));
    let (fit_set, holdout) = lt_data::split::train_holdout_split(train_set, 0.15, &mut rng);

    let mut best: Option<(f32, f64)> = None;
    for &alpha in candidates {
        let candidate_config = LightLtConfig { alpha, ensemble_size: 1, ..config.clone() };
        let (model, store, _) = train_base_model(&candidate_config, &fit_set, 0)?;
        let db_emb = model.embed(&store, &fit_set.features);
        let q_emb = model.embed(&store, &holdout.features);
        let index = crate::index::QuantizedIndex::build(&model.dsq, &store, &db_emb);
        let rankings = crate::search::adc_rank_all_batch(&index, &q_emb);
        let map = lt_eval::mean_average_precision(&rankings, &holdout.labels, &fit_set.labels);
        if !map.is_finite() {
            continue;
        }
        match best {
            Some((_, best_map)) if map <= best_map => {}
            _ => best = Some((alpha, map)),
        }
    }
    best.map(|(alpha, _)| alpha).ok_or(TrainError::NonFiniteValidationMap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_data::synth::{generate_split, Domain, SynthConfig};
    use lt_linalg::Matrix;

    fn tiny_split() -> lt_data::RetrievalSplit {
        generate_split(&SynthConfig {
            num_classes: 4,
            dim: 8,
            pi1: 30,
            imbalance_factor: 6.0,
            n_query: 12,
            n_database: 60,
            domain: Domain::ImageLike,
            intra_class_std: None,
            seed: 11,
        })
    }

    fn tiny_config() -> LightLtConfig {
        LightLtConfig {
            input_dim: 8,
            backbone_hidden: 16,
            embed_dim: 6,
            num_classes: 4,
            num_codebooks: 2,
            num_codewords: 8,
            ffn_hidden: 8,
            epochs: 6,
            batch_size: 16,
            learning_rate: 5e-3,
            ensemble_size: 1,
            seed: 5,
            ..Default::default()
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("lightlt_trainer_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn training_reduces_loss() {
        let split = tiny_split();
        let (_, _, history) = train_base_model(&tiny_config(), &split.train, 0).unwrap();
        assert_eq!(history.epochs.len(), 6);
        let first = history.epochs.first().unwrap().loss;
        let last = history.final_loss();
        assert!(last < first, "loss did not improve: {first} → {last}");
    }

    #[test]
    fn training_is_deterministic() {
        let split = tiny_split();
        let (_, s1, h1) = train_base_model(&tiny_config(), &split.train, 0).unwrap();
        let (_, s2, h2) = train_base_model(&tiny_config(), &split.train, 0).unwrap();
        assert_eq!(h1.final_loss(), h2.final_loss());
        let id = s1.id_of("dsq.p.0").unwrap();
        assert_eq!(s1.value(id), s2.value(id));
    }

    #[test]
    fn subset_training_freezes_backbone() {
        let split = tiny_split();
        let cfg = tiny_config();
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let backbone_id = store.id_of("backbone.0.weight").unwrap();
        let before = store.value(backbone_id).clone();
        let dsq_ids = store.ids_with_prefix("dsq.");
        train(&model, &mut store, &split.train, Some(&dsq_ids), Some(2)).unwrap();
        assert_eq!(store.value(backbone_id), &before, "frozen backbone moved");
        // DSQ did move.
        let p0 = store.id_of("dsq.p.0").unwrap();
        let (_, fresh) = LightLt::new(&cfg, 0);
        assert_ne!(store.value(p0), fresh.value(p0));
    }

    #[test]
    fn empty_training_set_rejected() {
        let cfg = tiny_config();
        let empty = Dataset::new(Matrix::zeros(0, cfg.input_dim), vec![], cfg.num_classes);
        assert!(matches!(
            train_base_model(&cfg, &empty, 0),
            Err(TrainError::EmptyTrainingSet)
        ));
        let (model, mut store) = LightLt::new(&cfg, 0);
        assert!(matches!(
            train(&model, &mut store, &empty, None, None),
            Err(TrainError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn invalid_config_rejected_before_training() {
        let split = tiny_split();
        let cfg = LightLtConfig { num_codebooks: 0, ..tiny_config() };
        assert!(matches!(
            train_base_model(&cfg, &split.train, 0),
            Err(TrainError::Config(_))
        ));
    }

    #[test]
    fn nan_injection_recovers_to_finite_weights() {
        let split = tiny_split();
        let cfg = tiny_config();
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let opts = TrainOptions {
            fault_plan: FaultPlan::none().nan_at_step(5),
            ..TrainOptions::default()
        };
        let history = train_with_options(&model, &mut store, &split.train, &opts).unwrap();
        assert_eq!(history.epochs.len(), cfg.epochs);
        assert!(history.final_loss().is_finite());
        assert!(store.all_finite(), "NaN leaked into the parameter store");
    }

    #[test]
    fn retries_exhausted_is_reported() {
        let split = tiny_split();
        let mut cfg = tiny_config();
        cfg.fault.max_retries = 1;
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        // Step 0 is re-poisoned on the retry, exhausting the budget of 1.
        let opts = TrainOptions {
            fault_plan: FaultPlan::none().nan_at_step(0).nan_at_step(0),
            ..TrainOptions::default()
        };
        match train_with_options(&model, &mut store, &split.train, &opts) {
            Err(TrainError::RetriesExhausted { retries, reason, .. }) => {
                assert_eq!(retries, 1);
                assert!(matches!(reason, GuardTrip::NonFiniteGradNorm));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn checkpointing_does_not_change_the_math() {
        let split = tiny_split();
        let cfg = tiny_config();
        let dir = tmpdir("nochange");
        let (_, plain_store, plain_hist) = train_base_model(&cfg, &split.train, 0).unwrap();

        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let hist = train_resumable(&model, &mut store, &split.train, &dir).unwrap();

        assert_eq!(hist, plain_hist);
        let id = store.id_of("dsq.p.0").unwrap();
        assert_eq!(store.value(id), plain_store.value(id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_run_resumes_as_noop() {
        let split = tiny_split();
        let cfg = tiny_config();
        let dir = tmpdir("noop");
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let first = train_resumable(&model, &mut store, &split.train, &dir).unwrap();

        // A second call resumes the finished checkpoint and trains nothing.
        let (mut model2, mut store2) = LightLt::new(&cfg, 0);
        model2.set_class_counts(&split.train.class_counts());
        let second = train_resumable(&model2, &mut store2, &split.train, &dir).unwrap();
        assert_eq!(first, second);
        let id = store.id_of("dsq.p.0").unwrap();
        assert_eq!(store.value(id), store2.value(id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let split = tiny_split();
        let cfg = tiny_config();
        let dir = tmpdir("mismatch");
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        train_resumable(&model, &mut store, &split.train, &dir).unwrap();

        let other = LightLtConfig { learning_rate: 1e-3, ..cfg };
        let (mut model2, mut store2) = LightLt::new(&other, 0);
        model2.set_class_counts(&split.train.class_counts());
        match train_resumable(&model2, &mut store2, &split.train, &dir) {
            Err(TrainError::Checkpoint(CheckpointError::Mismatch(_))) => {}
            other => panic!("expected checkpoint mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_accepts_different_thread_count() {
        // The `threads` knob is speed-only, so a checkpoint written under
        // one width must resume cleanly under another.
        let split = tiny_split();
        let cfg = LightLtConfig { threads: 1, ..tiny_config() };
        let dir = tmpdir("threads");
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&split.train.class_counts());
        let first = train_resumable(&model, &mut store, &split.train, &dir).unwrap();

        let cfg2 = LightLtConfig { threads: 4, ..cfg };
        let (mut model2, mut store2) = LightLt::new(&cfg2, 0);
        model2.set_class_counts(&split.train.class_counts());
        let second = train_resumable(&model2, &mut store2, &split.train, &dir).unwrap();
        assert_eq!(first, second);
        let id = store.id_of("dsq.p.0").unwrap();
        assert_eq!(store.value(id), store2.value(id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tune_alpha_returns_a_candidate() {
        let split = tiny_split();
        let mut cfg = tiny_config();
        cfg.epochs = 2;
        let best = tune_alpha(&cfg, &split.train, &[0.0, 0.01, 0.1]).unwrap();
        assert!([0.0, 0.01, 0.1].contains(&best));
    }

    #[test]
    fn tune_alpha_rejects_empty_grid() {
        let split = tiny_split();
        assert!(matches!(
            tune_alpha(&tiny_config(), &split.train, &[]),
            Err(TrainError::NoAlphaCandidates)
        ));
    }

    #[test]
    fn schedule_built_per_kind() {
        let mut cfg = tiny_config();
        cfg.schedule = ScheduleKind::Constant;
        assert!(matches!(build_schedule(&cfg, 100), LrSchedule::Constant { .. }));
        cfg.schedule = ScheduleKind::Cosine;
        assert!(matches!(build_schedule(&cfg, 100), LrSchedule::CosineAnnealing { .. }));
        cfg.schedule = ScheduleKind::Linear;
        assert!(matches!(build_schedule(&cfg, 100), LrSchedule::LinearWithWarmup { .. }));
    }
}
