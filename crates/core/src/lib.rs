//! `lightlt-core`: the LightLT supervised quantization framework
//! (Wang et al., *LightLT: a Lightweight Representation Quantization
//! Framework for Long-tail Data*, ICDE 2024).
//!
//! LightLT compresses d-dimensional continuous representations into `M`
//! codeword ids drawn from `M` codebooks of `K` codewords (`M·log2(K)` bits
//! per item) while staying accurate on long-tail class distributions. The
//! pieces, mapped to the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | Quantization step, STE (Eqns. 3–7) | [`dsq`] |
//! | Double Skip Quantization (Eqns. 2, 10) | [`dsq`], [`config::CodebookTopology`] |
//! | Class-weighted CE + center + ranking loss (Eqns. 12–15) | [`loss`] |
//! | Model ensemble + DSQ fine-tuning (Eqn. 23, Alg. 1) | [`ensemble`] |
//! | Indexing workflow (Fig. 3) | [`index`] |
//! | ADC lookup-table search (Section IV-B) | [`search`] |
//! | Space/inference complexity (Section IV) | [`complexity`] |
//!
//! Training is fault-tolerant: NaN/divergence guards with retry-backoff
//! live in [`trainer`] and [`fault`], and checksummed atomic checkpoints
//! for killed-and-resumed runs in [`checkpoint`].
//!
//! Hot paths — ensemble branches, batch encode/decode, batch search — fan
//! out on the deterministic [`lt_runtime`] worker pool. The width comes
//! from [`LightLtConfig::threads`](config::LightLtConfig::threads) (0 =
//! `LT_THREADS` env or available parallelism) and is speed-only: every
//! parallel kernel is bitwise deterministic with respect to the thread
//! count, so checkpoints resume cleanly under any width.
//!
//! # Quickstart
//!
//! ```
//! use lightlt_core::prelude::*;
//! use lt_data::synth::{generate_split, Domain, SynthConfig};
//!
//! // A small synthetic long-tail retrieval task.
//! let split = generate_split(&SynthConfig {
//!     num_classes: 4, dim: 8, pi1: 24, imbalance_factor: 6.0,
//!     n_query: 8, n_database: 40, domain: Domain::ImageLike,
//!     intra_class_std: None, seed: 1,
//! });
//! let config = LightLtConfig {
//!     input_dim: 8, backbone_hidden: 12, embed_dim: 6, num_classes: 4,
//!     num_codebooks: 2, num_codewords: 8, ffn_hidden: 8,
//!     epochs: 2, ensemble_size: 1, ..Default::default()
//! };
//! let result = train_ensemble(&config, &split.train).expect("training failed");
//! // Index the database and search with a query.
//! let db_emb = result.model.embed(&result.store, &split.database.features);
//! let index = QuantizedIndex::build(&result.model.dsq, &result.store, &db_emb);
//! let q_emb = result.model.embed(&result.store, &split.query.features);
//! let hits = adc_search(&index, q_emb.row(0), 5);
//! assert_eq!(hits.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod backbone;
pub mod checkpoint;
pub mod checksum;
pub mod codec;
pub mod complexity;
pub mod config;
pub mod dsq;
pub mod ensemble;
pub mod fault;
pub mod index;
pub mod loss;
pub mod model;
pub mod persist;
pub mod route;
pub mod search;
pub mod trainer;

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::checkpoint::{checkpoint_path, Checkpoint, CheckpointError};
    pub use crate::complexity::ComplexityModel;
    pub use crate::config::{CodebookTopology, ConfigError, FaultPolicy, LightLtConfig, ScheduleKind};
    pub use crate::dsq::{Codes, Dsq};
    pub use crate::ensemble::{train_ensemble, train_ensemble_resumable, EnsembleResult};
    pub use crate::fault::{FaultPlan, GuardTrip, TrainError};
    pub use crate::index::{merge_modulo, split_modulo, QuantizedIndex};
    pub use crate::loss::{class_weights, LossBreakdown};
    pub use crate::model::LightLt;
    pub use crate::persist::{
        deserialize_index, deserialize_routed_index, serialize_index, serialize_routed_index,
        ModelBundle,
    };
    pub use crate::route::{RouteSpec, RoutedIndex};
    pub use crate::search::{
        adc_rank_all, adc_rank_all_batch, adc_rank_all_with, adc_scan_shards_topk, adc_search,
        adc_search_batch, adc_search_batch_checked, adc_search_batch_sharded,
        adc_search_batch_sharded_with_backend, adc_search_batch_with_backend,
        adc_search_checked, adc_search_rerank, adc_search_with, adc_search_with_backend,
        exhaustive_rank_all, exhaustive_search, merge_shard_topk, validate_search_request,
        SearchError, SearchScratch,
    };
    pub use crate::trainer::{
        resume, train, train_base_model, train_resumable, train_with_options, tune_alpha,
        CheckpointSpec, TrainHistory, TrainOptions,
    };
}

pub use prelude::*;
