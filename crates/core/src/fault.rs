//! Fault model of the training stack: typed training errors, the guard
//! verdicts that trigger retries, and a deterministic fault-injection plan
//! used by the integration tests to prove recovery behavior.

use std::fmt;

use crate::checkpoint::CheckpointError;
use crate::config::ConfigError;

/// Which per-step guard tripped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardTrip {
    /// The batch loss was NaN or infinite.
    NonFiniteLoss,
    /// The global gradient norm was NaN or infinite.
    NonFiniteGradNorm,
    /// The batch loss exceeded `divergence_factor ×` the best loss seen.
    Diverged {
        /// The offending batch loss.
        loss: f32,
        /// Best (lowest) batch loss seen before the trip.
        best: f32,
    },
}

impl fmt::Display for GuardTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GuardTrip::NonFiniteLoss => write!(f, "non-finite loss"),
            GuardTrip::NonFiniteGradNorm => write!(f, "non-finite gradient norm"),
            GuardTrip::Diverged { loss, best } => {
                write!(f, "loss diverged ({loss:.4} vs best {best:.4})")
            }
        }
    }
}

/// Error returned by the fallible training APIs.
#[derive(Debug)]
pub enum TrainError {
    /// The configuration failed [`LightLtConfig::validate`](crate::config::LightLtConfig::validate).
    Config(ConfigError),
    /// The training set has no items.
    EmptyTrainingSet,
    /// `tune_alpha` was called with an empty candidate grid.
    NoAlphaCandidates,
    /// Every alpha candidate produced a non-finite validation MAP.
    NonFiniteValidationMap,
    /// A guard tripped and the retry budget is exhausted.
    RetriesExhausted {
        /// Retries performed before giving up.
        retries: usize,
        /// Global step at which the final trip occurred.
        step: usize,
        /// The final guard verdict.
        reason: GuardTrip,
    },
    /// A [`FaultPlan`] kill point was reached (test-only simulated crash).
    SimulatedKill {
        /// Epoch after which the simulated kill fired.
        epoch: usize,
    },
    /// An ensemble branch's worker panicked; the panic payload is captured
    /// instead of tearing down the whole training process.
    BranchPanicked {
        /// Index of the branch whose worker panicked.
        branch: usize,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// Checkpoint persistence failed or a checkpoint was rejected.
    Checkpoint(CheckpointError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Config(e) => write!(f, "{e}"),
            TrainError::EmptyTrainingSet => write!(f, "training set is empty"),
            TrainError::NoAlphaCandidates => {
                write!(f, "need at least one alpha candidate")
            }
            TrainError::NonFiniteValidationMap => {
                write!(f, "validation MAP was non-finite for every alpha candidate")
            }
            TrainError::RetriesExhausted { retries, step, reason } => write!(
                f,
                "training failed at step {step} after {retries} retries: {reason}"
            ),
            TrainError::SimulatedKill { epoch } => {
                write!(f, "simulated kill after epoch {epoch}")
            }
            TrainError::BranchPanicked { branch, message } => {
                write!(f, "ensemble branch {branch} panicked: {message}")
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<ConfigError> for TrainError {
    fn from(e: ConfigError) -> Self {
        TrainError::Config(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// A deterministic fault-injection plan for the training loop.
///
/// Used by the fault-tolerance integration tests: inject a NaN into the
/// gradients at a given global step (exercising the guard + retry path), or
/// simulate a crash after a given epoch's checkpoint is written (exercising
/// kill-and-resume). An empty plan (the default) injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    nan_steps: Vec<usize>,
    kill_after: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Poisons one gradient entry with NaN at global step `step`. Each call
    /// arms one injection; repeating the same step re-injects on the retry
    /// of that step.
    pub fn nan_at_step(mut self, step: usize) -> Self {
        self.nan_steps.push(step);
        self
    }

    /// Simulates a crash (returns [`TrainError::SimulatedKill`]) right
    /// after epoch `epoch` completes and its checkpoint is written.
    pub fn kill_after_epoch(mut self, epoch: usize) -> Self {
        self.kill_after = Some(epoch);
        self
    }

    /// True when the plan has no armed faults.
    pub fn is_empty(&self) -> bool {
        self.nan_steps.is_empty() && self.kill_after.is_none()
    }

    /// Consumes one armed NaN injection for `step`, if any.
    pub(crate) fn take_nan(&mut self, step: usize) -> bool {
        match self.nan_steps.iter().position(|&s| s == step) {
            Some(i) => {
                self.nan_steps.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// True when the plan kills the run after `epoch`.
    pub(crate) fn should_kill(&self, epoch: usize) -> bool {
        self.kill_after == Some(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_consumes_injections_once_each() {
        let mut plan = FaultPlan::none().nan_at_step(3).nan_at_step(3).nan_at_step(7);
        assert!(!plan.is_empty());
        assert!(!plan.take_nan(2));
        assert!(plan.take_nan(3));
        assert!(plan.take_nan(3), "second armed injection at the same step");
        assert!(!plan.take_nan(3), "both consumed");
        assert!(plan.take_nan(7));
        assert!(plan.is_empty());
    }

    #[test]
    fn kill_point_matches_exact_epoch() {
        let plan = FaultPlan::none().kill_after_epoch(2);
        assert!(!plan.should_kill(1));
        assert!(plan.should_kill(2));
        assert!(!plan.should_kill(3));
    }

    #[test]
    fn errors_render_readably() {
        let e = TrainError::RetriesExhausted {
            retries: 3,
            step: 41,
            reason: GuardTrip::NonFiniteLoss,
        };
        let msg = e.to_string();
        assert!(msg.contains("step 41") && msg.contains("3 retries"), "{msg}");
        assert!(TrainError::EmptyTrainingSet.to_string().contains("empty"));
    }
}
