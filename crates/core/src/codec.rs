//! Bit-level code packing.
//!
//! Section IV prices a database item at `M · log2(K) / 8` bytes. [`Codes`]
//! keeps ids as `u16` in memory for fast ADC lookups; this module provides
//! the storage form: a packed bitstream at exactly `ceil(log2 K)` bits per
//! id, plus the inverse transform. The round-trip is exercised by unit and
//! property tests.

use bytes::{BufMut, BytesMut};

use crate::dsq::Codes;

/// Bits needed per codeword id for a codebook of `num_codewords` entries.
pub fn bits_per_id(num_codewords: usize) -> u32 {
    assert!(num_codewords >= 2, "need at least two codewords");
    (num_codewords as f64).log2().ceil() as u32
}

/// Packs a flat id stream at `bits_per_id(num_codewords)` bits per id,
/// little-endian bit order within the stream. Works for any id ordering —
/// item-major ([`pack_codes`]) and the level-major on-disk layout of
/// `LTINDEX3` images both route through here.
pub fn pack_ids(ids: &[u16], num_codewords: usize) -> Vec<u8> {
    let bits = bits_per_id(num_codewords);
    let total_bits = ids.len() as u64 * bits as u64;
    let mut out = BytesMut::with_capacity(total_bits.div_ceil(8) as usize);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &id in ids {
        debug_assert!(
            (id as usize) < num_codewords,
            "code {id} out of range for K={num_codewords}"
        );
        acc |= (id as u64) << acc_bits;
        acc_bits += bits;
        while acc_bits >= 8 {
            out.put_u8((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.put_u8((acc & 0xFF) as u8);
    }
    out.to_vec()
}

/// Unpacks `n_ids` ids from a stream produced by [`pack_ids`].
///
/// # Panics
/// Panics if the buffer is too short for the requested count.
pub fn unpack_ids(packed: &[u8], n_ids: usize, num_codewords: usize) -> Vec<u16> {
    let bits = bits_per_id(num_codewords);
    let needed_bits = n_ids as u64 * bits as u64;
    assert!(
        (packed.len() as u64) * 8 >= needed_bits,
        "packed buffer too short: {} bytes for {} ids × {} bits",
        packed.len(),
        n_ids,
        bits
    );
    let mask: u64 = (1u64 << bits) - 1;
    let mut ids = Vec::with_capacity(n_ids);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    let mut byte_idx = 0usize;
    for _ in 0..n_ids {
        while acc_bits < bits {
            acc |= (packed[byte_idx] as u64) << acc_bits;
            byte_idx += 1;
            acc_bits += 8;
        }
        ids.push((acc & mask) as u16);
        acc >>= bits;
        acc_bits -= bits;
    }
    ids
}

/// Packs an item-major code table at `bits_per_id(num_codewords)` bits per
/// id, little-endian bit order within the stream.
pub fn pack_codes(codes: &Codes, num_codewords: usize) -> Vec<u8> {
    pack_ids(codes.as_slice(), num_codewords)
}

/// Unpacks a stream produced by [`pack_codes`].
///
/// `num_items` and `num_codebooks` determine how many ids to read.
///
/// # Panics
/// Panics if the buffer is too short for the requested shape.
pub fn unpack_codes(
    packed: &[u8],
    num_items: usize,
    num_codebooks: usize,
    num_codewords: usize,
) -> Codes {
    let ids = unpack_ids(packed, num_items * num_codebooks, num_codewords);
    Codes::new(ids, num_codebooks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ids: Vec<u16>, m: usize, k: usize) {
        let codes = Codes::new(ids, m);
        let packed = pack_codes(&codes, k);
        let back = unpack_codes(&packed, codes.len(), m, k);
        assert_eq!(back, codes, "roundtrip failed for K={k}");
    }

    #[test]
    fn bits_per_id_values() {
        assert_eq!(bits_per_id(2), 1);
        assert_eq!(bits_per_id(3), 2);
        assert_eq!(bits_per_id(16), 4);
        assert_eq!(bits_per_id(256), 8);
        assert_eq!(bits_per_id(257), 9);
        assert_eq!(bits_per_id(65536), 16);
    }

    #[test]
    fn packed_size_matches_paper_formula() {
        // 1000 items × 4 codebooks × 8 bits = 4000 bytes.
        let codes = Codes::new(vec![0u16; 4000], 4);
        let packed = pack_codes(&codes, 256);
        assert_eq!(packed.len(), 4000);
        // K=16 → 4 bits → half the bytes.
        let packed4 = pack_codes(&codes, 16);
        assert_eq!(packed4.len(), 2000);
    }

    #[test]
    fn roundtrip_various_widths() {
        for &k in &[2usize, 3, 7, 16, 100, 256, 1000] {
            let ids: Vec<u16> = (0..97u16).map(|i| i % (k as u16)).collect();
            // 97 ids isn't a multiple of arbitrary m; use m=1.
            roundtrip(ids, 1, k);
        }
    }

    #[test]
    fn roundtrip_multi_codebook() {
        let ids: Vec<u16> = (0..60u16).map(|i| (i * 7) % 16).collect();
        roundtrip(ids.clone(), 4, 16);
        roundtrip(ids, 3, 16);
    }

    #[test]
    fn empty_codes_pack_to_empty() {
        let codes = Codes::new(vec![], 4);
        assert!(pack_codes(&codes, 256).is_empty());
        let back = unpack_codes(&[], 0, 4, 256);
        assert_eq!(back.len(), 0);
    }

    #[test]
    #[should_panic(expected = "packed buffer too short")]
    fn unpack_detects_truncation() {
        let codes = Codes::new(vec![1u16; 8], 4);
        let packed = pack_codes(&codes, 256);
        let _ = unpack_codes(&packed[..packed.len() - 1], 2, 4, 256);
    }

    #[test]
    fn cross_byte_boundaries() {
        // 3-bit ids crossing byte boundaries extensively.
        let ids: Vec<u16> = (0..50u16).map(|i| i % 8).collect();
        roundtrip(ids, 1, 8);
    }
}
