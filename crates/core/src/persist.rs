//! Model and index persistence.
//!
//! Two formats:
//!
//! * **Model bundles** — config + weights as JSON-compatible structures via
//!   `serde` (human-inspectable, version-tolerant). A bundle restores an
//!   identical [`LightLt`] + [`ParamStore`] pair.
//! * **Index images** — a compact binary layout for a [`QuantizedIndex`]:
//!   fixed little-endian header, raw `f32` codebooks, *bit-packed* codes
//!   (the paper's `M·log2(K)/8` bytes per item), per-item norms, and a
//!   trailing CRC32 so on-disk corruption is caught at load time. The
//!   current `LTINDEX3` format stores codes level-major (all of level 0,
//!   then level 1, …) so a load can feed the scan engine's SoA layout
//!   without transposing; item-major images written by the older
//!   `LTINDEX2` (checksummed) and `LTINDEX1` (no checksum) formats are
//!   still readable.
//! * **Routed index images** — `LTINDEX4`: a v3-shaped body (flat index in
//!   global-id order) followed by the coarse-routing tail (`nlist`,
//!   centroids, per-item partition assignments) and the same trailing
//!   CRC32. A v4 image loads as a flat [`QuantizedIndex`] through
//!   [`deserialize_index`] (the routing tail is ignored) and as a
//!   [`RoutedIndex`] through [`deserialize_routed_index`]; legacy
//!   v3/v2/v1 images load as a routed index with one partition scanned
//!   exhaustively.

use bytes::{Buf, BufMut, BytesMut};
use lt_linalg::{Matrix, Metric};
use lt_tensor::ParamStore;
use serde::{Deserialize, Serialize};

use crate::checksum::crc32;
use crate::codec::{bits_per_id, pack_ids, unpack_codes, unpack_ids};
use crate::config::LightLtConfig;
use crate::index::QuantizedIndex;
use crate::model::LightLt;
use crate::route::RoutedIndex;

/// Serializable model bundle: everything needed to reconstruct a trained
/// LightLT model.
#[derive(Debug, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The model/training configuration.
    pub config: LightLtConfig,
    /// Which ensemble member the weights came from (0 for the averaged
    /// model).
    pub seed_offset: u64,
    /// All weights.
    pub store: ParamStore,
}

/// Current bundle format version.
pub const BUNDLE_VERSION: u32 = 1;

/// Magic bytes of the binary index image (v3: level-major codes, CRC32).
pub const INDEX_MAGIC: &[u8; 8] = b"LTINDEX3";

/// Magic bytes of the routed index image (v4: a v3-shaped body followed by
/// the coarse-routing tail — `nlist`, centroids, assignments — and CRC32).
pub const INDEX_MAGIC_V4: &[u8; 8] = b"LTINDEX4";

/// Magic bytes of the legacy v2 index image (item-major codes, CRC32);
/// still readable.
pub const INDEX_MAGIC_V2: &[u8; 8] = b"LTINDEX2";

/// Magic bytes of the legacy v1 index image (item-major, no checksum);
/// still readable.
pub const INDEX_MAGIC_V1: &[u8; 8] = b"LTINDEX1";

impl ModelBundle {
    /// Captures a trained model and its weights.
    pub fn capture(model: &LightLt, store: &ParamStore) -> Self {
        Self {
            version: BUNDLE_VERSION,
            config: model.config.clone(),
            seed_offset: model.seed_offset,
            store: store.clone(),
        }
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    /// Returns a message when serialization fails (e.g. a non-finite float
    /// smuggled into the config by a caller that skipped validation).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("bundle serialization failed: {e}"))
    }

    /// Restores from JSON.
    ///
    /// # Errors
    /// Returns a message when the JSON is malformed, the version is
    /// unsupported, or the weights do not match the config's architecture.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let bundle: ModelBundle =
            serde_json::from_str(json).map_err(|e| format!("malformed bundle: {e}"))?;
        if bundle.version != BUNDLE_VERSION {
            return Err(format!(
                "unsupported bundle version {} (expected {BUNDLE_VERSION})",
                bundle.version
            ));
        }
        Ok(bundle)
    }

    /// Rebuilds the model structure and verifies the stored weights match
    /// its schema.
    ///
    /// # Errors
    /// Returns a message when the stored config is degenerate or weight
    /// names/shapes disagree with the architecture the config describes.
    pub fn restore(&self) -> Result<(LightLt, ParamStore), String> {
        self.config.validate().map_err(|e| e.to_string())?;
        let (model, fresh) = LightLt::new(&self.config, self.seed_offset);
        if !fresh.schema_matches(&self.store) {
            return Err("stored weights do not match the config's architecture".into());
        }
        Ok((model, self.store.clone()))
    }
}

/// Writes the v3-shaped image body (header, codebooks, packed level-major
/// codes, norms) under the given magic. The caller appends any
/// format-specific tail and the CRC32 footer.
fn write_index_body(index: &QuantizedIndex, magic: &[u8; 8]) -> BytesMut {
    let m = index.num_codebooks();
    let k = index.num_codewords();
    let d = index.dim();
    let n = index.len();

    let mut buf = BytesMut::new();
    buf.put_slice(magic);
    buf.put_u8(match index.metric() {
        Metric::NegSquaredL2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    });
    buf.put_u32_le(m as u32);
    buf.put_u32_le(k as u32);
    buf.put_u32_le(d as u32);
    buf.put_u64_le(n as u64);

    for cb in index.codebooks() {
        for &v in cb.as_slice() {
            buf.put_f32_le(v);
        }
    }
    // v3+: codes are packed in level-major order so loads feed the scan
    // engine's SoA layout directly, without an O(nM) transpose.
    let packed = pack_ids(&index.level_codes().to_level_major(), k);
    buf.put_u64_le(packed.len() as u64);
    buf.put_slice(&packed);
    for i in 0..n {
        buf.put_f32_le(index.recon_norm_sq(i));
    }
    buf
}

/// Serializes a [`QuantizedIndex`] to the binary index-image format.
pub fn serialize_index(index: &QuantizedIndex) -> Vec<u8> {
    let mut buf = write_index_body(index, INDEX_MAGIC);
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.to_vec()
}

/// Serializes a [`RoutedIndex`] to the `LTINDEX4` image: the flattened
/// corpus in global-id order as a v3-shaped body, then the routing tail
/// (`nlist` as u32, the `nlist × d` centroid floats, one u32 partition
/// assignment per item), then the CRC32 footer over everything before it.
pub fn serialize_routed_index(routed: &RoutedIndex) -> Vec<u8> {
    let flat = routed.flatten();
    let mut buf = write_index_body(&flat, INDEX_MAGIC_V4);
    buf.put_u32_le(routed.nlist() as u32);
    for &v in routed.centroids().as_slice() {
        buf.put_f32_le(v);
    }
    for a in routed.assignments() {
        buf.put_u32_le(a);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.to_vec()
}

/// Writes the legacy item-major image formats (`LTINDEX2` with CRC,
/// `LTINDEX1` without). Kept only so tests can prove the current reader
/// still understands images produced by earlier releases.
#[cfg(test)]
fn serialize_index_legacy(index: &QuantizedIndex, magic: &[u8; 8]) -> Vec<u8> {
    use crate::codec::pack_codes;
    let m = index.num_codebooks();
    let k = index.num_codewords();
    let d = index.dim();
    let n = index.len();

    let mut buf = BytesMut::new();
    buf.put_slice(magic);
    buf.put_u8(match index.metric() {
        Metric::NegSquaredL2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    });
    buf.put_u32_le(m as u32);
    buf.put_u32_le(k as u32);
    buf.put_u32_le(d as u32);
    buf.put_u64_le(n as u64);
    for cb in index.codebooks() {
        for &v in cb.as_slice() {
            buf.put_f32_le(v);
        }
    }
    let packed = pack_codes(&index.codes(), k);
    buf.put_u64_le(packed.len() as u64);
    buf.put_slice(&packed);
    for i in 0..n {
        buf.put_f32_le(index.recon_norm_sq(i));
    }
    if magic == INDEX_MAGIC_V2 {
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
    }
    buf.to_vec()
}

/// Restores a [`QuantizedIndex`] from an index image (current `LTINDEX3`
/// with level-major codes and checksum verification, routed `LTINDEX4` —
/// whose routing tail is ignored — legacy item-major `LTINDEX2` with
/// checksum, or legacy `LTINDEX1` without).
///
/// # Errors
/// Returns a message on bad magic, truncation, a checksum mismatch, or
/// inconsistent sizes.
pub fn deserialize_index(bytes: &[u8]) -> Result<QuantizedIndex, String> {
    deserialize_index_with_tail(bytes).map(|(index, _)| index)
}

/// Parses the flat-index body and returns it together with whatever bytes
/// follow it inside the checksummed region (the routing tail for v4;
/// empty for v3 and earlier).
fn deserialize_index_with_tail(bytes: &[u8]) -> Result<(QuantizedIndex, &[u8]), String> {
    if bytes.len() < INDEX_MAGIC.len() {
        return Err("bad index magic".into());
    }
    let magic = &bytes[..INDEX_MAGIC.len()];
    let level_major = magic == INDEX_MAGIC || magic == INDEX_MAGIC_V4;
    let body = if level_major || magic == INDEX_MAGIC_V2 {
        // v2+: the last four bytes are a little-endian CRC32 of the rest.
        if bytes.len() < INDEX_MAGIC.len() + 4 {
            return Err("truncated index image".into());
        }
        let (body, footer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().expect("footer is 4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(format!(
                "index image checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ));
        }
        body
    } else if magic == INDEX_MAGIC_V1 {
        bytes
    } else {
        return Err("bad index magic".into());
    };
    let mut buf = body;
    buf.advance(INDEX_MAGIC.len());
    if buf.remaining() < 1 + 4 + 4 + 4 + 8 {
        return Err("truncated index header".into());
    }
    let metric = match buf.get_u8() {
        0 => Metric::NegSquaredL2,
        1 => Metric::InnerProduct,
        2 => Metric::Cosine,
        other => return Err(format!("unknown metric tag {other}")),
    };
    let m = buf.get_u32_le() as usize;
    let k = buf.get_u32_le() as usize;
    let d = buf.get_u32_le() as usize;
    let n = buf.get_u64_le() as usize;
    if m == 0 || k < 2 || d == 0 {
        return Err("degenerate index dimensions".into());
    }

    let cb_floats = m * k * d;
    if buf.remaining() < cb_floats * 4 {
        return Err("truncated codebooks".into());
    }
    let mut codebooks = Vec::with_capacity(m);
    for _ in 0..m {
        let mut data = Vec::with_capacity(k * d);
        for _ in 0..k * d {
            data.push(buf.get_f32_le());
        }
        codebooks.push(Matrix::from_vec(k, d, data));
    }

    if buf.remaining() < 8 {
        return Err("truncated code-length field".into());
    }
    let packed_len = buf.get_u64_le() as usize;
    let expected_packed = (n as u64 * m as u64 * bits_per_id(k) as u64).div_ceil(8) as usize;
    if packed_len != expected_packed {
        return Err(format!(
            "packed code length {packed_len} does not match expected {expected_packed}"
        ));
    }
    if buf.remaining() < packed_len {
        return Err("truncated packed codes".into());
    }
    let level_codes = if level_major {
        let ids = unpack_ids(&buf[..packed_len], n * m, k);
        lt_linalg::LevelCodes::from_level_major(&ids, m, n, k)
    } else {
        unpack_codes(&buf[..packed_len], n, m, k).to_level_codes(k)
    };
    buf.advance(packed_len);

    if buf.remaining() < n * 4 {
        return Err("truncated norms".into());
    }
    let mut norms = Vec::with_capacity(n);
    for _ in 0..n {
        norms.push(buf.get_f32_le());
    }

    Ok((QuantizedIndex::from_level_parts(codebooks, level_codes, norms, metric, d, k), buf))
}

/// Restores a [`RoutedIndex`] from an index image. An `LTINDEX4` image
/// rebuilds the stored partitioning (centroids + assignments) exactly; a
/// legacy flat image (v3/v2/v1) loads as **one partition scanned
/// exhaustively** — routed search over it is plain exhaustive ADC.
///
/// # Errors
/// Returns a message on bad magic, truncation, a checksum mismatch, or an
/// inconsistent routing tail.
pub fn deserialize_routed_index(bytes: &[u8]) -> Result<RoutedIndex, String> {
    if bytes.len() >= INDEX_MAGIC_V4.len() && &bytes[..INDEX_MAGIC_V4.len()] == INDEX_MAGIC_V4 {
        let (flat, mut tail) = deserialize_index_with_tail(bytes)?;
        if tail.remaining() < 4 {
            return Err("truncated routing header".into());
        }
        let nlist = tail.get_u32_le() as usize;
        if nlist == 0 {
            return Err("routed image with zero partitions".into());
        }
        let d = flat.dim();
        if (tail.remaining() as u64) < nlist as u64 * d as u64 * 4 {
            return Err("truncated centroids".into());
        }
        let mut data = Vec::with_capacity(nlist * d);
        for _ in 0..nlist * d {
            data.push(tail.get_f32_le());
        }
        let centroids = Matrix::from_vec(nlist, d, data);
        if (tail.remaining() as u64) < flat.len() as u64 * 4 {
            return Err("truncated assignments".into());
        }
        let mut assignments = Vec::with_capacity(flat.len());
        for _ in 0..flat.len() {
            let a = tail.get_u32_le();
            if a as usize >= nlist {
                return Err(format!("assignment {a} out of range for nlist {nlist}"));
            }
            assignments.push(a);
        }
        Ok(RoutedIndex::from_parts(&flat, centroids, &assignments))
    } else {
        let flat = deserialize_index(bytes)?;
        let centroids = Matrix::zeros(1, flat.dim());
        let assignments = vec![0u32; flat.len()];
        Ok(RoutedIndex::from_parts(&flat, centroids, &assignments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodebookTopology;
    use crate::dsq::Dsq;
    use crate::search::adc_search;
    use lt_linalg::random::{randn, rng};

    fn trained_pair() -> (LightLt, ParamStore) {
        let config = LightLtConfig {
            input_dim: 8,
            backbone_hidden: 12,
            embed_dim: 6,
            num_classes: 3,
            num_codebooks: 2,
            num_codewords: 8,
            ffn_hidden: 8,
            ..Default::default()
        };
        LightLt::new(&config, 0)
    }

    #[test]
    fn bundle_roundtrip_preserves_weights_and_behaviour() {
        let (model, store) = trained_pair();
        let bundle = ModelBundle::capture(&model, &store);
        let json = bundle.to_json().unwrap();
        let restored = ModelBundle::from_json(&json).unwrap();
        let (model2, store2) = restored.restore().unwrap();

        let x = randn(5, 8, &mut rng(1));
        assert_eq!(model.encode(&store, &x), model2.encode(&store2, &x));
        let e1 = model.embed(&store, &x);
        let e2 = model2.embed(&store2, &x);
        for (a, b) in e1.as_slice().iter().zip(e2.as_slice()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bundle_rejects_wrong_version() {
        let (model, store) = trained_pair();
        let mut bundle = ModelBundle::capture(&model, &store);
        bundle.version = 999;
        let json = bundle.to_json().unwrap();
        assert!(ModelBundle::from_json(&json).unwrap_err().contains("version"));
    }

    #[test]
    fn bundle_rejects_degenerate_config() {
        let (model, store) = trained_pair();
        let mut bundle = ModelBundle::capture(&model, &store);
        bundle.config.num_codebooks = 0; // would panic in LightLt::new
        let err = bundle.restore().unwrap_err();
        assert!(err.contains("num_codebooks"), "unexpected error: {err}");
    }

    #[test]
    fn bundle_rejects_mismatched_architecture() {
        let (model, store) = trained_pair();
        let mut bundle = ModelBundle::capture(&model, &store);
        bundle.config.embed_dim = 12; // architecture no longer matches weights
        assert!(bundle.restore().is_err());
    }

    fn build_index() -> QuantizedIndex {
        let mut store = ParamStore::new();
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            6,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut rng(2),
        );
        let db = randn(30, 6, &mut rng(3)).scale(0.4);
        QuantizedIndex::build(&dsq, &store, &db)
    }

    #[test]
    fn index_image_roundtrip_preserves_search() {
        let index = build_index();
        let bytes = serialize_index(&index);
        let restored = deserialize_index(&bytes).unwrap();
        assert_eq!(restored.len(), index.len());
        assert_eq!(restored.num_codebooks(), index.num_codebooks());
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.5, -0.4];
        let a = adc_search(&index, &q, 10);
        let b = adc_search(&restored, &q, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert!((x.score - y.score).abs() < 1e-5);
        }
    }

    #[test]
    fn index_image_detects_corruption() {
        let index = build_index();
        let mut bytes = serialize_index(&index);
        // Bad magic.
        let mut broken = bytes.clone();
        broken[0] ^= 0xFF;
        assert!(deserialize_index(&broken).is_err());
        // Truncation at various points.
        for cut in [4usize, 12, 30, bytes.len() - 3] {
            assert!(
                deserialize_index(&bytes[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
        // Corrupt the item-count field (bytes 21..29).
        bytes[21] = bytes[21].wrapping_add(1);
        assert!(deserialize_index(&bytes).is_err());
    }

    #[test]
    fn index_image_checksum_catches_single_bit_flip() {
        let index = build_index();
        let clean = serialize_index(&index);
        // A single flipped bit anywhere in the body must be rejected, even
        // where it would still parse structurally (codebook floats, norms).
        for pos in [40usize, clean.len() / 2, clean.len() - 6] {
            let mut corrupted = clean.clone();
            corrupted[pos] ^= 0x01;
            let err = deserialize_index(&corrupted).unwrap_err();
            assert!(
                err.contains("checksum") || err.contains("magic"),
                "bit flip at {pos} gave unexpected error: {err}"
            );
        }
    }

    #[test]
    fn index_image_reads_legacy_v2_item_major() {
        let index = build_index();
        let bytes = serialize_index_legacy(&index, INDEX_MAGIC_V2);
        let restored = deserialize_index(&bytes).unwrap();
        assert_eq!(restored.len(), index.len());
        // The legacy image stores codes item-major; the restored index must
        // hold the same codes in the scan layout.
        assert_eq!(restored.codes(), index.codes());
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.5, -0.4];
        let a = adc_search(&index, &q, 5);
        let b = adc_search(&restored, &q, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn index_image_reads_legacy_v1_without_checksum() {
        let index = build_index();
        let bytes = serialize_index_legacy(&index, INDEX_MAGIC_V1);
        let restored = deserialize_index(&bytes).unwrap();
        assert_eq!(restored.len(), index.len());
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.5, -0.4];
        let a = adc_search(&index, &q, 5);
        let b = adc_search(&restored, &q, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
        }
    }

    #[test]
    fn routed_image_roundtrip_preserves_partitioning_and_search() {
        let index = build_index();
        let routed = RoutedIndex::from_index(&index, 4, 7);
        let bytes = serialize_routed_index(&routed);
        let restored = deserialize_routed_index(&bytes).unwrap();
        assert_eq!(restored.len(), routed.len());
        assert_eq!(restored.nlist(), 4);
        assert_eq!(restored.centroids().as_slice(), routed.centroids().as_slice());
        assert_eq!(restored.assignments(), routed.assignments());
        // Routed search over the restored image is bitwise identical.
        let queries = randn(3, 6, &mut rng(4)).scale(0.3);
        let a = routed.search_batch(&lt_linalg::scan::F32_BACKEND, &queries, 5, 2);
        let b = restored.search_batch(&lt_linalg::scan::F32_BACKEND, &queries, 5, 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            for (h, g) in x.iter().zip(y) {
                assert_eq!(h.index, g.index);
                assert_eq!(h.score.to_bits(), g.score.to_bits());
            }
        }
    }

    #[test]
    fn routed_image_reads_as_flat_index() {
        // deserialize_index must accept a v4 image, ignore the routing
        // tail, and reproduce the flattened corpus exactly.
        let index = build_index();
        let routed = RoutedIndex::from_index(&index, 4, 7);
        let bytes = serialize_routed_index(&routed);
        let flat = deserialize_index(&bytes).unwrap();
        assert_eq!(serialize_index(&flat), serialize_index(&routed.flatten()));
    }

    #[test]
    fn legacy_flat_image_reads_as_single_partition_routed() {
        let index = build_index();
        let bytes = serialize_index(&index);
        let routed = deserialize_routed_index(&bytes).unwrap();
        assert_eq!(routed.nlist(), 1);
        assert_eq!(routed.len(), index.len());
        // One partition scanned exhaustively == plain exhaustive search.
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.5, -0.4];
        let queries = Matrix::from_vec(1, 6, q.to_vec());
        let got = routed.search_batch(&lt_linalg::scan::F32_BACKEND, &queries, 5, 1);
        let expected = adc_search(&index, &q, 5);
        assert_eq!(got[0].len(), expected.len());
        for (h, e) in got[0].iter().zip(&expected) {
            assert_eq!(h.index, e.index);
            assert_eq!(h.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn routed_image_detects_corruption() {
        let index = build_index();
        let routed = RoutedIndex::from_index(&index, 3, 7);
        let clean = serialize_routed_index(&routed);
        // Bit flips anywhere — including inside the routing tail — must be
        // caught by the CRC.
        for pos in [9usize, clean.len() / 2, clean.len() - 6] {
            let mut corrupted = clean.clone();
            corrupted[pos] ^= 0x01;
            let err = deserialize_routed_index(&corrupted).unwrap_err();
            assert!(
                err.contains("checksum") || err.contains("magic"),
                "bit flip at {pos} gave unexpected error: {err}"
            );
        }
        for cut in [4usize, 30, clean.len() - 3] {
            assert!(deserialize_routed_index(&clean[..cut]).is_err());
        }
    }

    #[test]
    fn index_image_is_compact() {
        let index = build_index();
        let bytes = serialize_index(&index);
        // Must be within a small overhead of the paper's storage accounting.
        let accounted = index.storage_bytes();
        assert!(
            bytes.len() <= accounted + 64,
            "image {} bytes vs accounted {accounted}",
            bytes.len()
        );
    }
}
