//! The LightLT training loss (Section III-D).
//!
//! `L = L_ce + α (L_c + L_r)` with
//!
//! * **Class-weighted cross-entropy** (Eqn. 12): weights
//!   `(1−γ)/(1−γ^{π_y})` counteract the long tail — as `γ → 1` the weight
//!   approaches `1/π_y` (inverse class frequency), at `γ = 0` it degrades to
//!   plain cross-entropy.
//! * **Center loss** (Eqn. 13): pulls each quantized representation toward
//!   its learnable class prototype. We use the squared L2 form of the cited
//!   center-loss paper (differentiable at zero).
//! * **Ranking loss** (Eqn. 14): a prototype softmax over (plain L2)
//!   distances at temperature `τ`, keeping each item closer to its own
//!   prototype than to any other.
//!
//! Proposition 1 (the sum `L_c + L_r` upper-bounds a simplified triplet
//! loss via the triangle inequality) is implemented as checkable plain-math
//! functions and exercised by property tests.

use lt_linalg::distance::l2;
use lt_linalg::Matrix;
use lt_tensor::{Tape, Var};

/// Breakdown of the combined loss for logging and the Fig.-5 ablation.
#[derive(Debug, Clone, Copy)]
pub struct LossBreakdown {
    /// Class-weighted cross-entropy value.
    pub ce: f32,
    /// Center-loss value (before the α weight).
    pub center: f32,
    /// Ranking-loss value (before the α weight).
    pub ranking: f32,
    /// Combined `ce + α (center + ranking)`.
    pub total: f32,
}

/// Per-class weights of Eqn. 12: `w_c = (1−γ)/(1−γ^{π_c})`, normalized to
/// mean 1 over non-empty classes so the loss scale stays comparable across
/// γ values. Empty classes get weight 0.
///
/// # Panics
/// Panics if `gamma ∉ [0, 1)`.
pub fn class_weights(counts: &[usize], gamma: f32) -> Vec<f32> {
    assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
    let raw: Vec<f32> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else if gamma == 0.0 {
                1.0
            } else {
                let denom = 1.0 - (gamma as f64).powi(c as i32);
                ((1.0 - gamma as f64) / denom.max(1e-12)) as f32
            }
        })
        .collect();
    let non_empty: Vec<f32> = raw.iter().copied().filter(|&w| w > 0.0).collect();
    if non_empty.is_empty() {
        return raw;
    }
    let mean: f32 = non_empty.iter().sum::<f32>() / non_empty.len() as f32;
    raw.iter().map(|&w| w / mean.max(1e-12)).collect()
}

/// Builds the combined loss graph on the tape.
///
/// * `logits` — classifier output (`n × C`).
/// * `o` — quantized representation (`n × d`).
/// * `prototypes` — class prototypes as a tape node (`C × d`).
/// * `labels` — class label per row.
/// * `weights` — per-class weights from [`class_weights`].
/// * `alpha`, `tau` — Eqn. 15 / Eqn. 14 hyper-parameters.
///
/// Returns the scalar loss node and a value breakdown.
#[allow(clippy::too_many_arguments)]
pub fn lightlt_loss(
    tape: &mut Tape,
    logits: Var,
    o: Var,
    prototypes: Var,
    labels: &[usize],
    weights: &[f32],
    alpha: f32,
    tau: f32,
) -> (Var, LossBreakdown) {
    let n = labels.len();
    assert_eq!(tape.value(logits).rows(), n, "logits/labels mismatch");
    assert_eq!(tape.value(o).rows(), n, "o/labels mismatch");
    let num_classes = tape.value(prototypes).rows();
    assert_eq!(tape.value(logits).cols(), num_classes, "logit width mismatch");

    let sample_weights: Vec<f32> = labels.iter().map(|&y| weights[y]).collect();

    // --- class-weighted cross-entropy (Eqn. 12) ---
    let logp = tape.log_softmax_rows(logits);
    let ce = tape.nll_weighted(logp, labels, &sample_weights);

    // --- center loss (Eqn. 13), squared-L2 form ---
    let own_proto = tape.gather_rows(prototypes, labels);
    let center_diff = tape.sub(o, own_proto);
    let center_sq = tape.row_norm_sq(center_diff);
    let center = tape.mean(center_sq);

    // --- ranking loss (Eqn. 14) ---
    // dist²[i][c] = ‖o_i‖² + ‖z_c‖² − 2 ⟨o_i, z_c⟩, then plain L2 distance.
    let ip = tape.matmul_bt(o, prototypes);
    let ip2 = tape.scale(ip, -2.0);
    let on = tape.row_norm_sq(o);
    let with_o = tape.add_col_broadcast(ip2, on);
    let pn = tape.row_norm_sq(prototypes);
    let pn_t = tape.transpose(pn);
    let d2 = tape.add_row_broadcast(with_o, pn_t);
    // Small epsilon keeps the sqrt gradient bounded when an item sits
    // exactly on its prototype.
    let d2_eps = tape.add_scalar(d2, 1e-6);
    let dist = tape.sqrt(d2_eps);
    let neg_scaled = tape.scale(dist, -1.0 / tau);
    let rank_logp = tape.log_softmax_rows(neg_scaled);
    let ones = vec![1.0f32; n];
    let ranking = tape.nll_weighted(rank_logp, labels, &ones);

    // --- combine (Eqn. 15) ---
    let aux = tape.add(center, ranking);
    let aux_scaled = tape.scale(aux, alpha);
    let total = tape.add(ce, aux_scaled);

    let breakdown = LossBreakdown {
        ce: tape.value(ce)[(0, 0)],
        center: tape.value(center)[(0, 0)],
        ranking: tape.value(ranking)[(0, 0)],
        total: tape.value(total)[(0, 0)],
    };
    (total, breakdown)
}

/// Left side of Proposition 1's chain (Eqn. 19, simplified triplet form
/// without margin): `Σ_i Σ_{j∈{y_i}} Σ_{k∉{y_i}} ‖o_i − o_j‖ − ‖o_i − o_k‖`.
///
/// O(N³) — test/diagnostic use only.
pub fn simplified_triplet(o: &Matrix, labels: &[usize]) -> f32 {
    let n = o.rows();
    assert_eq!(labels.len(), n);
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..n {
            if labels[j] != labels[i] {
                continue;
            }
            for k in 0..n {
                if labels[k] == labels[i] {
                    continue;
                }
                total += l2(o.row(i), o.row(j)) - l2(o.row(i), o.row(k));
            }
        }
    }
    total
}

/// Right side of Eqn. 19: the prototype-based upper bound
/// `Σ (‖o_i − z_{y_i}‖ + ‖o_j − z_{y_i}‖) − (‖o_i − z_{y_k}‖ − ‖o_k − z_{y_k}‖)`
/// over the same triplets. By the triangle inequality this is ≥
/// [`simplified_triplet`] for any prototype placement.
pub fn prototype_triplet_bound(o: &Matrix, labels: &[usize], prototypes: &Matrix) -> f32 {
    let n = o.rows();
    assert_eq!(labels.len(), n);
    let mut total = 0.0;
    for i in 0..n {
        let zi = prototypes.row(labels[i]);
        for j in 0..n {
            if labels[j] != labels[i] {
                continue;
            }
            for k in 0..n {
                if labels[k] == labels[i] {
                    continue;
                }
                let zk = prototypes.row(labels[k]);
                let pos = l2(o.row(i), zi) + l2(o.row(j), zi);
                let neg = l2(o.row(i), zk) - l2(o.row(k), zk);
                total += pos - neg;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::{randn, rng};

    #[test]
    fn gamma_zero_gives_uniform_weights() {
        let w = class_weights(&[100, 10, 1], 0.0);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn high_gamma_upweights_tail() {
        let w = class_weights(&[1000, 100, 10], 0.999);
        assert!(w[2] > w[1] && w[1] > w[0], "{w:?}");
        // Near-inverse-frequency: w ∝ 1/π approximately.
        let ratio = w[2] / w[0];
        assert!(ratio > 10.0, "tail/head ratio only {ratio}");
    }

    #[test]
    fn weights_normalized_to_mean_one() {
        let w = class_weights(&[500, 50, 5, 1], 0.99);
        let mean: f32 = w.iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_classes_get_zero_weight() {
        let w = class_weights(&[10, 0, 5], 0.9);
        assert_eq!(w[1], 0.0);
        assert!(w[0] > 0.0 && w[2] > 0.0);
    }

    #[test]
    fn loss_components_finite_and_combined() {
        let mut r = rng(1);
        let n = 8;
        let c = 4;
        let d = 6;
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let weights = class_weights(&[4, 2, 1, 1], 0.99);

        let mut tape = Tape::new();
        let logits = {
            let m = randn(n, c, &mut r);
            tape.constant(m)
        };
        let o = {
            let m = randn(n, d, &mut r);
            tape.constant(m)
        };
        let protos = {
            let m = randn(c, d, &mut r);
            tape.constant(m)
        };
        let (total, b) = lightlt_loss(&mut tape, logits, o, protos, &labels, &weights, 0.5, 1.0);
        assert!(b.ce.is_finite() && b.center.is_finite() && b.ranking.is_finite());
        assert!((b.total - (b.ce + 0.5 * (b.center + b.ranking))).abs() < 1e-4);
        assert_eq!(tape.value(total)[(0, 0)], b.total);
        assert!(b.center >= 0.0, "center loss is a squared norm");
        assert!(b.ranking >= 0.0, "ranking loss is an NLL");
    }

    #[test]
    fn alpha_zero_reduces_to_ce() {
        let mut r = rng(2);
        let labels = vec![0usize, 1];
        let weights = vec![1.0, 1.0];
        let mut tape = Tape::new();
        let logits = tape.constant(randn(2, 2, &mut r));
        let o = tape.constant(randn(2, 3, &mut r));
        let protos = tape.constant(randn(2, 3, &mut r));
        let (_, b) = lightlt_loss(&mut tape, logits, o, protos, &labels, &weights, 0.0, 1.0);
        assert!((b.total - b.ce).abs() < 1e-6);
    }

    #[test]
    fn perfect_prototype_alignment_minimizes_center() {
        // o exactly at prototypes ⇒ center = 0 and ranking below ln(C).
        let protos_m = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0]]);
        let labels = vec![0usize, 1];
        let mut tape = Tape::new();
        let logits = tape.constant(Matrix::from_rows(&[&[5.0, -5.0], &[-5.0, 5.0]]));
        let o = tape.constant(protos_m.clone());
        let protos = tape.constant(protos_m);
        let (_, b) =
            lightlt_loss(&mut tape, logits, o, protos, &labels, &[1.0, 1.0], 1.0, 1.0);
        assert!(b.center < 1e-10);
        assert!(b.ranking < (2.0f32).ln());
    }

    #[test]
    fn proposition1_bound_holds_on_random_data() {
        // The triangle-inequality chain of the proof must hold exactly.
        for seed in 0..5 {
            let mut r = rng(seed);
            let o = randn(9, 4, &mut r);
            let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
            let protos = randn(3, 4, &mut r);
            let lhs = simplified_triplet(&o, &labels);
            let rhs = prototype_triplet_bound(&o, &labels, &protos);
            assert!(
                lhs <= rhs + 1e-3,
                "Proposition 1 violated: triplet {lhs} > bound {rhs} (seed {seed})"
            );
        }
    }

    #[test]
    fn triplet_zero_when_single_class() {
        let o = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        assert_eq!(simplified_triplet(&o, &[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0, 1)")]
    fn rejects_gamma_out_of_range() {
        let _ = class_weights(&[1], 1.0);
    }
}
