//! LightLT hyper-parameters.

use std::fmt;

use lt_linalg::Metric;
use serde::{Deserialize, Serialize};

/// A rejected configuration: which field was invalid and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending field.
    pub field: &'static str,
    /// Human-readable constraint that was violated.
    pub reason: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Fault-tolerance policy for the training loop: what happens when a step
/// produces a non-finite loss/gradient or the loss diverges.
///
/// On a tripped guard the trainer restores the last-good parameter and
/// optimizer snapshot (taken at the start of the epoch), scales the
/// learning rate down by [`lr_backoff`](Self::lr_backoff), reshuffles the
/// epoch's data order, and retries; after
/// [`max_retries`](Self::max_retries) cumulative retries it gives up with
/// [`TrainError::RetriesExhausted`](crate::fault::TrainError::RetriesExhausted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Maximum cumulative epoch retries before training fails.
    pub max_retries: usize,
    /// Multiplier applied to the learning rate on every retry (in `(0, 1]`).
    pub lr_backoff: f32,
    /// A step loss exceeding `divergence_factor ×` the best loss seen so
    /// far (after a one-epoch grace period) counts as divergence.
    pub divergence_factor: f32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self { max_retries: 3, lr_backoff: 0.5, divergence_factor: 25.0 }
    }
}

/// How effective codebooks are derived from the learnable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodebookTopology {
    /// Double Skip Quantization (Eqn. 10): `C_k = FFN(C_{k−1})·g_k + P_k`.
    /// The second "skip" — a gradient highway across codebooks.
    DoubleSkip,
    /// Vanilla residual mechanism (the Table-IV ablation baseline):
    /// `C_k = P_k`, keeping only the first skip (residual stacking).
    VanillaResidual,
}

/// Learning-rate schedule selector (mirrors Section V-A4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Cosine annealing with warmup (used on the image datasets).
    Cosine,
    /// Linear decay with warmup (used on the text datasets).
    Linear,
    /// Constant (ablations).
    Constant,
}

/// Full configuration of a LightLT model and its training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LightLtConfig {
    /// Input (pretrained-embedding) dimensionality.
    pub input_dim: usize,
    /// Hidden width of the backbone MLP.
    pub backbone_hidden: usize,
    /// Continuous representation dimensionality `d` (DSQ operates here).
    pub embed_dim: usize,
    /// Number of classes `C`.
    pub num_classes: usize,
    /// Number of encoder–decoder pairs / codebooks `M`.
    pub num_codebooks: usize,
    /// Codewords per codebook `K`.
    pub num_codewords: usize,
    /// Hidden width of the codebook-skip FFN (Eqn. 10).
    pub ffn_hidden: usize,
    /// Codebook topology: DSQ or the vanilla-residual ablation.
    pub topology: CodebookTopology,
    /// Fraction of training steps during which the codebook-skip parameters
    /// (gates + FFN) stay frozen. DSQ then starts exactly as the vanilla
    /// residual topology and learns the skip as a late refinement, which
    /// keeps the early residual-quantization phase stable.
    pub skip_warmup_fraction: f32,
    /// Tempered-softmax temperature `t` (Eqn. 5); smaller = harder.
    pub temperature: f32,
    /// Class-weight hyper-parameter `γ ∈ [0, 1)` (Eqn. 12); 0 disables
    /// re-weighting (plain cross-entropy).
    pub gamma: f32,
    /// Weight `α` of the center + ranking losses (Eqn. 15); 0 trains with
    /// cross-entropy only (the Fig.-5 ablation).
    pub alpha: f32,
    /// Ranking-loss temperature `τ` (Eqn. 14).
    pub tau: f32,
    /// Similarity used for codeword selection (Eqn. 3).
    pub metric: Metric,
    /// Training epochs per base model.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (paper: 5e-5 image, 1e-5 text — our scaled
    /// substrate trains with a larger default).
    pub learning_rate: f32,
    /// LR schedule family.
    pub schedule: ScheduleKind,
    /// Warmup fraction of total steps.
    pub warmup_fraction: f32,
    /// Gradient-norm clip (0 disables clipping).
    pub grad_clip: f32,
    /// Number of ensemble base models `n` (1 = no ensemble).
    pub ensemble_size: usize,
    /// Epochs each ensemble branch trains after diverging from the shared
    /// stage (see `ensemble::train_ensemble` for the staging rationale).
    pub ensemble_branch_epochs: usize,
    /// Standard deviation of the per-branch head perturbation (simulates
    /// the paper's "different initializations" of the quantization module).
    pub ensemble_perturb_std: f32,
    /// DSQ fine-tuning epochs after weight averaging (Algorithm 1 line 8).
    pub finetune_epochs: usize,
    /// Whether the fine-tuning stage also updates the class prototypes
    /// (the paper freezes everything but DSQ; prototypes stay frozen by
    /// default).
    pub finetune_prototypes: bool,
    /// RNG seed for the first base model; base model `i` uses `seed + i`.
    pub seed: u64,
    /// NaN/divergence guard policy (absent in older serialized configs, in
    /// which case the default applies).
    #[serde(default)]
    pub fault: FaultPolicy,
    /// Worker threads for the deterministic parallel runtime
    /// (`lt_runtime`): `0` resolves from the `LT_THREADS` environment
    /// variable or the machine's available parallelism. Every parallel
    /// kernel is bitwise deterministic with respect to the thread count,
    /// so this knob changes speed only, never results — checkpoint
    /// compatibility checks deliberately ignore it.
    #[serde(default)]
    pub threads: usize,
}

impl Default for LightLtConfig {
    fn default() -> Self {
        Self {
            input_dim: 64,
            backbone_hidden: 128,
            embed_dim: 32,
            num_classes: 10,
            // Paper default: 32-bit codes = 4 codebooks × 256 codewords.
            num_codebooks: 4,
            num_codewords: 256,
            ffn_hidden: 64,
            topology: CodebookTopology::DoubleSkip,
            skip_warmup_fraction: 0.5,
            temperature: 0.2,
            gamma: 0.99,
            alpha: 0.01,
            tau: 1.0,
            metric: Metric::NegSquaredL2,
            epochs: 20,
            batch_size: 64,
            learning_rate: 3e-3,
            schedule: ScheduleKind::Cosine,
            warmup_fraction: 0.05,
            grad_clip: 5.0,
            ensemble_size: 4,
            ensemble_branch_epochs: 6,
            ensemble_perturb_std: 0.02,
            finetune_epochs: 5,
            finetune_prototypes: false,
            seed: 17,
            fault: FaultPolicy::default(),
            threads: 0,
        }
    }
}

impl LightLtConfig {
    /// Validates invariants; call before training or restoring a bundle.
    ///
    /// # Errors
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn err(field: &'static str, reason: impl Into<String>) -> Result<(), ConfigError> {
            Err(ConfigError { field, reason: reason.into() })
        }
        if self.input_dim == 0 {
            return err("input_dim", "must be positive");
        }
        if self.backbone_hidden == 0 {
            return err("backbone_hidden", "must be positive");
        }
        if self.embed_dim == 0 {
            return err("embed_dim", "must be positive");
        }
        if self.num_classes < 2 {
            return err("num_classes", "need at least two classes");
        }
        if self.num_codebooks == 0 {
            return err("num_codebooks", "need at least one codebook");
        }
        if self.num_codewords < 2 {
            return err("num_codewords", "need at least two codewords");
        }
        if self.ffn_hidden == 0 {
            return err("ffn_hidden", "must be positive");
        }
        if self.temperature.is_nan() || self.temperature <= 0.0 {
            return err("temperature", "must be positive");
        }
        if !(0.0..1.0).contains(&self.gamma) {
            return err("gamma", "must be in [0, 1)");
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return err("alpha", "must be non-negative and finite");
        }
        if self.tau.is_nan() || self.tau <= 0.0 {
            return err("tau", "must be positive");
        }
        if self.epochs == 0 {
            return err("epochs", "must be at least 1");
        }
        if self.batch_size == 0 {
            return err("batch_size", "must be positive");
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return err("learning_rate", "must be positive and finite");
        }
        if !(0.0..=1.0).contains(&self.warmup_fraction) {
            return err("warmup_fraction", "must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.skip_warmup_fraction) {
            return err("skip_warmup_fraction", "must be in [0, 1]");
        }
        if self.grad_clip.is_nan() || self.grad_clip < 0.0 {
            return err("grad_clip", "must be non-negative (0 disables clipping)");
        }
        if self.ensemble_size == 0 {
            return err("ensemble_size", "must be >= 1");
        }
        if self.ensemble_perturb_std.is_nan() || self.ensemble_perturb_std < 0.0 {
            return err("ensemble_perturb_std", "must be non-negative");
        }
        if !(self.fault.lr_backoff > 0.0 && self.fault.lr_backoff <= 1.0) {
            return err("fault.lr_backoff", "must be in (0, 1]");
        }
        if self.fault.divergence_factor.is_nan() || self.fault.divergence_factor <= 1.0 {
            return err("fault.divergence_factor", "must exceed 1");
        }
        if self.threads > lt_runtime::MAX_THREADS {
            return err(
                "threads",
                format!("must be at most {} (0 = auto)", lt_runtime::MAX_THREADS),
            );
        }
        Ok(())
    }

    /// Encoded size of one item in bits: `M · log2(K)`.
    pub fn code_bits(&self) -> usize {
        self.num_codebooks * (self.num_codewords as f64).log2().ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_32_bits() {
        let c = LightLtConfig::default();
        c.validate().unwrap();
        // Paper setting: 4 codebooks × 256 codewords = 32-bit codes.
        assert_eq!(c.code_bits(), 32);
    }

    #[test]
    fn code_bits_rounds_up() {
        let c = LightLtConfig { num_codebooks: 3, num_codewords: 100, ..Default::default() };
        // log2(100) = 6.64 → 7 bits each.
        assert_eq!(c.code_bits(), 21);
    }

    /// Table test over every degenerate setting `validate` must reject.
    #[test]
    fn rejects_degenerate_configs() {
        let cases: Vec<(&'static str, LightLtConfig)> = vec![
            ("input_dim", LightLtConfig { input_dim: 0, ..Default::default() }),
            ("backbone_hidden", LightLtConfig { backbone_hidden: 0, ..Default::default() }),
            ("embed_dim", LightLtConfig { embed_dim: 0, ..Default::default() }),
            ("num_classes", LightLtConfig { num_classes: 1, ..Default::default() }),
            ("num_codebooks", LightLtConfig { num_codebooks: 0, ..Default::default() }),
            ("num_codewords", LightLtConfig { num_codewords: 1, ..Default::default() }),
            ("ffn_hidden", LightLtConfig { ffn_hidden: 0, ..Default::default() }),
            ("temperature", LightLtConfig { temperature: 0.0, ..Default::default() }),
            ("temperature", LightLtConfig { temperature: f32::NAN, ..Default::default() }),
            ("gamma", LightLtConfig { gamma: 1.0, ..Default::default() }),
            ("gamma", LightLtConfig { gamma: -0.1, ..Default::default() }),
            ("alpha", LightLtConfig { alpha: -0.5, ..Default::default() }),
            ("tau", LightLtConfig { tau: 0.0, ..Default::default() }),
            ("epochs", LightLtConfig { epochs: 0, ..Default::default() }),
            ("batch_size", LightLtConfig { batch_size: 0, ..Default::default() }),
            ("learning_rate", LightLtConfig { learning_rate: 0.0, ..Default::default() }),
            ("learning_rate", LightLtConfig { learning_rate: -1e-3, ..Default::default() }),
            (
                "learning_rate",
                LightLtConfig { learning_rate: f32::INFINITY, ..Default::default() },
            ),
            ("warmup_fraction", LightLtConfig { warmup_fraction: 1.5, ..Default::default() }),
            (
                "skip_warmup_fraction",
                LightLtConfig { skip_warmup_fraction: -0.2, ..Default::default() },
            ),
            ("grad_clip", LightLtConfig { grad_clip: -1.0, ..Default::default() }),
            ("ensemble_size", LightLtConfig { ensemble_size: 0, ..Default::default() }),
            (
                "fault.lr_backoff",
                LightLtConfig {
                    fault: FaultPolicy { lr_backoff: 0.0, ..Default::default() },
                    ..Default::default()
                },
            ),
            (
                "fault.divergence_factor",
                LightLtConfig {
                    fault: FaultPolicy { divergence_factor: 1.0, ..Default::default() },
                    ..Default::default()
                },
            ),
            (
                "threads",
                LightLtConfig { threads: lt_runtime::MAX_THREADS + 1, ..Default::default() },
            ),
        ];
        for (field, config) in cases {
            let got = config.validate().expect_err(field).field;
            assert_eq!(got, field, "wrong field blamed");
        }
    }

    #[test]
    fn config_error_display_names_field() {
        let err = LightLtConfig { gamma: 1.0, ..Default::default() }.validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gamma") && msg.contains("[0, 1)"), "{msg}");
    }

    #[test]
    fn serde_roundtrip() {
        let c = LightLtConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: LightLtConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    /// Configs serialized before the fault policy existed must still load,
    /// picking up the default policy.
    #[test]
    fn serde_defaults_missing_fault_policy() {
        let mut v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&LightLtConfig::default()).unwrap())
                .unwrap();
        v.as_object_mut().unwrap().remove("fault");
        let back: LightLtConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back.fault, FaultPolicy::default());
    }
}
