//! LightLT hyper-parameters.

use lt_linalg::Metric;
use serde::{Deserialize, Serialize};

/// How effective codebooks are derived from the learnable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodebookTopology {
    /// Double Skip Quantization (Eqn. 10): `C_k = FFN(C_{k−1})·g_k + P_k`.
    /// The second "skip" — a gradient highway across codebooks.
    DoubleSkip,
    /// Vanilla residual mechanism (the Table-IV ablation baseline):
    /// `C_k = P_k`, keeping only the first skip (residual stacking).
    VanillaResidual,
}

/// Learning-rate schedule selector (mirrors Section V-A4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Cosine annealing with warmup (used on the image datasets).
    Cosine,
    /// Linear decay with warmup (used on the text datasets).
    Linear,
    /// Constant (ablations).
    Constant,
}

/// Full configuration of a LightLT model and its training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LightLtConfig {
    /// Input (pretrained-embedding) dimensionality.
    pub input_dim: usize,
    /// Hidden width of the backbone MLP.
    pub backbone_hidden: usize,
    /// Continuous representation dimensionality `d` (DSQ operates here).
    pub embed_dim: usize,
    /// Number of classes `C`.
    pub num_classes: usize,
    /// Number of encoder–decoder pairs / codebooks `M`.
    pub num_codebooks: usize,
    /// Codewords per codebook `K`.
    pub num_codewords: usize,
    /// Hidden width of the codebook-skip FFN (Eqn. 10).
    pub ffn_hidden: usize,
    /// Codebook topology: DSQ or the vanilla-residual ablation.
    pub topology: CodebookTopology,
    /// Fraction of training steps during which the codebook-skip parameters
    /// (gates + FFN) stay frozen. DSQ then starts exactly as the vanilla
    /// residual topology and learns the skip as a late refinement, which
    /// keeps the early residual-quantization phase stable.
    pub skip_warmup_fraction: f32,
    /// Tempered-softmax temperature `t` (Eqn. 5); smaller = harder.
    pub temperature: f32,
    /// Class-weight hyper-parameter `γ ∈ [0, 1)` (Eqn. 12); 0 disables
    /// re-weighting (plain cross-entropy).
    pub gamma: f32,
    /// Weight `α` of the center + ranking losses (Eqn. 15); 0 trains with
    /// cross-entropy only (the Fig.-5 ablation).
    pub alpha: f32,
    /// Ranking-loss temperature `τ` (Eqn. 14).
    pub tau: f32,
    /// Similarity used for codeword selection (Eqn. 3).
    pub metric: Metric,
    /// Training epochs per base model.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (paper: 5e-5 image, 1e-5 text — our scaled
    /// substrate trains with a larger default).
    pub learning_rate: f32,
    /// LR schedule family.
    pub schedule: ScheduleKind,
    /// Warmup fraction of total steps.
    pub warmup_fraction: f32,
    /// Gradient-norm clip (0 disables clipping).
    pub grad_clip: f32,
    /// Number of ensemble base models `n` (1 = no ensemble).
    pub ensemble_size: usize,
    /// Epochs each ensemble branch trains after diverging from the shared
    /// stage (see `ensemble::train_ensemble` for the staging rationale).
    pub ensemble_branch_epochs: usize,
    /// Standard deviation of the per-branch head perturbation (simulates
    /// the paper's "different initializations" of the quantization module).
    pub ensemble_perturb_std: f32,
    /// DSQ fine-tuning epochs after weight averaging (Algorithm 1 line 8).
    pub finetune_epochs: usize,
    /// Whether the fine-tuning stage also updates the class prototypes
    /// (the paper freezes everything but DSQ; prototypes stay frozen by
    /// default).
    pub finetune_prototypes: bool,
    /// RNG seed for the first base model; base model `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for LightLtConfig {
    fn default() -> Self {
        Self {
            input_dim: 64,
            backbone_hidden: 128,
            embed_dim: 32,
            num_classes: 10,
            // Paper default: 32-bit codes = 4 codebooks × 256 codewords.
            num_codebooks: 4,
            num_codewords: 256,
            ffn_hidden: 64,
            topology: CodebookTopology::DoubleSkip,
            skip_warmup_fraction: 0.5,
            temperature: 0.2,
            gamma: 0.99,
            alpha: 0.01,
            tau: 1.0,
            metric: Metric::NegSquaredL2,
            epochs: 20,
            batch_size: 64,
            learning_rate: 3e-3,
            schedule: ScheduleKind::Cosine,
            warmup_fraction: 0.05,
            grad_clip: 5.0,
            ensemble_size: 4,
            ensemble_branch_epochs: 6,
            ensemble_perturb_std: 0.02,
            finetune_epochs: 5,
            finetune_prototypes: false,
            seed: 17,
        }
    }
}

impl LightLtConfig {
    /// Validates invariants; call before training.
    ///
    /// # Panics
    /// Panics with a descriptive message on any invalid setting.
    pub fn validate(&self) {
        assert!(self.input_dim > 0, "input_dim must be positive");
        assert!(self.embed_dim > 0, "embed_dim must be positive");
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(self.num_codebooks >= 1, "need at least one codebook");
        assert!(self.num_codewords >= 2, "need at least two codewords");
        assert!(self.temperature > 0.0, "temperature must be positive");
        assert!((0.0..1.0).contains(&self.gamma), "gamma must be in [0, 1)");
        assert!(self.alpha >= 0.0, "alpha must be non-negative");
        assert!(self.tau > 0.0, "tau must be positive");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.learning_rate > 0.0, "learning_rate must be positive");
        assert!(self.ensemble_size >= 1, "ensemble_size must be >= 1");
    }

    /// Encoded size of one item in bits: `M · log2(K)`.
    pub fn code_bits(&self) -> usize {
        self.num_codebooks * (self.num_codewords as f64).log2().ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_32_bits() {
        let c = LightLtConfig::default();
        c.validate();
        // Paper setting: 4 codebooks × 256 codewords = 32-bit codes.
        assert_eq!(c.code_bits(), 32);
    }

    #[test]
    fn code_bits_rounds_up() {
        let c = LightLtConfig { num_codebooks: 3, num_codewords: 100, ..Default::default() };
        // log2(100) = 6.64 → 7 bits each.
        assert_eq!(c.code_bits(), 21);
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0, 1)")]
    fn rejects_gamma_one() {
        let c = LightLtConfig { gamma: 1.0, ..Default::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_zero_temperature() {
        let c = LightLtConfig { temperature: 0.0, ..Default::default() };
        c.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let c = LightLtConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: LightLtConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_codebooks, c.num_codebooks);
        assert_eq!(back.topology, c.topology);
    }
}
