//! Quantized database index (the workflow of Fig. 3).
//!
//! Indexing stores, per database item, only the `M` codeword ids plus the
//! squared norm of its reconstruction (`‖Σ_j o_j‖²`, one float — Eqn. 24's
//! third term). Together with the `M` codebooks this is everything ADC
//! search needs.
//!
//! Codes are held level-major ([`lt_linalg::LevelCodes`]: one contiguous
//! `u8`/`u16` stream per codebook level) so the `O(nM)` scan phase runs on
//! the blocked cache-conscious kernels in [`lt_linalg::scan`]. The `M`
//! codebooks are additionally kept stacked into one `(M·K) × d` matrix so a
//! batch of queries can build all its lookup tables with a single GEMM.

use lt_linalg::gemm::dot;
use lt_linalg::{LevelCodes, Matrix, Metric};
use lt_tensor::ParamStore;

use crate::complexity::ComplexityModel;
use crate::dsq::{Codes, Dsq};

/// An immutable quantized index over a database of embeddings.
#[derive(Debug, Clone)]
pub struct QuantizedIndex {
    codebooks: Vec<Matrix>,
    /// Level-major codeword ids (the scan layout).
    codes: LevelCodes,
    /// All codebooks stacked into one `(M·K) × d` matrix (row `m·K + j` is
    /// codebook `m`'s codeword `j`), so batch LUT construction is one GEMM.
    lut_stack: Matrix,
    /// Per-item `‖o_i‖²` (reconstruction norms; Eqn. 24).
    recon_norms_sq: Vec<f32>,
    metric: Metric,
    dim: usize,
    num_codewords: usize,
}

/// Stacks `M` `K × d` codebooks into one `(M·K) × d` matrix.
fn stack_codebooks(codebooks: &[Matrix]) -> Matrix {
    let k = codebooks[0].rows();
    let d = codebooks[0].cols();
    let mut data = Vec::with_capacity(codebooks.len() * k * d);
    for cb in codebooks {
        data.extend_from_slice(cb.as_slice());
    }
    Matrix::from_vec(codebooks.len() * k, d, data)
}

impl QuantizedIndex {
    /// Builds the index from a trained DSQ module and database embeddings
    /// (`n × d`, already passed through the backbone).
    pub fn build(dsq: &Dsq, store: &ParamStore, embeddings: &Matrix) -> Self {
        let codebooks = dsq.effective_codebooks(store);
        let codes = dsq.encode_with_codebooks(&codebooks, embeddings);
        let recon = dsq.decode_with_codebooks(&codebooks, &codes);
        let recon_norms_sq = (0..recon.rows()).map(|i| dot(recon.row(i), recon.row(i))).collect();
        Self::from_parts(
            codebooks,
            codes,
            recon_norms_sq,
            dsq.metric(),
            dsq.dim(),
            dsq.num_codewords(),
        )
    }

    /// Reassembles an index from stored parts (the persistence path).
    ///
    /// Callers are responsible for internal consistency (codes within
    /// `[0, K)`, norms matching the reconstructions); the persistence layer
    /// guarantees this for images it wrote itself.
    pub fn from_parts(
        codebooks: Vec<Matrix>,
        codes: Codes,
        recon_norms_sq: Vec<f32>,
        metric: Metric,
        dim: usize,
        num_codewords: usize,
    ) -> Self {
        assert_eq!(codes.num_codebooks(), codebooks.len(), "codebook count mismatch");
        let level_codes = codes.to_level_codes(num_codewords);
        Self::from_level_parts(codebooks, level_codes, recon_norms_sq, metric, dim, num_codewords)
    }

    /// Reassembles an index from parts with codes already level-major (the
    /// native layout — no transpose).
    pub fn from_level_parts(
        codebooks: Vec<Matrix>,
        codes: LevelCodes,
        recon_norms_sq: Vec<f32>,
        metric: Metric,
        dim: usize,
        num_codewords: usize,
    ) -> Self {
        assert_eq!(codes.num_codebooks(), codebooks.len(), "codebook count mismatch");
        assert_eq!(codes.len(), recon_norms_sq.len(), "norm count mismatch");
        assert_eq!(codes.num_codewords(), num_codewords, "codeword count mismatch");
        assert!(codebooks.iter().all(|c| c.shape() == (num_codewords, dim)));
        let lut_stack = stack_codebooks(&codebooks);
        Self { codebooks, codes, lut_stack, recon_norms_sq, metric, dim, num_codewords }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of codebooks `M`.
    pub fn num_codebooks(&self) -> usize {
        self.codebooks.len()
    }

    /// Codewords per codebook `K`.
    pub fn num_codewords(&self) -> usize {
        self.num_codewords
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Ranking metric the index was built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The stored codes in the item-major interchange layout (`O(nM)`
    /// transpose; diagnostics and the training-side codec path).
    pub fn codes(&self) -> Codes {
        Codes::from_level_codes(&self.codes)
    }

    /// The stored codes in their native level-major scan layout.
    pub fn level_codes(&self) -> &LevelCodes {
        &self.codes
    }

    /// The effective codebooks.
    pub fn codebooks(&self) -> &[Matrix] {
        &self.codebooks
    }

    /// The codebooks stacked into one `(M·K) × d` matrix (row `m·K + j` is
    /// codebook `m`'s codeword `j`) — the layout
    /// [`lt_linalg::ScanBackend`] LUT builds run against.
    pub fn lut_stack(&self) -> &Matrix {
        &self.lut_stack
    }

    /// Item `i`'s codeword ids in item-major order (`M` entries; `O(M)`).
    pub fn item_codes(&self, i: usize) -> Vec<u16> {
        (0..self.num_codebooks()).map(|level| self.codes.code(i, level)).collect()
    }

    /// Stored reconstruction norm of item `i`.
    pub fn recon_norm_sq(&self, i: usize) -> f32 {
        self.recon_norms_sq[i]
    }

    /// All stored reconstruction norms (`‖o_i‖²`, one per item).
    pub fn recon_norms_sq(&self) -> &[f32] {
        &self.recon_norms_sq
    }

    /// Reconstructs item `i`'s embedding (decode path; test/diagnostic use).
    pub fn reconstruct_item(&self, i: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for (level, cb) in self.codebooks.iter().enumerate() {
            let id = self.codes.code(i, level) as usize;
            for (v, &c) in out.iter_mut().zip(cb.row(id)) {
                *v += c;
            }
        }
        out
    }

    /// Analytic cost model for this index.
    pub fn complexity(&self) -> ComplexityModel {
        ComplexityModel::new(self.dim, self.num_codebooks(), self.num_codewords, self.len().max(1))
    }

    /// Actual bytes this index needs for search-time storage, using the
    /// paper's accounting: packed codes + one f32 norm per item + codebooks.
    pub fn storage_bytes(&self) -> usize {
        let codebooks = 4 * self.num_codewords * self.num_codebooks() * self.dim;
        let bits = crate::codec::bits_per_id(self.num_codewords) as usize;
        let codes = (self.len() * self.num_codebooks() * bits).div_ceil(8);
        let norms = 4 * self.len();
        codebooks + codes + norms
    }

    /// Appends new embeddings to the index (incremental indexing).
    ///
    /// The index owns the effective codebooks, so it can encode new items
    /// itself with the same greedy residual selection the DSQ encoder uses;
    /// codes and norms of existing items are untouched. Each new item costs
    /// `O(MKd)` to encode plus `O(M)` pushes into the level streams — the
    /// stored code table is never rebuilt. Returns the ids assigned to the
    /// new items.
    pub fn append(&mut self, embeddings: &Matrix) -> std::ops::Range<usize> {
        assert_eq!(embeddings.cols(), self.dim, "embedding dimension mismatch");
        let start = self.len();
        for i in 0..embeddings.rows() {
            let (item, norm_sq) = self.encode_item(embeddings.row(i));
            self.codes.push_item(&item);
            self.recon_norms_sq.push(norm_sq);
        }
        start..self.len()
    }

    /// Encodes one embedding row with the same greedy residual selection
    /// [`QuantizedIndex::append`] uses, without storing it: returns the
    /// item-major codes and the reconstruction norm `‖o‖²`.
    ///
    /// The result depends only on the row, the codebooks, and the metric —
    /// never on the items already stored — so any index sharing these
    /// codebooks (e.g. the shards of a partitioned index) encodes a row
    /// bit-for-bit identically.
    pub fn encode_item(&self, row: &[f32]) -> (Vec<u16>, f32) {
        assert_eq!(row.len(), self.dim, "embedding dimension mismatch");
        let mut item = vec![0u16; self.num_codebooks()];
        let mut residual = row.to_vec();
        let mut recon = vec![0.0f32; self.dim];
        for (level, cb) in self.codebooks.iter().enumerate() {
            let mut best = 0usize;
            let mut best_s = f32::NEG_INFINITY;
            for j in 0..self.num_codewords {
                let s = lt_linalg::distance::similarity(self.metric, &residual, cb.row(j));
                if s > best_s {
                    best_s = s;
                    best = j;
                }
            }
            item[level] = best as u16;
            for ((r, o), &c) in residual.iter_mut().zip(recon.iter_mut()).zip(cb.row(best)) {
                *r -= c;
                *o += c;
            }
        }
        (item, dot(&recon, &recon))
    }

    /// Appends an item that is already encoded (codes + reconstruction
    /// norm) without re-encoding it — `O(M)`. Returns the assigned id.
    /// Used when items move between partitions of a sharded index: copying
    /// codes verbatim keeps every score bit-for-bit stable.
    ///
    /// # Panics
    /// Panics if `codes` has the wrong length or an out-of-range id.
    pub fn push_encoded(&mut self, codes: &[u16], norm_sq: f32) -> usize {
        self.codes.push_item(codes);
        self.recon_norms_sq.push(norm_sq);
        self.len() - 1
    }

    /// Overwrites slot `i` with an already-encoded item in place (`O(M)`).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds, `codes` has the wrong length, or an
    /// id is out of range.
    pub fn set_encoded(&mut self, i: usize, codes: &[u16], norm_sq: f32) {
        self.codes.set_item(i, codes);
        self.recon_norms_sq[i] = norm_sq;
    }

    /// An empty index sharing this one's codebooks, metric, and shape —
    /// the seed for one shard of a partitioned index.
    pub fn empty_like(&self) -> Self {
        Self {
            codebooks: self.codebooks.clone(),
            codes: LevelCodes::new(self.num_codebooks(), self.num_codewords),
            lut_stack: self.lut_stack.clone(),
            recon_norms_sq: Vec::new(),
            metric: self.metric,
            dim: self.dim,
            num_codewords: self.num_codewords,
        }
    }

    /// Removes an item by swapping in the last one (`O(M)`: one
    /// `swap_remove` per level stream): the returned value is the id of the
    /// item that moved into `i`'s slot (or `None` when `i` was the last
    /// item).
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) -> Option<usize> {
        let n = self.len();
        assert!(i < n, "remove index {i} out of bounds ({n} items)");
        let last = n - 1;
        self.codes.swap_remove(i);
        let moved = if i != last {
            self.recon_norms_sq[i] = self.recon_norms_sq[last];
            Some(last)
        } else {
            None
        };
        self.recon_norms_sq.truncate(last);
        moved
    }

    /// Builds the query→codeword inner-product lookup table (`M × K`),
    /// the `O(dMK)` phase of Section IV-B.
    pub fn build_lut(&self, query: &[f32]) -> Vec<f32> {
        let mut lut = Vec::new();
        self.build_lut_into(query, &mut lut);
        lut
    }

    /// Builds the LUT into a caller-provided buffer (no allocation once the
    /// buffer has grown to `M·K`).
    ///
    /// Each entry is `dot(query, codeword)` computed with the same kernel
    /// as [`QuantizedIndex::build_lut_batch`], so the two construction paths
    /// are bitwise identical.
    pub fn build_lut_into(&self, query: &[f32], lut: &mut Vec<f32>) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let m = self.num_codebooks();
        let k = self.num_codewords;
        lut.clear();
        lut.resize(m * k, 0.0);
        for (level, cb) in self.codebooks.iter().enumerate() {
            let base = level * k;
            for j in 0..k {
                lut[base + j] = dot(query, cb.row(j));
            }
        }
    }

    /// Builds the LUTs of a whole query batch in one GEMM: row `i` of the
    /// result is the flattened `M·K` LUT of query `i`.
    ///
    /// The codebooks are pre-stacked into one `(M·K) × d` matrix at
    /// construction time, so the whole batch is a single
    /// `queries × stackᵀ` multiply on the shared parallel runtime. The
    /// GEMM kernel computes each entry with the same `dot` used by
    /// [`QuantizedIndex::build_lut`], so batched LUTs are bitwise identical
    /// to per-query ones.
    pub fn build_lut_batch(&self, queries: &Matrix) -> Matrix {
        assert_eq!(queries.cols(), self.dim, "query dimension mismatch");
        lt_linalg::gemm::matmul_a_bt(queries, &self.lut_stack)
    }

    /// Scores every item against a prebuilt LUT (the `O(nM)` phase).
    ///
    /// For [`Metric::NegSquaredL2`], the score is
    /// `−‖q − o_i‖² = 2·Σ_m LUT[m][code] − ‖o_i‖² − ‖q‖²`; for inner-product
    /// metrics it is `Σ_m LUT[m][code]`. Higher = more similar.
    ///
    /// Runs on the cache-blocked level-major scan engine
    /// ([`lt_linalg::scan`]); per-item sums accumulate level-ascending, so
    /// scores are bitwise identical to
    /// [`QuantizedIndex::scores_with_lut_reference`].
    pub fn scores_with_lut(&self, lut: &[f32], query_norm_sq: f32, out: &mut Vec<f32>) {
        match self.metric {
            Metric::NegSquaredL2 => {
                lt_linalg::scan::adc_scores_neg_l2(
                    &self.codes,
                    lut,
                    &self.recon_norms_sq,
                    query_norm_sq,
                    out,
                );
            }
            Metric::InnerProduct | Metric::Cosine => {
                lt_linalg::scan::adc_scores_sum(&self.codes, lut, out);
            }
        }
    }

    /// Scalar item-major reference scorer: walks each item's codes in level
    /// order through [`LevelCodes::code`]. Kept as the correctness oracle
    /// (and benchmark baseline) for the blocked scan engine — the two must
    /// agree bitwise.
    pub fn scores_with_lut_reference(
        &self,
        lut: &[f32],
        query_norm_sq: f32,
        out: &mut Vec<f32>,
    ) {
        let k = self.num_codewords;
        let m = self.num_codebooks();
        out.clear();
        out.reserve(self.len());
        match self.metric {
            Metric::NegSquaredL2 => {
                for i in 0..self.len() {
                    let mut ip = 0.0f32;
                    for level in 0..m {
                        ip += lut[level * k + self.codes.code(i, level) as usize];
                    }
                    out.push(2.0 * ip - self.recon_norms_sq[i] - query_norm_sq);
                }
            }
            Metric::InnerProduct | Metric::Cosine => {
                for i in 0..self.len() {
                    let mut ip = 0.0f32;
                    for level in 0..m {
                        ip += lut[level * k + self.codes.code(i, level) as usize];
                    }
                    out.push(ip);
                }
            }
        }
    }
}

/// Partitions an index into `num_shards` shard indexes under the modulo
/// routing rule: global id `g` goes to shard `g % S` at local slot
/// `g / S`. Shards share the codebooks, and codes/norms are copied
/// verbatim (never re-encoded), so every per-item score computed against
/// a shard is bit-for-bit the score the source index would compute.
///
/// # Panics
/// Panics when `num_shards == 0`.
pub fn split_modulo(index: &QuantizedIndex, num_shards: usize) -> Vec<QuantizedIndex> {
    assert!(num_shards > 0, "need at least one shard");
    if num_shards == 1 {
        return vec![index.clone()];
    }
    let mut shards: Vec<QuantizedIndex> =
        (0..num_shards).map(|_| index.empty_like()).collect();
    for g in 0..index.len() {
        shards[g % num_shards].push_encoded(&index.item_codes(g), index.recon_norm_sq(g));
    }
    shards
}

/// Reassembles the unsharded index from modulo-routed shards — the exact
/// inverse of [`split_modulo`]: global id `g` is shard `g % S`'s local
/// item `g / S`.
///
/// # Panics
/// Panics when `shards` is empty or the per-shard item counts do not
/// form a valid round-robin partition (shard `i` must hold exactly the
/// ids congruent to `i` below the total).
pub fn merge_modulo(shards: &[&QuantizedIndex]) -> QuantizedIndex {
    assert!(!shards.is_empty(), "need at least one shard");
    if shards.len() == 1 {
        return shards[0].clone();
    }
    let s = shards.len();
    let total: usize = shards.iter().map(|x| x.len()).sum();
    for (i, shard) in shards.iter().enumerate() {
        // Ids in [0, total) congruent to i mod s.
        let expect = (total + s - 1 - i) / s;
        assert_eq!(
            shard.len(),
            expect,
            "shard {i} holds {} items where the routing rule expects {expect}",
            shard.len()
        );
    }
    let mut out = shards[0].empty_like();
    for g in 0..total {
        let shard = &shards[g % s];
        out.push_encoded(&shard.item_codes(g / s), shard.recon_norm_sq(g / s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodebookTopology;
    use lt_linalg::distance::squared_l2;
    use lt_linalg::random::{randn, rng};

    fn setup() -> (Dsq, ParamStore, Matrix) {
        let mut store = ParamStore::new();
        let mut r = rng(3);
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            6,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(40, 6, &mut rng(4)).scale(0.4);
        (dsq, store, db)
    }

    #[test]
    fn index_shapes() {
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        assert_eq!(idx.len(), 40);
        assert_eq!(idx.num_codebooks(), 3);
        assert_eq!(idx.num_codewords(), 16);
        assert_eq!(idx.dim(), 6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn lut_scores_equal_explicit_reconstructed_distances() {
        // The ADC invariant: LUT-based scores must equal the scores computed
        // against explicitly reconstructed vectors.
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        let q: Vec<f32> = (0..6).map(|i| (i as f32 - 2.5) * 0.3).collect();
        let lut = idx.build_lut(&q);
        let qn = dot(&q, &q);
        let mut scores = Vec::new();
        idx.scores_with_lut(&lut, qn, &mut scores);
        for i in 0..idx.len() {
            let recon = idx.reconstruct_item(i);
            let direct = -squared_l2(&q, &recon);
            assert!(
                (scores[i] - direct).abs() < 1e-3,
                "item {i}: LUT {} vs direct {direct}",
                scores[i]
            );
        }
    }

    #[test]
    fn recon_norms_match_reconstructions() {
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        for i in 0..idx.len() {
            let recon = idx.reconstruct_item(i);
            let n = dot(&recon, &recon);
            assert!((idx.recon_norm_sq(i) - n).abs() < 1e-4);
        }
    }

    #[test]
    fn storage_accounting_consistent_with_model() {
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        let model = idx.complexity();
        // bits_per_id = 4 for K=16.
        assert_eq!(model.bits_per_id(), 4);
        let measured = idx.storage_bytes() as f64;
        let modeled = model.quantized_bytes();
        assert!(
            (measured - modeled).abs() <= 8.0,
            "measured {measured} vs modeled {modeled}"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn inner_product_scores() {
        let mut store = ParamStore::new();
        let mut r = rng(5);
        let dsq = Dsq::new(
            &mut store,
            2,
            8,
            4,
            8,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::InnerProduct,
            &mut r,
        );
        let db = randn(10, 4, &mut rng(6));
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        let q = [1.0f32, 0.0, -1.0, 0.5];
        let lut = idx.build_lut(&q);
        let mut scores = Vec::new();
        idx.scores_with_lut(&lut, 0.0, &mut scores);
        for i in 0..idx.len() {
            let recon = idx.reconstruct_item(i);
            let direct = dot(&q, &recon);
            assert!((scores[i] - direct).abs() < 1e-4);
        }
    }

    #[test]
    fn append_matches_batch_build() {
        let (dsq, store, db) = setup();
        // Build over the first 30 items, append the remaining 10.
        let head: Vec<usize> = (0..30).collect();
        let tail: Vec<usize> = (30..40).collect();
        let mut incremental = QuantizedIndex::build(&dsq, &store, &db.select_rows(&head));
        let assigned = incremental.append(&db.select_rows(&tail));
        assert_eq!(assigned, 30..40);

        let full = QuantizedIndex::build(&dsq, &store, &db);
        assert_eq!(incremental.len(), full.len());
        for i in 0..full.len() {
            assert_eq!(incremental.codes().item(i), full.codes().item(i), "item {i}");
            assert!((incremental.recon_norm_sq(i) - full.recon_norm_sq(i)).abs() < 1e-5);
        }
    }

    #[test]
    fn encoded_transplant_preserves_scores_bitwise() {
        // Moving items between indexes that share codebooks (shard
        // maintenance) copies codes verbatim, so scores never change bits.
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        let picks = [3usize, 17, 39];
        let mut shard = idx.empty_like();
        assert!(shard.is_empty());
        assert_eq!(shard.dim(), idx.dim());
        for (slot, &i) in picks.iter().enumerate() {
            assert_eq!(shard.push_encoded(&idx.item_codes(i), idx.recon_norm_sq(i)), slot);
        }
        let q: Vec<f32> = (0..6).map(|i| (i as f32 - 2.5) * 0.3).collect();
        let qn = dot(&q, &q);
        let mut full = Vec::new();
        idx.scores_with_lut(&idx.build_lut(&q), qn, &mut full);
        let mut local = Vec::new();
        shard.scores_with_lut(&shard.build_lut(&q), qn, &mut local);
        for (s, &i) in local.iter().zip(&picks) {
            assert_eq!(s.to_bits(), full[i].to_bits(), "item {i}");
        }
    }

    #[test]
    fn set_encoded_overwrites_slot_in_place() {
        let (dsq, store, db) = setup();
        let mut idx = QuantizedIndex::build(&dsq, &store, &db);
        let codes = idx.item_codes(7);
        let norm = idx.recon_norm_sq(7);
        idx.set_encoded(2, &codes, norm);
        assert_eq!(idx.item_codes(2), codes);
        assert_eq!(idx.recon_norm_sq(2).to_bits(), norm.to_bits());
        assert_eq!(idx.len(), 40);
    }

    #[test]
    fn encode_item_matches_append() {
        let (dsq, store, db) = setup();
        let head: Vec<usize> = (0..39).collect();
        let mut grown = QuantizedIndex::build(&dsq, &store, &db.select_rows(&head));
        let (codes, norm) = grown.encode_item(db.row(39));
        grown.append(&db.select_rows(&[39]));
        assert_eq!(grown.item_codes(39), codes);
        assert_eq!(grown.recon_norm_sq(39).to_bits(), norm.to_bits());
    }

    #[test]
    fn swap_remove_keeps_search_consistent() {
        let (dsq, store, db) = setup();
        let mut idx = QuantizedIndex::build(&dsq, &store, &db);
        let moved = idx.swap_remove(5);
        assert_eq!(moved, Some(39));
        assert_eq!(idx.len(), 39);
        // Slot 5 now holds what was item 39.
        let full = QuantizedIndex::build(&dsq, &store, &db);
        assert_eq!(idx.codes().item(5), full.codes().item(39));
        // Removing the last item returns None.
        let last = idx.len() - 1;
        assert_eq!(idx.swap_remove(last), None);
        assert_eq!(idx.len(), 38);
    }

    #[test]
    fn split_merge_modulo_roundtrips() {
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        for s in [1usize, 2, 3, 8] {
            let shards = split_modulo(&idx, s);
            assert_eq!(shards.len(), s);
            assert_eq!(shards.iter().map(|x| x.len()).sum::<usize>(), idx.len());
            // Shard i's local j is global j*s + i, codes copied verbatim.
            for (i, shard) in shards.iter().enumerate() {
                for j in 0..shard.len() {
                    let g = j * s + i;
                    assert_eq!(shard.item_codes(j), idx.item_codes(g), "s={s} g={g}");
                    assert_eq!(
                        shard.recon_norm_sq(j).to_bits(),
                        idx.recon_norm_sq(g).to_bits()
                    );
                }
            }
            let shard_refs: Vec<&QuantizedIndex> = shards.iter().collect();
            let merged = merge_modulo(&shard_refs);
            assert_eq!(merged.len(), idx.len());
            for g in 0..idx.len() {
                assert_eq!(merged.item_codes(g), idx.item_codes(g), "s={s} g={g}");
                assert_eq!(merged.recon_norm_sq(g).to_bits(), idx.recon_norm_sq(g).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "routing rule expects")]
    fn merge_modulo_rejects_unbalanced_shards() {
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        // Removing from shard 0 leaves sizes (9,10,10,10); 39 items
        // round-robin would need (10,10,10,9).
        let mut shards = split_modulo(&idx, 4);
        shards[0].swap_remove(0);
        let shard_refs: Vec<&QuantizedIndex> = shards.iter().collect();
        let _ = merge_modulo(&shard_refs);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn swap_remove_bounds_checked() {
        let (dsq, store, db) = setup();
        let mut idx = QuantizedIndex::build(&dsq, &store, &db);
        let _ = idx.swap_remove(1000);
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn lut_rejects_wrong_dim() {
        let (dsq, store, db) = setup();
        let idx = QuantizedIndex::build(&dsq, &store, &db);
        let _ = idx.build_lut(&[0.0; 3]);
    }
}
