//! The assembled LightLT model (Fig. 1).
//!
//! Backbone → DSQ quantization → classification layer, trained with the
//! combined loss of Section III-D against learnable class prototypes.

use lt_linalg::Matrix;
use lt_tensor::{Init, ParamId, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backbone::{Backbone, Classifier};
use crate::config::LightLtConfig;
use crate::dsq::{Codes, Dsq};
use crate::loss::{class_weights, lightlt_loss, LossBreakdown};

/// Parameter-name prefix for the class prototypes of the center/ranking
/// losses.
pub const PROTO_PREFIX: &str = "proto.";

/// The LightLT model: layer structure plus configuration. Weights live in a
/// separate [`ParamStore`] so the ensemble step can average several stores
/// trained under the same structure.
#[derive(Debug, Clone)]
pub struct LightLt {
    /// Model/training configuration.
    pub config: LightLtConfig,
    /// Backbone `f(·)`.
    pub backbone: Backbone,
    /// DSQ quantization module.
    pub dsq: Dsq,
    /// Classification layer.
    pub classifier: Classifier,
    /// Class prototypes `z_c` (`C × embed_dim`).
    pub prototypes: ParamId,
    /// Which ensemble base model this is (also perturbs the data order).
    pub seed_offset: u64,
    /// Per-class loss weights (Eqn. 12); set from the training distribution
    /// by [`LightLt::set_class_counts`].
    class_weights: Vec<f32>,
}

impl LightLt {
    /// Builds the model structure and registers all parameters in a fresh
    /// store. The ensemble trains base model `i` with `seed_offset = i`.
    ///
    /// Seeding mirrors the paper's setting: in the paper every base model
    /// starts from the *same pretrained backbone* (ResNet34/BERT) and
    /// differs in the quantization/classifier heads and training
    /// stochasticity — weight averaging (Eqn. 23) is only meaningful when
    /// the averaged models share a loss basin. So the backbone here is
    /// seeded from `config.seed` alone, while DSQ, classifier, and
    /// prototypes are seeded from `config.seed + seed_offset`.
    /// # Panics
    /// Panics on a degenerate config — fallible entry points
    /// ([`crate::trainer::train_base_model`], [`crate::train_ensemble`])
    /// validate first and return [`crate::fault::TrainError::Config`]
    /// instead; reaching this panic means a caller skipped validation.
    pub fn new(config: &LightLtConfig, seed_offset: u64) -> (Self, ParamStore) {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let mut store = ParamStore::new();
        let mut backbone_rng = StdRng::seed_from_u64(config.seed);
        let mut head_rng = StdRng::seed_from_u64(
            config.seed.wrapping_add(seed_offset).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        );
        let backbone = Backbone::new(
            &mut store,
            config.input_dim,
            config.backbone_hidden,
            config.embed_dim,
            &mut backbone_rng,
        );
        let dsq = Dsq::new(
            &mut store,
            config.num_codebooks,
            config.num_codewords,
            config.embed_dim,
            config.ffn_hidden,
            config.topology,
            config.temperature,
            config.metric,
            &mut head_rng,
        );
        let classifier =
            Classifier::new(&mut store, config.embed_dim, config.num_classes, &mut head_rng);
        let prototypes = store.register(
            format!("{PROTO_PREFIX}z"),
            Init::Normal { std: 0.5 }.build(config.num_classes, config.embed_dim, &mut head_rng),
        );
        let model = Self {
            config: config.clone(),
            backbone,
            dsq,
            classifier,
            prototypes,
            seed_offset,
            class_weights: vec![1.0; config.num_classes],
        };
        (model, store)
    }

    /// Computes the Eqn.-12 class weights from training-set class counts.
    pub fn set_class_counts(&mut self, counts: &[usize]) {
        assert_eq!(counts.len(), self.config.num_classes, "count vector length");
        self.class_weights = class_weights(counts, self.config.gamma);
    }

    /// Current per-class loss weights.
    pub fn class_weights(&self) -> &[f32] {
        &self.class_weights
    }

    /// Builds the full training graph for one batch and returns
    /// `(tape, loss_node_backpropagated_into_store, breakdown, codes)`.
    ///
    /// The caller owns optimizer stepping; this function zero-fills nothing.
    pub fn loss_on_batch(
        &self,
        store: &mut ParamStore,
        features: &Matrix,
        labels: &[usize],
    ) -> (LossBreakdown, Codes) {
        assert_eq!(features.rows(), labels.len(), "batch size mismatch");
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let f_x = self.backbone.forward(&mut tape, store, x);
        let (o, codes) = self.dsq.forward(&mut tape, store, f_x);
        let logits = self.classifier.forward(&mut tape, store, o);
        let protos = tape.param(store, self.prototypes);
        let (loss, breakdown) = lightlt_loss(
            &mut tape,
            logits,
            o,
            protos,
            labels,
            &self.class_weights,
            self.config.alpha,
            self.config.tau,
        );
        let grads = tape.backward(loss);
        tape.accumulate_param_grads(&grads, store);
        (breakdown, codes)
    }

    /// Continuous representation `f(x)` (inference path).
    pub fn embed(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.backbone.forward_plain(store, x)
    }

    /// Quantized representation `o = Σ_k C_k[b[k]]` (inference path).
    pub fn quantized_embed(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        let f_x = self.embed(store, x);
        self.dsq.reconstruct(store, &f_x)
    }

    /// Discrete codes for items (the Fig.-3 indexing path).
    pub fn encode(&self, store: &ParamStore, x: &Matrix) -> Codes {
        let f_x = self.embed(store, x);
        self.dsq.encode(store, &f_x)
    }

    /// Class predictions from the quantized representation.
    pub fn predict(&self, store: &ParamStore, x: &Matrix) -> Vec<usize> {
        let o = self.quantized_embed(store, x);
        let logits = self.classifier.forward_plain(store, &o);
        (0..logits.rows())
            .map(|i| {
                let row = logits.row(i);
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Classification accuracy on a labeled set (training diagnostic).
    pub fn accuracy(&self, store: &ParamStore, x: &Matrix, labels: &[usize]) -> f32 {
        let preds = self.predict(store, x);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f32 / labels.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::random::{randn, rng};
    use lt_tensor::optim::{AdamW, Optimizer};

    fn tiny_config() -> LightLtConfig {
        LightLtConfig {
            input_dim: 8,
            backbone_hidden: 16,
            embed_dim: 6,
            num_classes: 3,
            num_codebooks: 2,
            num_codewords: 8,
            ffn_hidden: 8,
            epochs: 1,
            batch_size: 16,
            ensemble_size: 1,
            ..Default::default()
        }
    }

    #[test]
    fn construction_registers_all_modules() {
        let (model, store) = LightLt::new(&tiny_config(), 0);
        assert!(store.id_of("backbone.0.weight").is_some());
        assert!(store.id_of("dsq.p.0").is_some());
        assert!(store.id_of("classifier.weight").is_some());
        assert!(store.id_of("proto.z").is_some());
        assert_eq!(model.class_weights().len(), 3);
    }

    #[test]
    fn seed_offsets_share_backbone_but_differ_in_heads() {
        let (_, s0) = LightLt::new(&tiny_config(), 0);
        let (_, s1) = LightLt::new(&tiny_config(), 1);
        // Backbones identical (shared "pretrained" start — ensemble
        // averaging precondition).
        let bb = s0.id_of("backbone.0.weight").unwrap();
        assert_eq!(s0.value(bb), s1.value(bb));
        // Heads differ per base model.
        let p0 = s0.id_of("dsq.p.0").unwrap();
        assert_ne!(s0.value(p0), s1.value(p0));
        // Same offset reproduces exactly.
        let (_, s0b) = LightLt::new(&tiny_config(), 0);
        assert_eq!(s0.value(p0), s0b.value(p0));
    }

    #[test]
    fn loss_decreases_with_training_steps() {
        let cfg = tiny_config();
        let (mut model, mut store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&[20, 10, 5]);
        let mut r = rng(3);
        // Simple separable data: class = sign pattern of first features.
        let n = 35;
        let mut x = randn(n, 8, &mut r).scale(0.2);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        for (i, &l) in labels.iter().enumerate() {
            x[(i, l)] += 2.0;
        }
        let mut opt = AdamW::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            store.zero_grads();
            let (b, _) = model.loss_on_batch(&mut store, &x, &labels);
            opt.step(&mut store);
            if first.is_none() {
                first = Some(b.total);
            }
            last = b.total;
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.9,
            "loss did not decrease: {first} → {last}"
        );
    }

    #[test]
    fn encode_decode_shapes() {
        let cfg = tiny_config();
        let (model, store) = LightLt::new(&cfg, 0);
        let x = randn(5, 8, &mut rng(4));
        let codes = model.encode(&store, &x);
        assert_eq!(codes.len(), 5);
        assert_eq!(codes.num_codebooks(), 2);
        let q = model.quantized_embed(&store, &x);
        assert_eq!(q.shape(), (5, 6));
        let preds = model.predict(&store, &x);
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&p| p < 3));
    }

    /// Finite-difference check of the *entire* LightLT loss graph —
    /// backbone, DSQ with codebook skip and STE, classifier, and all three
    /// loss terms (DESIGN.md §7).
    ///
    /// The STE makes the true loss piecewise-constant in the hard-selection
    /// direction, so exact agreement is only expected while the perturbation
    /// does not flip any argmax; a smoke-sized epsilon and a tolerance on
    /// the relative error accommodate the handful of flips.
    #[test]
    fn full_loss_gradcheck() {
        let cfg = LightLtConfig {
            input_dim: 5,
            backbone_hidden: 6,
            embed_dim: 4,
            num_classes: 3,
            num_codebooks: 2,
            num_codewords: 4,
            ffn_hidden: 4,
            alpha: 0.1,
            ..tiny_config()
        };
        let (mut model, store) = LightLt::new(&cfg, 0);
        model.set_class_counts(&[5, 3, 2]);
        let x = randn(4, 5, &mut rng(11)).scale(0.5);
        let labels = vec![0usize, 1, 2, 0];

        let mut loss_fn = |s: &mut lt_tensor::ParamStore| -> f32 {
            let (b, _) = model.loss_on_batch(s, &x, &labels);
            b.total
        };
        let reports = lt_tensor::gradcheck::check_gradients(&store, 5e-3, &mut loss_fn);
        // Perturbing backbone/DSQ parameters can flip an STE argmax, at
        // which point the true loss is not differentiable and finite
        // differences see a jump — those parameters are covered by the
        // per-op gradchecks in `lt-tensor` instead. The classifier and
        // prototype gradients never change any code selection, so they must
        // check out exactly here, proving the assembled loss graph wiring.
        for report in reports {
            let flip_free = report.name.starts_with("classifier.")
                || report.name.starts_with("proto.");
            if flip_free {
                assert!(
                    report.max_rel_err < 0.05,
                    "gradient check failed for `{}`: rel err {:.3e}",
                    report.name,
                    report.max_rel_err
                );
            }
        }
    }

    #[test]
    fn set_class_counts_validates_length() {
        let (mut model, _) = LightLt::new(&tiny_config(), 0);
        model.set_class_counts(&[5, 5, 5]);
        assert!(model.class_weights().iter().all(|&w| (w - 1.0).abs() < 1e-5));
    }

    #[test]
    #[should_panic(expected = "count vector length")]
    fn set_class_counts_rejects_wrong_length() {
        let (mut model, _) = LightLt::new(&tiny_config(), 0);
        model.set_class_counts(&[5, 5]);
    }
}
