//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Used as the integrity footer of the binary index image (`LTINDEX2`) and
//! of training checkpoints, so that bit-flips in persisted artifacts fail
//! loudly at load time instead of silently corrupting search results or a
//! resumed run. Implemented locally — the workspace deliberately has no
//! checksum crate dependency.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (standard init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Advances a raw (pre-final-xor) CRC state over `bytes`; lets callers
/// checksum a stream in chunks: start from `0xFFFFFFFF`, finish by xoring
/// with `0xFFFFFFFF`.
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn chunked_equals_whole() {
        let data = b"split into several chunks of uneven length";
        let whole = crc32(data);
        let mut state = 0xFFFF_FFFFu32;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 128];
        let base = crc32(&data);
        for byte in [0usize, 17, 127] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
