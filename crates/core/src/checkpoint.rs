//! Checksummed, atomically-written training checkpoints.
//!
//! A [`Checkpoint`] captures *everything* a training run needs to continue
//! bit-for-bit: model weights, AdamW moment/step state, the LR-schedule
//! position, the data-RNG state (encoded as the number of epoch shuffles
//! drawn from the seeded stream — replaying that many shuffles restores the
//! exact generator state), retry bookkeeping, and the epoch history so far.
//!
//! On disk a checkpoint is a small binary envelope around a JSON payload:
//!
//! ```text
//! magic "LTCKPT01" (8) | version u32 LE (4) | payload len u64 LE (8)
//! | JSON payload | CRC32 of everything before the footer, u32 LE (4)
//! ```
//!
//! Writes go to a temp file in the same directory followed by an atomic
//! rename, so a crash mid-write can never leave a half-written file under
//! the checkpoint's name; truncation or bit-flips of an existing file fail
//! the CRC at load time.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use lt_tensor::optim::AdamW;
use lt_tensor::ParamStore;
use serde::{Deserialize, Serialize};

use crate::checksum::crc32;
use crate::config::LightLtConfig;
use crate::trainer::TrainHistory;

/// Magic bytes opening a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"LTCKPT01";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing.
    Io(io::Error),
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file is shorter than its header/payload claims.
    Truncated,
    /// The CRC32 footer does not match the file contents.
    ChecksumMismatch {
        /// CRC stored in the footer.
        stored: u32,
        /// CRC computed over the file contents.
        computed: u32,
    },
    /// The format version is not supported by this build.
    Version(u32),
    /// The payload failed to parse.
    Malformed(String),
    /// The checkpoint is valid but does not belong to this run (different
    /// config, stage, or parameter schema).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O failure: {e}"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) — \
                 the checkpoint file is corrupted"
            ),
            CheckpointError::Version(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})")
            }
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint payload: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Complete resumable state of one training stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Stage label inside a multi-stage run (`"model"`, `"shared"`,
    /// `"branch-1"`, `"finetune"`, …) — also the file stem.
    pub stage: String,
    /// The full training configuration of the run.
    pub config: LightLtConfig,
    /// Ensemble member identity (perturbs the data order).
    pub seed_offset: u64,
    /// First epoch the resumed run still has to execute.
    pub next_epoch: usize,
    /// Total epochs this stage trains for (detects override mismatches).
    pub target_epochs: usize,
    /// Global optimizer step reached (drives the LR schedule).
    pub step: usize,
    /// Epoch shuffles already drawn from the seeded data-RNG stream;
    /// replaying this many shuffles reproduces the generator state exactly.
    pub shuffles_drawn: u64,
    /// Learning-rate multiplier accumulated by guard-retry backoff.
    pub lr_scale: f32,
    /// Guard retries consumed so far.
    pub retries_used: usize,
    /// Best (lowest) finite batch loss seen, for the divergence detector.
    /// `None` when no finite loss has been observed yet.
    pub best_loss: Option<f32>,
    /// Per-epoch statistics accumulated so far.
    pub history: TrainHistory,
    /// All model weights.
    pub store: ParamStore,
    /// Full AdamW moment and per-parameter step state.
    pub optimizer: AdamW,
}

impl Checkpoint {
    /// Encodes the checkpoint into the checksummed binary envelope.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Malformed`] if serialization fails
    /// (non-finite floats in the state would do it — the trainer's guards
    /// keep that from happening).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let payload =
            serde_json::to_vec(self).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let mut out = Vec::with_capacity(8 + 4 + 8 + payload.len() + 4);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }

    /// Decodes and integrity-checks a checkpoint envelope.
    ///
    /// # Errors
    /// Rejects bad magic, truncation, checksum mismatches, unsupported
    /// versions, and unparsable payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        const HEADER: usize = 8 + 4 + 8;
        if bytes.len() < CHECKPOINT_MAGIC.len() {
            return Err(CheckpointError::Truncated);
        }
        if &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < HEADER + 4 {
            return Err(CheckpointError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version(version));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let Some(total) = HEADER.checked_add(payload_len).and_then(|n| n.checked_add(4)) else {
            return Err(CheckpointError::Truncated);
        };
        if bytes.len() < total {
            return Err(CheckpointError::Truncated);
        }
        let body_end = HEADER + payload_len;
        let stored = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        serde_json::from_slice(&bytes[HEADER..body_end])
            .map_err(|e| CheckpointError::Malformed(e.to_string()))
    }

    /// Writes the checkpoint atomically: temp file in the target directory,
    /// fsync, then rename over `path`.
    ///
    /// # Errors
    /// Propagates serialization and filesystem failures.
    pub fn save_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes()?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }

    /// Loads and integrity-checks a checkpoint file.
    ///
    /// # Errors
    /// Propagates I/O failures and every [`Checkpoint::from_bytes`] reject.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// Canonical file path of a stage's checkpoint inside a checkpoint dir.
pub fn checkpoint_path(dir: &Path, stage: &str) -> PathBuf {
    dir.join(format!("{stage}.ckpt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_linalg::Matrix;

    fn sample() -> Checkpoint {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::full(2, 3, 0.25));
        let mut opt = AdamW::new(0.01);
        store.accumulate_grad(id, &Matrix::full(2, 3, 0.5));
        use lt_tensor::optim::Optimizer as _;
        opt.step(&mut store);
        store.zero_grads();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            stage: "model".into(),
            config: LightLtConfig::default(),
            seed_offset: 0,
            next_epoch: 3,
            target_epochs: 10,
            step: 42,
            shuffles_drawn: 3,
            lr_scale: 0.5,
            retries_used: 1,
            best_loss: Some(0.75),
            history: TrainHistory::default(),
            store,
            optimizer: opt,
        }
    }

    #[test]
    fn roundtrip_preserves_state_exactly() {
        let ck = sample();
        let bytes = ck.to_bytes().unwrap();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.stage, ck.stage);
        assert_eq!(back.next_epoch, 3);
        assert_eq!(back.step, 42);
        assert_eq!(back.shuffles_drawn, 3);
        assert_eq!(back.lr_scale, 0.5);
        assert_eq!(back.best_loss, Some(0.75));
        let id = ck.store.id_of("w").unwrap();
        assert_eq!(back.store.value(id), ck.store.value(id));
        assert!(back.store.schema_matches(&ck.store));
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir()
            .join(format!("lightlt_ckpt_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = checkpoint_path(&dir, "model");
        let ck = sample();
        ck.save_atomic(&path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("ckpt.tmp").exists(), "temp file left behind");
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.step, ck.step);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::BadMagic)));
    }

    #[test]
    fn rejects_truncation_at_every_region() {
        let bytes = sample().to_bytes().unwrap();
        for cut in [0usize, 4, 11, 19, 40, bytes.len() - 1] {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_bit_flip_in_payload() {
        let mut bytes = sample().to_bytes().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::Version(99))));
    }
}
