//! The space/inference complexity model of Section IV.
//!
//! Storage for distance computation (Eqn. 24):
//! * codebooks — `4·K·M·d` bytes,
//! * codeword indices — `n·M·log2(K)/8` bytes,
//! * per-item reconstruction norms — `4·n` bytes,
//!
//! versus `4·n·d` bytes for dense float storage. Inference: building the
//! query↔codeword lookup table costs `O(d·M·K)` multiply-adds, after which
//! every database item costs `O(M)` table lookups — versus `O(d)` per item
//! for exhaustive search.

use serde::{Deserialize, Serialize};

/// Analytic cost model for one (database, quantizer) configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ComplexityModel {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Number of codebooks `M`.
    pub num_codebooks: usize,
    /// Codewords per codebook `K`.
    pub num_codewords: usize,
    /// Database size `n`.
    pub num_items: usize,
}

impl ComplexityModel {
    /// Creates the model; all arguments must be positive.
    pub fn new(dim: usize, num_codebooks: usize, num_codewords: usize, num_items: usize) -> Self {
        assert!(dim > 0 && num_codebooks > 0 && num_codewords > 1 && num_items > 0);
        Self { dim, num_codebooks, num_codewords, num_items }
    }

    /// Bits per codeword id: `ceil(log2 K)`.
    pub fn bits_per_id(&self) -> usize {
        (self.num_codewords as f64).log2().ceil() as usize
    }

    /// Quantized storage in bytes: `4KMd + n·M·log2(K)/8 + 4n`.
    pub fn quantized_bytes(&self) -> f64 {
        let codebooks = 4.0 * self.num_codewords as f64 * self.num_codebooks as f64 * self.dim as f64;
        let codes =
            self.num_items as f64 * self.num_codebooks as f64 * self.bits_per_id() as f64 / 8.0;
        let norms = 4.0 * self.num_items as f64;
        codebooks + codes + norms
    }

    /// Dense float storage in bytes: `4nd`.
    pub fn dense_bytes(&self) -> f64 {
        4.0 * self.num_items as f64 * self.dim as f64
    }

    /// Compression ratio `dense / quantized` (> 1 when quantization helps).
    pub fn compression_ratio(&self) -> f64 {
        self.dense_bytes() / self.quantized_bytes()
    }

    /// Multiply-add operations per query for ADC search:
    /// `d·M·K` (lookup-table build) + `n·M` (table lookups & adds).
    pub fn quantized_ops(&self) -> f64 {
        self.dim as f64 * self.num_codebooks as f64 * self.num_codewords as f64
            + self.num_items as f64 * self.num_codebooks as f64
    }

    /// Multiply-add operations per query for exhaustive search: `n·d`.
    pub fn dense_ops(&self) -> f64 {
        self.num_items as f64 * self.dim as f64
    }

    /// Theoretical speedup `dense_ops / quantized_ops`; grows with `n` and
    /// saturates near `d / M` (the Fig.-7 "theoretical speedup" curve).
    pub fn theoretical_speedup(&self) -> f64 {
        self.dense_ops() / self.quantized_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper reports a 240× compression ratio on the full QBA database
    /// (n = 642k, M = 4, K = 256) — that pins d = 768 (BERT-base).
    #[test]
    fn reproduces_paper_qba_compression_ratio() {
        let m = ComplexityModel::new(768, 4, 256, 642_000);
        let ratio = m.compression_ratio();
        assert!(
            (ratio - 240.2).abs() < 5.0,
            "expected ≈240× (Fig. 7), got {ratio:.1}"
        );
    }

    #[test]
    fn small_databases_do_not_compress() {
        // Fig. 7's second finding: at 1/1000 of QBA (~642 items) the 1,024
        // codewords cost more than the raw data.
        let m = ComplexityModel::new(768, 4, 256, 642);
        assert!(m.compression_ratio() < 1.0, "ratio {}", m.compression_ratio());
        assert!(m.theoretical_speedup() < 1.0);
    }

    #[test]
    fn compression_monotone_in_database_size() {
        let mut prev = 0.0;
        for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
            let r = ComplexityModel::new(768, 4, 256, n).compression_ratio();
            assert!(r > prev, "not monotone at n={n}");
            prev = r;
        }
    }

    #[test]
    fn speedup_saturates_near_d_over_m() {
        let m = ComplexityModel::new(768, 4, 256, 100_000_000);
        let s = m.theoretical_speedup();
        assert!(s < 768.0 / 4.0);
        assert!(s > 768.0 / 4.0 * 0.9, "should approach d/M, got {s}");
    }

    #[test]
    fn bits_per_id_rounds_up() {
        assert_eq!(ComplexityModel::new(8, 2, 256, 10).bits_per_id(), 8);
        assert_eq!(ComplexityModel::new(8, 2, 100, 10).bits_per_id(), 7);
        assert_eq!(ComplexityModel::new(8, 2, 2, 10).bits_per_id(), 1);
    }

    #[test]
    fn asymptotic_ratio_approaches_32d_over_mlogk() {
        // For n → ∞ the ratio tends to 4d / (M·log2K/8 + 4) =
        // 32d/(M·log2K + 32).
        let m = ComplexityModel::new(768, 4, 256, 1_000_000_000);
        let expect = 32.0 * 768.0 / (4.0 * 8.0 + 32.0);
        assert!((m.compression_ratio() - expect).abs() / expect < 0.01);
    }
}
