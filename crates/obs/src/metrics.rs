//! Lock-free metric primitives: sharded counters/gauges and fixed
//! log₂-bucket latency histograms.
//!
//! Every primitive is a fixed array of cache-line-aligned shards of
//! relaxed atomics. A recording thread picks one shard (a cheap
//! thread-local assignment) and touches only that shard's cache lines, so
//! concurrent recorders on different cores do not bounce a shared line.
//! Reading merges the shards with plain `u64` addition (and `max` for the
//! histogram maximum) — exact integer arithmetic, so the merged snapshot
//! is **identical for every thread count and every interleaving** of the
//! same multiset of recorded values. The shard count and the histogram
//! bucket layout are compile-time constants; nothing about the merged
//! result depends on which thread recorded which value.
//!
//! When observability is disabled ([`crate::enabled`] is false) every
//! recording call is a relaxed load plus an untaken branch: no allocation,
//! no lock, no atomic RMW.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per metric. Compile-time constant so the merged
/// layout (and therefore the snapshot) never depends on the runtime
/// thread count.
pub const NUM_SHARDS: usize = 16;

/// Number of log₂ histogram buckets. Bucket `0` holds the value `0`;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`; the last bucket
/// absorbs everything larger. 64 buckets cover the full `u64` range.
pub const NUM_BUCKETS: usize = 64;

/// Round-robin shard assignment: each recording thread grabs the next
/// index once and keeps it for its lifetime.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
}

#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|s| *s)
}

/// This thread's recorder shard (`0..NUM_SHARDS`). The trace arena
/// starts its claim probe here so concurrent requests spread across the
/// arena exactly as concurrent recorders spread across metric shards.
#[inline]
pub(crate) fn recorder_shard() -> usize {
    shard_index()
}

/// The log₂ bucket index for a recorded value.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (value.ilog2() as usize + 1).min(NUM_BUCKETS - 1)
    }
}

/// The inclusive value range `[lo, hi]` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        _ if i >= NUM_BUCKETS - 1 => (1 << (NUM_BUCKETS - 2), u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// One cache line of counter state (padding defeats false sharing
/// between neighbouring shards).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CounterShard {
    value: AtomicU64,
}

/// A monotonically increasing sharded counter.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [CounterShard; NUM_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`. A relaxed load plus an untaken branch when observability
    /// is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.shards[shard_index()].value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The merged value (sum over shards).
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.value.load(Ordering::Relaxed)).sum()
    }
}

#[repr(align(64))]
#[derive(Debug, Default)]
struct GaugeShard {
    /// Stored as the two's-complement bits of an `i64` delta.
    value: AtomicU64,
}

/// A sharded up/down gauge (e.g. live connections). Merged value is the
/// signed sum of per-shard deltas.
#[derive(Debug, Default)]
pub struct Gauge {
    shards: [GaugeShard; NUM_SHARDS],
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a signed delta. No-op when observability is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.shards[shard_index()].value.fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The merged value (signed sum over shards).
    pub fn get(&self) -> i64 {
        self.shards.iter().map(|s| s.value.load(Ordering::Relaxed) as i64).sum()
    }
}

/// One histogram shard: buckets plus count/sum/max, cache-line aligned so
/// shards never share a line.
#[repr(align(64))]
#[derive(Debug)]
struct HistogramShard {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-layout log₂ latency histogram.
///
/// Values are `u64` (the workspace records microseconds); the bucket
/// layout is the compile-time constant described at [`NUM_BUCKETS`].
/// Recording is three relaxed `fetch_add`s and one `fetch_max` on the
/// caller's shard; merging shards uses exact integer arithmetic, so
/// [`Histogram::snapshot`] is deterministic for any thread width.
#[derive(Debug, Default)]
pub struct Histogram {
    shards: [HistogramShard; NUM_SHARDS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. A relaxed load plus an untaken branch when
    /// observability is disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(value);
    }

    /// Records one value regardless of the global toggle (for tests and
    /// always-on internal accounting).
    #[inline]
    pub fn record_always(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The merged, deterministic snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in &self.shards {
            for (b, a) in buckets.iter_mut().zip(&shard.buckets) {
                *b += a.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum += shard.sum.load(Ordering::Relaxed);
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot { buckets, count, sum, max }
    }
}

/// The merged read-side view of a [`Histogram`]: one count per bucket plus
/// total count, total sum, and the maximum recorded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, exactly [`NUM_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping add on overflow is
    /// acceptable: the workspace records microsecond latencies).
    pub sum: u64,
    /// Maximum recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// The mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// A deterministic quantile estimate: walk the cumulative bucket
    /// counts to the target rank and interpolate linearly inside the
    /// landing bucket. `q` is clamped to `[0, 1]`; an empty histogram
    /// yields `0.0`. Monotone in `q` by construction, so
    /// `quantile(0.5) ≤ quantile(0.95) ≤ quantile(0.99)` always holds.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                let (lo, hi) = bucket_bounds(i);
                if i == 0 {
                    return 0.0;
                }
                // Interpolate within the bucket's *inclusive* value range,
                // clamped to the maximum actually recorded: a bucket whose
                // sole occupant is `v` reports exactly `v`, never the
                // bucket's upper bound (which overstated p50 by up to 2×).
                let lo = lo as f64;
                let hi = hi.min(self.max) as f64;
                let fraction = (target - cumulative) as f64 / n as f64;
                return lo + fraction * (hi - lo);
            }
            cumulative += n;
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_toggle;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Every power of two starts a fresh bucket; its predecessor ends
        // the previous one.
        for i in 1..63 {
            let v = 1u64 << i;
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1, "boundary at 2^{i}");
        }
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        let (lo, hi) = bucket_bounds(0);
        assert_eq!((lo, hi), (0, 0));
        for i in 1..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let (_, prev_hi) = bucket_bounds(i - 1);
            assert_eq!(lo, prev_hi + 1, "bucket {i} starts after bucket {} ends", i - 1);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let _on = test_toggle(true);
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 1000, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 2029);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 2); // 1, 1
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets[11], 1); // 1024
    }

    #[test]
    fn quantiles_are_ordered_and_finite() {
        let _on = test_toggle(true);
        let h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p95 = s.quantile(0.95);
        let p99 = s.quantile(0.99);
        assert!(p50.is_finite() && p95.is_finite() && p99.is_finite());
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        // Log-bucket estimates land within the bucket of the true value.
        assert!((4096.0..=8192.0).contains(&p50), "p50={p50}");
        assert!(s.quantile(1.0) <= 16384.0);
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_the_winning_bucket() {
        let _on = test_toggle(true);
        // A single recorded value must be reported exactly: the old
        // behaviour returned the winning bucket's exclusive upper bound
        // (1024 for 513), overstating p50 by up to 2×.
        let h = Histogram::new();
        h.record(513);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), 513.0);
        assert_eq!(s.quantile(0.99), 513.0);

        // Repeated single value anywhere in a bucket: still exact.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(512);
        }
        assert_eq!(h.snapshot().quantile(0.5), 512.0);

        // Two buckets: the p50 estimate stays inside the lower bucket's
        // inclusive range instead of escaping to its upper bound.
        let h = Histogram::new();
        for v in [600u64, 600, 600, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        assert!((512.0..=1023.0).contains(&p50), "p50={p50}");
        // The top quantile is capped by the recorded maximum.
        assert!(s.quantile(1.0) <= 5000.0);
    }

    #[test]
    fn concurrent_records_merge_identically_at_any_width() {
        let _on = test_toggle(true);
        // The same multiset of values recorded under different thread
        // decompositions must produce bitwise-identical snapshots.
        let values: Vec<u64> = (0..50_000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        let mut reference: Option<HistogramSnapshot> = None;
        for width in [1usize, 2, 4, 8] {
            let h = Histogram::new();
            let per = values.len().div_ceil(width);
            std::thread::scope(|scope| {
                for part in values.chunks(per) {
                    let h = &h;
                    scope.spawn(move || {
                        for &v in part {
                            h.record(v);
                        }
                    });
                }
            });
            let snap = h.snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(r) => assert_eq!(&snap, r, "width={width}"),
            }
        }
    }

    #[test]
    fn counter_and_gauge_merge_across_threads() {
        let _on = test_toggle(true);
        let c = Counter::new();
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (c, g) = (&c, &g);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        g.inc();
                    }
                    for _ in 0..250 {
                        g.dec();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(g.get(), 6000);
    }

    #[test]
    fn disabled_mode_touches_nothing() {
        let _off = test_toggle(false);
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        c.add(100);
        c.inc();
        g.add(5);
        g.dec();
        h.record(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
    }
}
