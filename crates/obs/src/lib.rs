//! `lt-obs`: the zero-cost observability layer of the LightLT workspace.
//!
//! Three pieces, all std-only:
//!
//! 1. **Metric primitives** ([`metrics`]): sharded atomic [`Counter`]s /
//!    [`Gauge`]s and fixed log₂-bucket latency [`Histogram`]s. The shard
//!    count and bucket layout are compile-time constants and shards merge
//!    with exact integer arithmetic, so a merged [`HistogramSnapshot`] is
//!    **deterministic at any `LT_THREADS` width**: the same multiset of
//!    recorded values produces bitwise-identical snapshots no matter how
//!    the recording threads interleaved.
//! 2. **Registry** ([`registry`]): dotted-name lookup of shared metric
//!    handles plus deterministic [`Snapshot`]s and a Prometheus-style
//!    text exposition. Handle creation is the only locked path; recording
//!    never touches the registry.
//! 3. **Event tracing** ([`events`]): a JSONL sink of typed events
//!    (train-step, fault-retry, rollback, checkpoint, snapshot,
//!    LUT-build, scan-block, batch-execute) with monotonic microsecond
//!    timestamps, installed via `lightlt --events <path>`.
//! 4. **Request tracing** ([`trace`]): per-request pipeline spans from a
//!    lock-free arena, an always-on tail reservoir (slowest traces plus
//!    a uniform sample, served over the `Traces` wire opcode), and an
//!    opt-in Chrome `trace_event` export (`serve --trace-out`). Gated by
//!    its own toggle ([`set_trace_enabled`]) with the same
//!    single-relaxed-load disabled cost.
//!
//! **Overhead model.** Observability is off by default. Every recording
//! call first checks the global toggle — a single relaxed atomic load and
//! an untaken branch — and returns immediately when disabled: no
//! allocation, no lock, no atomic read-modify-write. Event emission is
//! gated the same way on sink installation. Enabled-mode recording is a
//! handful of relaxed `fetch_add`s on a thread-striped shard; the
//! `serve_metrics` criterion group in `lt-bench` tracks both modes
//! against the un-instrumented baseline.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

pub mod events;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use events::{emit, events_enabled, flush_events, init_events, now_us, Event};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS,
    NUM_SHARDS,
};
pub use registry::{MetricValue, Registry, Snapshot};
pub use trace::{
    begin_trace, finish_trace, flush_trace_out, init_trace_out, sampled_traces, set_trace_enabled,
    trace_enabled, trace_out_enabled, Span, SpanSink, Trace, TraceCtx,
};

/// Global metrics toggle; off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True iff metric recording is enabled. A relaxed load — this is the
/// whole disabled-mode cost of every instrumented call site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide. `lightlt serve` enables
/// it at startup (opt out with `--no-metrics`); libraries never flip it.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Microseconds elapsed since `start`, saturating into `u64` — the
/// workspace's standard latency unit for histograms and events.
#[inline]
pub fn micros_since(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}

#[cfg(test)]
pub(crate) use test_support::test_toggle;

#[cfg(test)]
mod test_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that flip the global toggle (unit tests in this
    /// crate run in parallel within one process) and restores the
    /// previous state on drop.
    pub struct ToggleGuard {
        prev: bool,
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for ToggleGuard {
        fn drop(&mut self) {
            crate::set_enabled(self.prev);
        }
    }

    pub fn test_toggle(on: bool) -> ToggleGuard {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let prev = crate::enabled();
        crate::set_enabled(on);
        ToggleGuard { prev, _lock: lock }
    }
}
