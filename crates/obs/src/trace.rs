//! lt-trace: per-request span tracing across the serve pipeline.
//!
//! A request that opts in (the global toggle, [`set_trace_enabled`], is
//! on) acquires a [`TraceCtx`] from a fixed lock-free arena and collects
//! fixed-capacity [`Span`] records — `{stage, start_us, dur_us, shard,
//! items, reranked}` — as it moves through
//! accept → decode → admission → queue → batch-form → lut-build →
//! route-probe → shard-scan(i) → merge → rerank → encode → reply (and
//! wal-append → fsync → apply for mutations). On completion the trace is
//! offered to an always-on tail reservoir (the N slowest per window plus
//! a uniform 1-in-K sample, served over the `Traces` wire opcode) and,
//! when `serve --trace-out` installed a sink, appended to a Chrome
//! `trace_event` JSON array loadable in Perfetto / `chrome://tracing`.
//!
//! **Cost model.** The disabled path is one relaxed atomic load per call
//! site — identical to the metric primitives in [`crate::metrics`]. The
//! enabled path takes no locks: span slots are per-field relaxed atomics
//! published with a release store on a `committed` flag, the arena is
//! claimed by a single CAS probed from the caller's metrics shard (same
//! sharding discipline as the counters), and the reservoir uses
//! `try_lock` (a contended offer is dropped, never waited on). Only the
//! opt-in Chrome sink takes a real lock on the completion path.
//!
//! **Determinism.** Span *structure* — the sorted `(stage, shard)`
//! sequence and the item counts — is a pure function of the request and
//! the serving topology (shard count, routing parameters), never of the
//! thread width: spans sort by `(stage, shard, start_us)` and stage ids
//! are declared in pipeline order, so the canonical order is the
//! pipeline order. Durations are wall-clock and vary run to run.

use std::cell::RefCell;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Pipeline stage ids, declared in pipeline order so that sorting spans
/// by `(stage, shard, start_us)` yields the pipeline order. Mutation
/// stages (`WAL_APPEND`/`FSYNC`/`APPLY`) slot between admission and
/// queue: a mutation never reaches the batch queue.
pub mod stage {
    /// Connection read: last idle poll tick → frame fully read. Includes
    /// client think time, so it is excluded from span-sum accounting.
    pub const ACCEPT: u8 = 0;
    /// Wire frame → typed `Request`.
    pub const DECODE: u8 = 1;
    /// Validation + submission-queue admission.
    pub const ADMISSION: u8 = 2;
    /// Mutation record appended to the write-ahead log.
    pub const WAL_APPEND: u8 = 3;
    /// WAL `sync_data` forced by the fsync policy.
    pub const FSYNC: u8 = 4;
    /// Mutation applied to the copy-on-write index state.
    pub const APPLY: u8 = 5;
    /// Time waited in the submission queue before the executor drained
    /// the job.
    pub const QUEUE: u8 = 6;
    /// Micro-batch assembly (k-grouping, query matrix construction).
    pub const BATCH_FORM: u8 = 7;
    /// GEMM-batched LUT construction for the whole group.
    pub const LUT_BUILD: u8 = 8;
    /// Coarse-router centroid ranking (routed searches only).
    pub const ROUTE_PROBE: u8 = 9;
    /// One scan of one shard (exhaustive) or one probed partition
    /// (routed); `shard` carries the shard / partition id.
    pub const SHARD_SCAN: u8 = 10;
    /// Cross-shard top-k fold.
    pub const MERGE: u8 = 11;
    /// Exact re-scoring of the u8 backend's shortlist.
    pub const RERANK: u8 = 12;
    /// Typed `Response` → wire payload.
    pub const ENCODE: u8 = 13;
    /// Reply frame written to the socket.
    pub const REPLY: u8 = 14;
}

/// Stage names, indexed by stage id (the wire and JSON vocabulary).
pub const STAGE_NAMES: [&str; 15] = [
    "accept",
    "decode",
    "admission",
    "wal-append",
    "fsync",
    "apply",
    "queue",
    "batch-form",
    "lut-build",
    "route-probe",
    "shard-scan",
    "merge",
    "rerank",
    "encode",
    "reply",
];

/// The display name of a stage id (out-of-range ids render as `"?"`,
/// so a forward-version wire payload still prints).
pub fn stage_name(stage: u8) -> &'static str {
    STAGE_NAMES.get(stage as usize).copied().unwrap_or("?")
}

/// `shard` value for spans not attributed to a particular shard.
pub const NO_SHARD: u32 = u32::MAX;

/// Query tag addressing every query of a batch (see [`SpanSink`]).
pub const ALL_QUERIES: u32 = u32::MAX;

/// Global tracing toggle, independent of the metrics toggle; off by
/// default. `lightlt serve` turns it on at startup (opt out with
/// `--no-trace`).
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// True iff request tracing is enabled — a single relaxed load, the
/// whole disabled-mode cost of every trace call site.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Turns request tracing on or off process-wide.
pub fn set_trace_enabled(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// One recorded pipeline span. `start_us` is absolute on the process's
/// monotonic tracing epoch ([`crate::now_us`]), so spans from different
/// threads share one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage id (see [`stage`]).
    pub stage: u8,
    /// Shard or routed-partition id; [`NO_SHARD`] when not applicable.
    pub shard: u32,
    /// Start, microseconds on the tracing epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Items scanned (shard-scan: segment length × queries; rerank:
    /// shortlist depth).
    pub items: u64,
    /// Candidates exactly re-scored (u8 re-rank path only).
    pub reranked: u64,
}

/// One lock-free span slot: per-field relaxed atomics published by a
/// release store on `committed` (readers pair it with an acquire load).
#[derive(Debug, Default)]
struct Slot {
    stage: AtomicU32,
    shard: AtomicU32,
    query: AtomicU32,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    items: AtomicU64,
    reranked: AtomicU64,
    committed: AtomicBool,
}

/// A fixed-capacity, lock-free multi-producer span buffer. Pushes past
/// capacity are silently dropped (documented overflow policy: a trace is
/// a sample, not an audit log). `collect` returns only committed slots,
/// so a reader racing a writer sees each span entirely or not at all.
#[derive(Debug)]
struct SpanArray {
    cursor: AtomicUsize,
    slots: Box<[Slot]>,
}

impl SpanArray {
    fn new(capacity: usize) -> Self {
        Self {
            cursor: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| Slot::default()).collect(),
        }
    }

    /// Claims the next slot and publishes `span` tagged with `query`.
    fn push(&self, query: u32, span: Span) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(i) else {
            return; // Capacity exhausted: drop silently.
        };
        slot.stage.store(span.stage as u32, Ordering::Relaxed);
        slot.shard.store(span.shard, Ordering::Relaxed);
        slot.query.store(query, Ordering::Relaxed);
        slot.start_us.store(span.start_us, Ordering::Relaxed);
        slot.dur_us.store(span.dur_us, Ordering::Relaxed);
        slot.items.store(span.items, Ordering::Relaxed);
        slot.reranked.store(span.reranked, Ordering::Relaxed);
        slot.committed.store(true, Ordering::Release);
    }

    /// Snapshots every committed `(query, span)` pair.
    fn collect(&self) -> Vec<(u32, Span)> {
        let used = self.cursor.load(Ordering::Relaxed).min(self.slots.len());
        let mut out = Vec::with_capacity(used);
        for slot in &self.slots[..used] {
            if !slot.committed.load(Ordering::Acquire) {
                continue;
            }
            out.push((
                slot.query.load(Ordering::Relaxed),
                Span {
                    stage: slot.stage.load(Ordering::Relaxed) as u8,
                    shard: slot.shard.load(Ordering::Relaxed),
                    start_us: slot.start_us.load(Ordering::Relaxed),
                    dur_us: slot.dur_us.load(Ordering::Relaxed),
                    items: slot.items.load(Ordering::Relaxed),
                    reranked: slot.reranked.load(Ordering::Relaxed),
                },
            ));
        }
        out
    }

    /// Rewinds the buffer for reuse (single-owner phase only).
    fn reset(&self) {
        let used = self.cursor.swap(0, Ordering::Relaxed).min(self.slots.len());
        for slot in &self.slots[..used] {
            slot.committed.store(false, Ordering::Relaxed);
        }
    }
}

/// A cloneable, thread-safe collector the batch executor hands to the
/// core search entry points. Spans are tagged with a query row index (or
/// [`ALL_QUERIES`] for batch-wide work like the LUT GEMM); the executor
/// fans collected spans out to the per-request traces afterwards.
#[derive(Debug, Clone)]
pub struct SpanSink(Arc<SpanArray>);

impl SpanSink {
    /// A sink holding up to `capacity` spans (overflow drops silently).
    pub fn new(capacity: usize) -> Self {
        Self(Arc::new(SpanArray::new(capacity)))
    }

    /// Records one span attributed to query row `query` of the batch
    /// ([`ALL_QUERIES`] = every query).
    pub fn push(&self, query: u32, span: Span) {
        self.0.push(query, span);
    }

    /// Drains every committed `(query, span)` pair for fan-out.
    pub fn collect(&self) -> Vec<(u32, Span)> {
        self.0.collect()
    }
}

/// Arena slot states.
const FREE: u8 = 0;
const ACTIVE: u8 = 1;

/// Arena capacity: comfortably above any realistic number of in-flight
/// requests (connections × pipelining); exhaustion drops the trace, not
/// the request.
const ARENA_SLOTS: usize = 512;

/// Span capacity per request: the deepest pipeline (routed search at
/// nprobe = 8: probe + 8 scans + 8 re-ranks + the serial stages) fits
/// with headroom.
const SPANS_PER_TRACE: usize = 40;

/// One arena entry: an atomic claim state plus the request's span buffer.
#[derive(Debug)]
struct RequestTrace {
    state: AtomicU8,
    id: AtomicU64,
    start_us: AtomicU64,
    /// Head/tail quartile of the top-1 result's routed partition
    /// (`u32::MAX` = untagged).
    tail_q: AtomicU32,
    spans: SpanArray,
}

/// The per-process trace arena. Allocated once, on the first traced
/// request — the disabled path never touches it.
struct Arena {
    slots: Box<[RequestTrace]>,
}

impl Arena {
    fn new() -> Self {
        Self {
            slots: (0..ARENA_SLOTS)
                .map(|_| RequestTrace {
                    state: AtomicU8::new(FREE),
                    id: AtomicU64::new(0),
                    start_us: AtomicU64::new(0),
                    tail_q: AtomicU32::new(u32::MAX),
                    spans: SpanArray::new(SPANS_PER_TRACE),
                })
                .collect(),
        }
    }
}

static ARENA: OnceLock<Arena> = OnceLock::new();
static NEXT_ID: AtomicU64 = AtomicU64::new(0);
static TRACES_STARTED: AtomicU64 = AtomicU64::new(0);
static TRACES_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Total traces ever begun in this process (the zero-cost tests assert
/// this does not move while tracing is disabled).
pub fn traces_started() -> u64 {
    TRACES_STARTED.load(Ordering::Relaxed)
}

/// Traces dropped because the arena was exhausted.
pub fn traces_dropped() -> u64 {
    TRACES_DROPPED.load(Ordering::Relaxed)
}

/// A live handle on an in-flight request trace. `Copy`, so the serving
/// layer threads it through job structs by value. Pushes through a stale
/// handle (after [`finish_trace`] released the slot to another request)
/// are detected by the embedded id and dropped.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    buf: &'static RequestTrace,
    id: u64,
}

impl TraceCtx {
    /// The server-assigned trace id (echoed in the wire reply).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records one span on this request.
    pub fn push(&self, span: Span) {
        if self.buf.id.load(Ordering::Relaxed) != self.id {
            return; // Stale handle: the slot moved on.
        }
        self.buf.spans.push(ALL_QUERIES, span);
    }

    /// Tags the trace with the head/tail quartile (0 = head … 3 = tail)
    /// of its top-1 result's routed partition.
    pub fn set_tail_q(&self, q: u8) {
        if self.buf.id.load(Ordering::Relaxed) != self.id {
            return;
        }
        self.buf.tail_q.store(q as u32, Ordering::Relaxed);
    }
}

/// Begins a trace for one request: claims an arena slot (CAS probe
/// starting at the caller's metrics shard, same discipline as the
/// counters) and stamps the start time. Returns `None` when tracing is
/// disabled (one relaxed load, nothing else) or the arena is exhausted
/// (counted in [`traces_dropped`]).
pub fn begin_trace() -> Option<TraceCtx> {
    if !trace_enabled() {
        return None;
    }
    let arena = ARENA.get_or_init(Arena::new);
    let start = crate::metrics::recorder_shard() * (ARENA_SLOTS / crate::metrics::NUM_SHARDS);
    for probe in 0..ARENA_SLOTS {
        let slot = &arena.slots[(start + probe) % ARENA_SLOTS];
        if slot
            .state
            .compare_exchange(FREE, ACTIVE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed) + 1;
            slot.spans.reset();
            slot.id.store(id, Ordering::Relaxed);
            slot.start_us.store(crate::now_us(), Ordering::Relaxed);
            slot.tail_q.store(u32::MAX, Ordering::Relaxed);
            TRACES_STARTED.fetch_add(1, Ordering::Relaxed);
            return Some(TraceCtx { buf: slot, id });
        }
    }
    TRACES_DROPPED.fetch_add(1, Ordering::Relaxed);
    None
}

/// A complete request trace: the reservoir / wire / Chrome-export value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Server-assigned id (monotonic per process).
    pub id: u64,
    /// Trace begin, microseconds on the tracing epoch.
    pub start_us: u64,
    /// End-to-end duration in microseconds (begin → finish).
    pub total_us: u64,
    /// Head/tail quartile of the top-1 result's routed partition
    /// (0 = head … 3 = tail); `None` for unrouted or non-search requests.
    pub tail_q: Option<u8>,
    /// Spans in canonical `(stage, shard, start_us)` order — pipeline
    /// order, since stage ids are declared in pipeline order.
    pub spans: Vec<Span>,
}

/// Finishes a trace: snapshots the committed spans in canonical order,
/// releases the arena slot, and offers the completed [`Trace`] to the
/// tail reservoir and the Chrome sink. Callers must have stopped pushing
/// (the serving layer finishes only after the reply frame is written and
/// the executor pushes only before sending the reply).
pub fn finish_trace(ctx: TraceCtx) -> Option<Trace> {
    let buf = ctx.buf;
    if buf.id.load(Ordering::Relaxed) != ctx.id {
        return None;
    }
    let start_us = buf.start_us.load(Ordering::Relaxed);
    let total_us = crate::now_us().saturating_sub(start_us);
    let mut spans: Vec<Span> = buf.spans.collect().into_iter().map(|(_, s)| s).collect();
    spans.sort_by_key(|s| (s.stage, s.shard, s.start_us));
    let tq = buf.tail_q.load(Ordering::Relaxed);
    let trace = Trace {
        id: ctx.id,
        start_us,
        total_us,
        tail_q: (tq != u32::MAX).then_some(tq as u8),
        spans,
    };
    // Invalidate the id before releasing so the now-stale handle (and any
    // copy of it) fails the id check on a late push or double finish.
    buf.id.store(u64::MAX, Ordering::Relaxed);
    buf.state.store(FREE, Ordering::Release);
    RESERVOIR.offer(&trace);
    write_chrome(&trace);
    Some(trace)
}

// ---------------------------------------------------------------------
// Ambient span target: a thread-local the serving layer installs so that
// deeply nested code (the u8 re-rank inside the scan kernels, the WAL
// fsync inside the mutation path) can record spans without threading a
// handle through every signature.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AmbientTarget {
    Sink(SpanSink),
    Trace(TraceCtx),
}

#[derive(Debug, Clone)]
struct Ambient {
    target: AmbientTarget,
    query: u32,
    shard: u32,
}

thread_local! {
    static AMBIENT: RefCell<Option<Ambient>> = const { RefCell::new(None) };
}

/// Restores the previously installed ambient target on drop, so nested
/// scopes (a routed scan inside a batch) compose.
#[derive(Debug)]
pub struct AmbientGuard {
    prev: Option<Ambient>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|a| *a.borrow_mut() = self.prev.take());
    }
}

/// Installs `sink` as this thread's ambient span target, attributing
/// recorded spans to `(query, shard)` until retagged or dropped.
pub fn ambient_sink(sink: &SpanSink, query: u32, shard: u32) -> AmbientGuard {
    AMBIENT.with(|a| AmbientGuard {
        prev: a
            .borrow_mut()
            .replace(Ambient { target: AmbientTarget::Sink(sink.clone()), query, shard }),
    })
}

/// Installs a request trace as this thread's ambient span target (the
/// mutation path: WAL append / fsync / apply spans).
pub fn ambient_trace(ctx: TraceCtx) -> AmbientGuard {
    AMBIENT.with(|a| AmbientGuard {
        prev: a
            .borrow_mut()
            .replace(Ambient {
                target: AmbientTarget::Trace(ctx),
                query: ALL_QUERIES,
                shard: NO_SHARD,
            }),
    })
}

/// Re-attributes this thread's ambient target to `(query, shard)` — the
/// per-query / per-partition loops retag instead of reinstalling.
pub fn ambient_retag(query: u32, shard: u32) {
    AMBIENT.with(|a| {
        if let Some(amb) = a.borrow_mut().as_mut() {
            amb.query = query;
            amb.shard = shard;
        }
    });
}

/// True iff tracing is enabled *and* this thread has an ambient target —
/// the gate nested recorders check before reading the clock.
#[inline]
pub fn ambient_active() -> bool {
    trace_enabled() && AMBIENT.with(|a| a.borrow().is_some())
}

/// Records one span on this thread's ambient target (no-op without one).
/// The span inherits the ambient `(query, shard)` attribution.
pub fn ambient_record(stage: u8, start_us: u64, dur_us: u64, items: u64, reranked: u64) {
    if !trace_enabled() {
        return;
    }
    AMBIENT.with(|a| {
        if let Some(amb) = a.borrow().as_ref() {
            let span = Span { stage, shard: amb.shard, start_us, dur_us, items, reranked };
            match &amb.target {
                AmbientTarget::Sink(sink) => sink.push(amb.query, span),
                AmbientTarget::Trace(ctx) => ctx.push(span),
            }
        }
    });
}

// ---------------------------------------------------------------------
// Tail reservoir: the N slowest complete traces per window plus a
// uniform 1-in-K sample, always on while tracing is enabled.
// ---------------------------------------------------------------------

/// Slowest traces kept per window.
const SLOW_KEEP: usize = 8;
/// Uniform samples kept (ring).
const SAMPLE_KEEP: usize = 8;
/// Every K-th completion is sampled uniformly.
const SAMPLE_EVERY: u64 = 64;
/// Completions per slowest-window (the slow set resets so a one-off
/// startup stall does not pin the reservoir forever).
const WINDOW: u64 = 4096;

struct ReservoirState {
    completions: u64,
    slowest: Vec<Trace>,
    samples: Vec<Trace>,
    sample_pos: usize,
}

struct Reservoir {
    state: Mutex<ReservoirState>,
}

impl Reservoir {
    const fn new() -> Self {
        Self {
            state: Mutex::new(ReservoirState {
                completions: 0,
                slowest: Vec::new(),
                samples: Vec::new(),
                sample_pos: 0,
            }),
        }
    }

    /// Offers one completed trace. Uses `try_lock`: a contended offer is
    /// dropped so the completion path never blocks on the reservoir.
    fn offer(&self, trace: &Trace) {
        let Ok(mut r) = self.state.try_lock() else {
            return;
        };
        r.completions += 1;
        if r.completions % WINDOW == 0 {
            r.slowest.clear();
        }
        if r.slowest.len() < SLOW_KEEP {
            r.slowest.push(trace.clone());
        } else {
            let (mi, m_total) = r
                .slowest
                .iter()
                .enumerate()
                .map(|(i, t)| (i, t.total_us))
                .min_by_key(|&(_, t)| t)
                .expect("SLOW_KEEP > 0");
            if trace.total_us > m_total {
                r.slowest[mi] = trace.clone();
            }
        }
        if r.completions % SAMPLE_EVERY == 0 {
            if r.samples.len() < SAMPLE_KEEP {
                r.samples.push(trace.clone());
            } else {
                let pos = r.sample_pos % SAMPLE_KEEP;
                r.samples[pos] = trace.clone();
            }
            r.sample_pos += 1;
        }
    }

    /// The current reservoir contents: slowest first (descending
    /// total), then the uniform samples not already present.
    fn snapshot(&self) -> Vec<Trace> {
        let r = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = r.slowest.clone();
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
        for s in &r.samples {
            if !out.iter().any(|t| t.id == s.id) {
                out.push(s.clone());
            }
        }
        out
    }
}

static RESERVOIR: Reservoir = Reservoir::new();

/// The tail reservoir's current contents: the slowest complete traces of
/// the current window (descending total time) followed by the uniform
/// 1-in-K samples. The payload of the `Traces` wire request.
pub fn sampled_traces() -> Vec<Trace> {
    RESERVOIR.snapshot()
}

/// Test support: empties the tail reservoir so a test can assert on
/// exactly the traces it produced. Not part of the public API.
#[doc(hidden)]
pub fn reset_reservoir() {
    let mut r = RESERVOIR.state.lock().unwrap_or_else(|p| p.into_inner());
    r.completions = 0;
    r.slowest.clear();
    r.samples.clear();
    r.sample_pos = 0;
}

// ---------------------------------------------------------------------
// Chrome trace_event export (`serve --trace-out`): a hand-rolled JSON
// array of complete ("ph":"X") events, loadable in Perfetto or
// chrome://tracing. Mirrors the events sink: an atomic gate plus a
// mutexed writer, installed once at startup.
// ---------------------------------------------------------------------

static TRACE_OUT_ON: AtomicBool = AtomicBool::new(false);

struct ChromeSink {
    writer: BufWriter<std::fs::File>,
    first: bool,
}

static TRACE_OUT: Mutex<Option<ChromeSink>> = Mutex::new(None);

/// True iff a Chrome-trace sink is installed.
#[inline]
pub fn trace_out_enabled() -> bool {
    TRACE_OUT_ON.load(Ordering::Relaxed)
}

/// Installs (or replaces) the Chrome-trace sink at `path`, truncating
/// any existing file and writing the opening of the JSON array.
///
/// # Errors
/// Propagates file creation / write errors; the previous sink (if any)
/// stays installed on failure.
pub fn init_trace_out(path: &Path) -> std::io::Result<()> {
    crate::now_us(); // Pin the timestamp origin no later than sink installation.
    let mut writer = BufWriter::new(std::fs::File::create(path)?);
    writer.write_all(b"[\n")?;
    let mut sink = TRACE_OUT.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(mut old) = sink.replace(ChromeSink { writer, first: true }) {
        let _ = old.writer.flush();
    }
    TRACE_OUT_ON.store(true, Ordering::Relaxed);
    Ok(())
}

/// Closes the JSON array and flushes the Chrome-trace sink (no-op
/// without one). Call once at process exit; traces written after this
/// are dropped until a sink is reinstalled.
pub fn flush_trace_out() {
    if !trace_out_enabled() {
        return;
    }
    TRACE_OUT_ON.store(false, Ordering::Relaxed);
    let mut sink = TRACE_OUT.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(mut s) = sink.take() {
        let _ = s.writer.write_all(b"\n]\n");
        let _ = s.writer.flush();
    }
}

/// Appends one trace's events to `out` as comma-separated Chrome
/// `trace_event` objects (no leading/trailing comma).
fn chrome_events(trace: &Trace, out: &mut String) {
    use std::fmt::Write as _;
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // Lane 0 carries the serial pipeline; shard-attributed spans get
        // lane shard+1 so parallel scans stack visually.
        let tid = if s.shard == NO_SHARD { 0 } else { s.shard as u64 + 1 };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{},\"items\":{},\"reranked\":{}}}}}",
            stage_name(s.stage),
            s.start_us,
            s.dur_us,
            tid,
            trace.id,
            s.items,
            s.reranked,
        );
    }
}

/// Writes one completed trace to the Chrome sink (no-op without one).
/// This is the only completion-path operation that takes a real lock —
/// acceptable because the sink is opt-in diagnostics.
fn write_chrome(trace: &Trace) {
    if !trace_out_enabled() || trace.spans.is_empty() {
        return;
    }
    let mut body = String::with_capacity(trace.spans.len() * 144);
    chrome_events(trace, &mut body);
    let mut sink = TRACE_OUT.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(s) = sink.as_mut() {
        if !s.first {
            let _ = s.writer.write_all(b",\n");
        }
        s.first = false;
        let _ = s.writer.write_all(body.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global trace toggle and restores
    /// the previous state on drop (mirrors `crate::test_toggle`).
    struct TraceToggle {
        prev: bool,
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    impl Drop for TraceToggle {
        fn drop(&mut self) {
            set_trace_enabled(self.prev);
        }
    }

    fn trace_toggle(on: bool) -> TraceToggle {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let prev = trace_enabled();
        set_trace_enabled(on);
        TraceToggle { prev, _lock: lock }
    }

    fn span(stage: u8, shard: u32, start: u64) -> Span {
        Span { stage, shard, start_us: start, dur_us: 5, items: 10, reranked: 0 }
    }

    #[test]
    fn span_array_pushes_collects_and_drops_overflow() {
        let arr = SpanArray::new(2);
        arr.push(0, span(stage::DECODE, NO_SHARD, 1));
        arr.push(1, span(stage::SHARD_SCAN, 3, 2));
        arr.push(2, span(stage::MERGE, NO_SHARD, 3)); // dropped
        let got = arr.collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1.stage, stage::DECODE);
        assert_eq!(got[1].1.shard, 3);
        arr.reset();
        assert!(arr.collect().is_empty());
        arr.push(7, span(stage::RERANK, 1, 9));
        assert_eq!(arr.collect().len(), 1);
    }

    #[test]
    fn disabled_begin_trace_is_inert() {
        let _off = trace_toggle(false);
        let before = traces_started();
        assert!(begin_trace().is_none());
        assert!(begin_trace().is_none());
        assert_eq!(traces_started(), before);
    }

    #[test]
    fn trace_roundtrip_sorts_canonically_and_releases_the_slot() {
        let _on = trace_toggle(true);
        let ctx = begin_trace().expect("tracing enabled");
        // Push out of pipeline order; shard-scans out of shard order.
        ctx.push(span(stage::MERGE, NO_SHARD, 50));
        ctx.push(span(stage::SHARD_SCAN, 2, 30));
        ctx.push(span(stage::SHARD_SCAN, 0, 31));
        ctx.push(span(stage::DECODE, NO_SHARD, 1));
        ctx.set_tail_q(3);
        let trace = finish_trace(ctx).expect("live handle");
        let order: Vec<(u8, u32)> = trace.spans.iter().map(|s| (s.stage, s.shard)).collect();
        assert_eq!(
            order,
            vec![
                (stage::DECODE, NO_SHARD),
                (stage::SHARD_SCAN, 0),
                (stage::SHARD_SCAN, 2),
                (stage::MERGE, NO_SHARD),
            ]
        );
        assert_eq!(trace.tail_q, Some(3));
        // The slot is free again and the stale handle is inert.
        ctx.push(span(stage::REPLY, NO_SHARD, 99));
        assert!(finish_trace(ctx).is_none());
        let again = begin_trace().expect("slot released");
        assert!(again.id() > trace.id);
        let empty = finish_trace(again).expect("live handle");
        assert!(empty.spans.is_empty(), "reset cleared prior spans");
        assert_eq!(empty.tail_q, None);
    }

    #[test]
    fn ambient_sink_attributes_and_retags() {
        let _on = trace_toggle(true);
        let sink = SpanSink::new(8);
        {
            let _g = ambient_sink(&sink, 4, 1);
            assert!(ambient_active());
            ambient_record(stage::RERANK, 10, 2, 32, 5);
            ambient_retag(5, 2);
            ambient_record(stage::RERANK, 20, 2, 32, 6);
        }
        assert!(!ambient_active());
        ambient_record(stage::RERANK, 30, 2, 32, 7); // no target: dropped
        let got = sink.collect();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].0, got[0].1.shard, got[0].1.reranked), (4, 1, 5));
        assert_eq!((got[1].0, got[1].1.shard, got[1].1.reranked), (5, 2, 6));
    }

    #[test]
    fn ambient_guards_nest_and_restore() {
        let _on = trace_toggle(true);
        let outer = SpanSink::new(4);
        let inner = SpanSink::new(4);
        let _a = ambient_sink(&outer, 0, 0);
        {
            let _b = ambient_sink(&inner, 1, 1);
            ambient_record(stage::FSYNC, 1, 1, 0, 0);
        }
        ambient_record(stage::FSYNC, 2, 1, 0, 0);
        assert_eq!(inner.collect().len(), 1);
        assert_eq!(outer.collect().len(), 1);
        assert_eq!(outer.collect()[0].0, 0);
    }

    #[test]
    fn reservoir_keeps_slowest_and_uniform_samples() {
        let r = Reservoir::new();
        let mk = |id: u64, total: u64| Trace {
            id,
            start_us: 0,
            total_us: total,
            tail_q: None,
            spans: Vec::new(),
        };
        // 100 completions with increasing latency: the slow set must hold
        // the last SLOW_KEEP, and completions 64 (and only multiples of
        // 64) land in the uniform ring.
        for i in 1..=100u64 {
            r.offer(&mk(i, i * 10));
        }
        let snap = r.snapshot();
        let slow_ids: Vec<u64> = snap.iter().take(SLOW_KEEP).map(|t| t.id).collect();
        assert_eq!(slow_ids, vec![100, 99, 98, 97, 96, 95, 94, 93]);
        assert!(snap.iter().any(|t| t.id == 64), "1-in-64 uniform sample present");
    }

    #[test]
    fn reservoir_window_reset_forgets_old_stalls() {
        let r = Reservoir::new();
        let mk = |id: u64, total: u64| Trace {
            id,
            start_us: 0,
            total_us: total,
            tail_q: None,
            spans: Vec::new(),
        };
        r.offer(&mk(1, 1_000_000)); // startup stall
        for i in 2..=(WINDOW + 4) {
            r.offer(&mk(i, 10));
        }
        let snap = r.snapshot();
        assert!(
            !snap.iter().take(SLOW_KEEP).any(|t| t.id == 1),
            "the window reset must evict the pre-window stall"
        );
    }

    #[test]
    fn chrome_events_render_wellformed_json() {
        let trace = Trace {
            id: 7,
            start_us: 100,
            total_us: 60,
            tail_q: Some(2),
            spans: vec![
                span(stage::LUT_BUILD, NO_SHARD, 100),
                span(stage::SHARD_SCAN, 2, 110),
            ],
        };
        let mut out = String::new();
        chrome_events(&trace, &mut out);
        assert_eq!(
            out,
            "{\"name\":\"lut-build\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":100,\"dur\":5,\
             \"pid\":1,\"tid\":0,\"args\":{\"trace_id\":7,\"items\":10,\"reranked\":0}},\n\
             {\"name\":\"shard-scan\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":110,\"dur\":5,\
             \"pid\":1,\"tid\":3,\"args\":{\"trace_id\":7,\"items\":10,\"reranked\":0}}"
        );
    }

    #[test]
    fn stage_names_cover_every_id() {
        assert_eq!(stage_name(stage::ACCEPT), "accept");
        assert_eq!(stage_name(stage::SHARD_SCAN), "shard-scan");
        assert_eq!(stage_name(stage::REPLY), "reply");
        assert_eq!(stage_name(200), "?");
        assert_eq!(STAGE_NAMES.len(), stage::REPLY as usize + 1);
    }
}
