//! Structured JSONL event tracing.
//!
//! Events are typed records of the workspace's interesting moments
//! (train steps, fault retries, checkpoints, snapshot writes, LUT
//! builds, scan calls, batch executions). When a sink is installed
//! ([`init_events`], wired to `lightlt --events <path>`) each emitted
//! event appends one JSON object per line with a monotonic microsecond
//! timestamp. With no sink installed, [`emit`] is a relaxed load plus an
//! untaken branch — no allocation, no formatting, no lock.

use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Fast gate: true iff a sink is installed.
static EVENTS_ON: AtomicBool = AtomicBool::new(false);

/// The installed sink (replaceable, so tests and repeated CLI runs in one
/// process can redirect).
static SINK: Mutex<Option<BufWriter<std::fs::File>>> = Mutex::new(None);

/// Monotonic epoch: timestamps are microseconds since the first event
/// call in the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed on the monotonic clock since the process's
/// tracing epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// True iff an event sink is installed ([`emit`] will write).
#[inline]
pub fn events_enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

/// Installs (or replaces) the JSONL event sink at `path`, truncating any
/// existing file.
///
/// # Errors
/// Propagates the file-creation error; the previous sink (if any) stays
/// installed on failure.
pub fn init_events(path: &Path) -> std::io::Result<()> {
    epoch(); // Pin the timestamp origin no later than sink installation.
    let file = std::fs::File::create(path)?;
    let mut sink = SINK.lock().expect("event sink poisoned");
    if let Some(mut old) = sink.replace(BufWriter::new(file)) {
        let _ = old.flush();
    }
    EVENTS_ON.store(true, Ordering::Relaxed);
    Ok(())
}

/// Flushes the sink's buffer to disk (no-op without a sink). Call once at
/// process exit; events buffered but not flushed may be lost on abort.
pub fn flush_events() {
    if !events_enabled() {
        return;
    }
    if let Some(sink) = self_sink().as_mut() {
        let _ = sink.flush();
    }
}

fn self_sink() -> std::sync::MutexGuard<'static, Option<BufWriter<std::fs::File>>> {
    SINK.lock().expect("event sink poisoned")
}

/// A typed trace event. Borrowed strings keep emission allocation-light;
/// the JSON encoding is stable (fields in declaration order).
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// One optimizer step.
    TrainStep {
        /// Global step index.
        step: u64,
        /// Batch loss.
        loss: f32,
        /// Global gradient norm.
        grad_norm: f32,
        /// Learning rate applied this step.
        lr: f32,
    },
    /// A fault tripped and the trainer is retrying the epoch.
    FaultRetry {
        /// Epoch being retried.
        epoch: u64,
        /// Retry ordinal (1-based).
        retry: u64,
        /// Human-readable fault description.
        reason: &'a str,
    },
    /// Parameters rolled back to the last epoch snapshot.
    Rollback {
        /// Epoch whose snapshot was restored.
        epoch: u64,
    },
    /// A training checkpoint was written.
    Checkpoint {
        /// Step the checkpoint captured.
        step: u64,
        /// Wall time spent writing, in microseconds.
        micros: u64,
    },
    /// A serving index snapshot was written.
    SnapshotWrite {
        /// Index epoch the snapshot captured.
        epoch: u64,
        /// Wall time spent writing, in microseconds.
        micros: u64,
    },
    /// A GEMM-batched LUT build completed.
    LutBuild {
        /// Number of queries in the batch.
        queries: u64,
        /// Wall time, in microseconds.
        micros: u64,
    },
    /// A blocked ADC scan pass completed.
    ScanBlock {
        /// Queries scanned.
        queries: u64,
        /// Items scanned per query.
        items: u64,
        /// Wall time, in microseconds.
        micros: u64,
    },
    /// The serving executor ran one micro-batch.
    BatchExecute {
        /// Jobs in the batch.
        batch: u64,
        /// Wall time, in microseconds.
        micros: u64,
    },
    /// Startup replayed the write-ahead log.
    WalReplay {
        /// Records applied.
        records: u64,
        /// Bytes truncated off a torn or corrupt tail.
        truncated: u64,
        /// Wall time of the whole recovery, in microseconds.
        micros: u64,
    },
    /// A corrupt artifact was rejected and a fallback was taken
    /// (snapshot → older snapshot/base, WAL tail → truncated prefix).
    CorruptFallback {
        /// What was rejected (e.g. "wal", "MANIFEST", a snapshot name).
        what: &'a str,
        /// Why it was rejected.
        detail: &'a str,
    },
}

fn push_f32(out: &mut String, v: f32) {
    // NaN/inf are not valid JSON numbers; encode them as null.
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event<'_> {
    /// Appends the event as one JSON object (no trailing newline) to
    /// `out`.
    pub fn write_json(&self, out: &mut String, ts_us: u64) {
        let _ = write!(out, "{{\"ts_us\":{ts_us},\"type\":");
        match self {
            Event::TrainStep { step, loss, grad_norm, lr } => {
                let _ = write!(out, "\"train_step\",\"step\":{step},\"loss\":");
                push_f32(out, *loss);
                out.push_str(",\"grad_norm\":");
                push_f32(out, *grad_norm);
                out.push_str(",\"lr\":");
                push_f32(out, *lr);
            }
            Event::FaultRetry { epoch, retry, reason } => {
                let _ = write!(out, "\"fault_retry\",\"epoch\":{epoch},\"retry\":{retry},\"reason\":");
                push_str(out, reason);
            }
            Event::Rollback { epoch } => {
                let _ = write!(out, "\"rollback\",\"epoch\":{epoch}");
            }
            Event::Checkpoint { step, micros } => {
                let _ = write!(out, "\"checkpoint\",\"step\":{step},\"micros\":{micros}");
            }
            Event::SnapshotWrite { epoch, micros } => {
                let _ = write!(out, "\"snapshot\",\"epoch\":{epoch},\"micros\":{micros}");
            }
            Event::LutBuild { queries, micros } => {
                let _ = write!(out, "\"lut_build\",\"queries\":{queries},\"micros\":{micros}");
            }
            Event::ScanBlock { queries, items, micros } => {
                let _ = write!(
                    out,
                    "\"scan_block\",\"queries\":{queries},\"items\":{items},\"micros\":{micros}"
                );
            }
            Event::BatchExecute { batch, micros } => {
                let _ = write!(out, "\"batch_execute\",\"batch\":{batch},\"micros\":{micros}");
            }
            Event::WalReplay { records, truncated, micros } => {
                let _ = write!(
                    out,
                    "\"wal_replay\",\"records\":{records},\"truncated\":{truncated},\
                     \"micros\":{micros}"
                );
            }
            Event::CorruptFallback { what, detail } => {
                out.push_str("\"corrupt_fallback\",\"what\":");
                push_str(out, what);
                out.push_str(",\"detail\":");
                push_str(out, detail);
            }
        }
        out.push('}');
    }
}

/// Emits one event to the installed sink. Without a sink this is a
/// relaxed load plus an untaken branch (no allocation, no formatting).
pub fn emit(event: &Event<'_>) {
    if !events_enabled() {
        return;
    }
    let ts = now_us();
    let mut line = String::with_capacity(96);
    event.write_json(&mut line, ts);
    line.push('\n');
    if let Some(sink) = self_sink().as_mut() {
        let _ = sink.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encoding_is_stable_and_escaped() {
        let mut out = String::new();
        Event::TrainStep { step: 3, loss: 0.5, grad_norm: f32::NAN, lr: 0.01 }
            .write_json(&mut out, 42);
        assert_eq!(
            out,
            "{\"ts_us\":42,\"type\":\"train_step\",\"step\":3,\"loss\":0.5,\
             \"grad_norm\":null,\"lr\":0.01}"
        );

        let mut out = String::new();
        Event::FaultRetry { epoch: 1, retry: 2, reason: "loss is \"NaN\"\n" }
            .write_json(&mut out, 7);
        assert_eq!(
            out,
            "{\"ts_us\":7,\"type\":\"fault_retry\",\"epoch\":1,\"retry\":2,\
             \"reason\":\"loss is \\\"NaN\\\"\\n\"}"
        );

        let mut out = String::new();
        Event::WalReplay { records: 12, truncated: 34, micros: 56 }.write_json(&mut out, 1);
        assert_eq!(
            out,
            "{\"ts_us\":1,\"type\":\"wal_replay\",\"records\":12,\"truncated\":34,\
             \"micros\":56}"
        );

        let mut out = String::new();
        Event::CorruptFallback { what: "MANIFEST", detail: "crc \"bad\"" }.write_json(&mut out, 2);
        assert_eq!(
            out,
            "{\"ts_us\":2,\"type\":\"corrupt_fallback\",\"what\":\"MANIFEST\",\
             \"detail\":\"crc \\\"bad\\\"\"}"
        );
    }

    #[test]
    fn sink_roundtrip_and_disabled_noop() {
        // No sink installed: emit must be a no-op (this also guards the
        // ordering of this test vs. sink installation below).
        let dir = std::env::temp_dir().join(format!("lt_obs_events_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");

        init_events(&path).unwrap();
        emit(&Event::Rollback { epoch: 9 });
        emit(&Event::BatchExecute { batch: 4, micros: 120 });
        flush_events();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"rollback\""));
        assert!(lines[0].contains("\"epoch\":9"));
        assert!(lines[1].contains("\"type\":\"batch_execute\""));

        // Re-init replaces the sink and truncates.
        init_events(&path).unwrap();
        flush_events();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
