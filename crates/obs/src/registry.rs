//! Named metric registry and deterministic snapshots.
//!
//! A [`Registry`] maps dotted metric names (`serve.queue_wait_us`) to
//! shared metric handles. Handle creation is the cold path (a mutex over a
//! `BTreeMap`, hit once per call site via `OnceLock` statics); recording
//! through a handle never touches the registry. [`Registry::snapshot`]
//! walks the sorted map and merges every metric's shards, so two
//! snapshots of the same recorded multiset are equal — field for field —
//! regardless of thread width or interleaving.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{bucket_bounds, Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS};

/// A metric handle stored in the registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// Most code uses the process-wide [`Registry::global`]; tests that need
/// isolation construct their own with [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry that instrumented workspace crates
    /// register into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind
    /// (metric names are a compile-time inventory; a kind clash is a bug).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().expect("registry poisoned");
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    /// Panics on a kind clash, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().expect("registry poisoned");
        let metric =
            map.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or creates the histogram `name`.
    ///
    /// # Panics
    /// Panics on a kind clash, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().expect("registry poisoned");
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// A deterministic point-in-time snapshot: metrics in ascending name
    /// order, each merged across its shards.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("registry poisoned");
        let metrics = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { metrics }
    }
}

/// One metric's merged value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Merged counter value.
    Counter(u64),
    /// Merged gauge value.
    Gauge(i64),
    /// Merged histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time registry snapshot: `(name, value)` pairs sorted by
/// name. This is the payload of the serve protocol's `Metrics` response.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Metrics in ascending name order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// The counter value for `name`, or 0 when absent / not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram snapshot for `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Dotted names become underscore-separated (`serve.queue_wait_us` →
    /// `serve_queue_wait_us`); histograms render cumulative `_bucket`
    /// series with inclusive `le` bounds plus `_sum`/`_count`/`_max`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let flat: String =
                name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {flat} counter\n{flat} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {flat} gauge\n{flat} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {flat} histogram");
                    let mut cumulative = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate() {
                        cumulative += n;
                        if n == 0 && i != NUM_BUCKETS - 1 {
                            continue;
                        }
                        if i == NUM_BUCKETS - 1 {
                            let _ = writeln!(out, "{flat}_bucket{{le=\"+Inf\"}} {cumulative}");
                        } else {
                            let (_, hi) = bucket_bounds(i);
                            let _ = writeln!(out, "{flat}_bucket{{le=\"{hi}\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(out, "{flat}_sum {}", h.sum);
                    let _ = writeln!(out, "{flat}_count {}", h.count);
                    let _ = writeln!(out, "{flat}_max {}", h.max);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_toggle;

    #[test]
    fn handles_are_shared_and_snapshot_is_sorted() {
        let _on = test_toggle(true);
        let reg = Registry::new();
        let c1 = reg.counter("z.last");
        let c2 = reg.counter("z.last");
        c1.inc();
        c2.add(2);
        reg.gauge("a.first").add(-3);
        reg.histogram("m.mid").record(5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
        assert_eq!(snap.counter("z.last"), 3);
        assert_eq!(snap.get("a.first"), Some(&MetricValue::Gauge(-3)));
        assert_eq!(snap.histogram("m.mid").unwrap().count, 1);
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        let _ = reg.counter("dual");
        let _ = reg.gauge("dual");
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let _on = test_toggle(true);
        let reg = Registry::new();
        reg.counter("serve.searches").add(7);
        reg.gauge("serve.connections").add(2);
        let h = reg.histogram("serve.queue_wait_us");
        for v in [0u64, 3, 900, 900] {
            h.record(v);
        }
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE serve_searches counter"));
        assert!(text.contains("serve_searches 7"));
        assert!(text.contains("serve_connections 2"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"3\"} 2"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"1023\"} 4"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("serve_queue_wait_us_sum 1803"));
        assert!(text.contains("serve_queue_wait_us_count 4"));
        assert!(text.contains("serve_queue_wait_us_max 900"));
    }
}
