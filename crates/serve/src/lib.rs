//! lt-serve: concurrent query serving for a [`lightlt_core`] quantized
//! index — std-only (no async runtime, no external network crates).
//!
//! Four layers, one per module:
//!
//! - [`protocol`] — length-prefixed binary wire format. Every frame is
//!   `[len: u32 LE][payload][crc32(payload): u32 LE]`; payloads are tagged
//!   little-endian encodings of typed [`protocol::Request`] /
//!   [`protocol::Response`] values. Scores travel as raw `f32` bits, so
//!   the wire never perturbs the engine's bitwise-deterministic results.
//! - [`server`] — TCP front end on `std::net`: an accept thread, one
//!   reader thread per connection, and admission control into a bounded
//!   submission queue (a full queue answers a typed `Overloaded`, never
//!   blocks the accept path).
//! - [`batch`] — the micro-batching executor. Searches wait in the queue
//!   until `max_batch` of them are ready or the oldest has waited
//!   `max_delay`, then execute as one `adc_search_batch` call (GEMM-
//!   batched LUT construction) on the shared [`lt_runtime`] pool. Batched
//!   results are bitwise identical to per-query `adc_search`.
//! - [`state`] — epoch/snapshot index management: copy-on-write snapshots
//!   over online `append`/`swap_remove`, checksummed `LTINDEX3` disk
//!   snapshots, and a crash-safe startup loader.
//! - [`wal`] — durable online mutations: a CRC32-framed, sequence-
//!   numbered write-ahead log with configurable fsync policies, torn-tail
//!   truncation, manifest-committed snapshot rotation, and deterministic
//!   crash injection ([`wal::CrashPoint`]).
//! - [`recovery`] — the WAL startup path: newest valid snapshot +
//!   WAL-suffix replay, bitwise-identical to the pre-crash state.
//!
//! [`client::ServeClient`] is the matching blocking client
//! ([`client::RetryClient`] adds bounded retry-with-backoff across
//! restarts), used by the CLI (`lightlt query`), the integration tests,
//! and the `lt-bench serve` load generator.
//!
//! Serving is instrumented with [`lt_obs`]: queue-wait / batch-size /
//! service-time histograms, refusal counters, a live-connection gauge, and
//! snapshot-write timing, all exposed over the wire via the versioned
//! `Metrics` request ([`protocol::METRICS_VERSION`]). Recording is on by
//! default ([`ServeConfig::metrics`]) and compiles down to a relaxed load
//! plus untaken branch when disabled.

pub mod batch;
pub mod client;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod state;
pub mod wal;

pub use client::{RetryClient, RetryPolicy, ServeClient, ServeError};
pub use protocol::{Request, Response, ServeStats, METRICS_VERSION};
pub use recovery::{recover, RecoveryReport, RecoverySource};
pub use server::{ServeConfig, Server};
pub use state::{load_index_with_snapshot, IndexState, MutationError};
pub use wal::{CrashPlan, CrashPoint, FsyncPolicy, Manifest, ReplayReport, WalRecord, WalWriter};
