//! Index-state manager: epoch/snapshot semantics over online mutations.
//!
//! Readers never block writers and vice versa beyond an `Arc` clone: the
//! live index is an `Arc<QuantizedIndex>` behind an `RwLock`. A search
//! batch grabs the `Arc` (a **snapshot**: immutable for the whole batch,
//! even while upserts land concurrently) and scans without holding any
//! lock. A mutation takes the write lock and `Arc::make_mut`s the index —
//! copy-on-write: the clone happens only when a reader still holds the
//! previous snapshot, and consecutive mutations between batches mutate in
//! place. Every mutation bumps the **epoch**; a batch formed after a
//! mutation's acknowledgement therefore always observes it.
//!
//! Durability has two modes:
//!
//! * **Snapshot-only** ([`IndexState::new`]): [`IndexState::write_snapshot`]
//!   serializes the current snapshot as a checksummed `LTINDEX3` image to a
//!   temp file and atomically renames it into place (fsyncing the parent
//!   directory so the rename itself survives power loss).
//!   [`load_index_with_snapshot`] is the startup path: prefer the newest
//!   valid snapshot, fall back to the base image.
//! * **WAL** ([`IndexState::with_wal`], built by [`crate::recovery::recover`]):
//!   every mutation is appended to a CRC-framed write-ahead log **before**
//!   it is applied or acknowledged, per the configured
//!   [`crate::wal::FsyncPolicy`]. A WAL I/O failure refuses the mutation
//!   with [`MutationError::Durability`] — the server never acknowledges
//!   state it cannot recover. In this mode the epoch **is** the WAL
//!   sequence number, and [`IndexState::write_durable_snapshot`] commits
//!   `snap-<seq>.ltidx` images through the manifest (see [`crate::wal`]).
//!
//! Lock poisoning is recovered, not propagated: a panicking writer thread
//! leaves the index in whatever consistent state its last completed
//! mutation produced (mutations validate before touching the index), so
//! later requests proceed instead of cascading panics.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use lightlt_core::index::QuantizedIndex;
use lightlt_core::persist::{deserialize_index, serialize_index};
use lt_linalg::Matrix;

use crate::wal::{
    crash_point, snapshot_name, sync_dir, wal_obs, CrashPoint, Manifest, WalRecord, WalWriter,
};

/// Why a mutation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The request itself is invalid (dimension mismatch, id out of
    /// bounds). Nothing was logged or applied; retrying is pointless.
    Rejected(String),
    /// The request is valid but could not be made durable (WAL I/O
    /// failure). Nothing was applied or acknowledged; retrying may
    /// succeed once the disk recovers.
    Durability(String),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Rejected(m) => write!(f, "{m}"),
            MutationError::Durability(m) => write!(f, "durability failure: {m}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// Recovers a possibly-poisoned `Mutex` guard: the protected state is
/// kept consistent by construction (see module docs), so a panicking
/// previous holder must not wedge every later request into a panic.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Concurrent owner of the live [`QuantizedIndex`].
#[derive(Debug)]
pub struct IndexState {
    current: RwLock<Arc<QuantizedIndex>>,
    epoch: AtomicU64,
    /// Serializes [`IndexState::write_snapshot`] calls: the background
    /// snapshotter and inline `Snapshot` requests share one temp path, and
    /// an unserialized pair can rename a half-written temp file over the
    /// previous valid snapshot.
    snapshot_write: Mutex<()>,
    /// Write-ahead log (WAL mode only). Locked after the index write lock
    /// and never the other way, so log order equals apply order.
    wal: Option<Mutex<WalWriter>>,
    /// Directory holding WAL segments, `snap-*.ltidx` images, and the
    /// manifest (WAL mode only).
    wal_dir: Option<PathBuf>,
}

impl IndexState {
    /// Wraps an index at epoch 0 with no write-ahead log (snapshot-only
    /// durability).
    pub fn new(index: QuantizedIndex) -> Self {
        Self {
            current: RwLock::new(Arc::new(index)),
            epoch: AtomicU64::new(0),
            snapshot_write: Mutex::new(()),
            wal: None,
            wal_dir: None,
        }
    }

    /// Wraps a recovered index at `epoch` with a live WAL writer whose
    /// next seq must be `epoch + 1` (in WAL mode the epoch is the seq of
    /// the last logged mutation). Built by [`crate::recovery::recover`].
    pub fn with_wal(
        index: QuantizedIndex,
        epoch: u64,
        writer: WalWriter,
        wal_dir: PathBuf,
    ) -> Self {
        debug_assert_eq!(writer.next_seq(), epoch + 1, "WAL seq must continue the epoch");
        Self {
            current: RwLock::new(Arc::new(index)),
            epoch: AtomicU64::new(epoch),
            snapshot_write: Mutex::new(()),
            wal: Some(Mutex::new(writer)),
            wal_dir: Some(wal_dir),
        }
    }

    /// True when mutations are logged to a WAL before acknowledgement.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// An immutable snapshot of the current index. Cheap (`Arc` clone);
    /// the snapshot stays valid and unchanged for as long as the caller
    /// holds it, regardless of concurrent mutations.
    pub fn snapshot(&self) -> Arc<QuantizedIndex> {
        self.current.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The current mutation epoch (bumps on every successful
    /// upsert/delete; in WAL mode it equals the last logged seq).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// A consistent `(snapshot, epoch)` pair (taken under one read lock).
    pub fn snapshot_with_epoch(&self) -> (Arc<QuantizedIndex>, u64) {
        let guard = self.current.read().unwrap_or_else(|e| e.into_inner());
        (guard.clone(), self.epoch.load(Ordering::SeqCst))
    }

    /// Test hook: make the next WAL append fail with an injected I/O
    /// error (no-op without a WAL), exercising the typed durability
    /// refusal without real disk faults.
    pub fn fail_next_wal_append(&self) {
        if let Some(wal) = &self.wal {
            lock_unpoisoned(wal).fail_next_append();
        }
    }

    /// Forces an fsync of the WAL (no-op without one). Used at graceful
    /// shutdown so a `never`/group tail is not left to the OS.
    ///
    /// # Errors
    /// Propagates the fsync failure.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        match &self.wal {
            Some(wal) => lock_unpoisoned(wal).sync(),
            None => Ok(()),
        }
    }

    /// The WAL's fsync policy, when one is configured.
    pub fn wal_policy(&self) -> Option<crate::wal::FsyncPolicy> {
        self.wal.as_ref().map(|w| lock_unpoisoned(w).policy())
    }

    /// Flushes an overdue group-commit tail (no-op without a WAL, under
    /// `always`/`never`, or with nothing pending). The group policy's
    /// time threshold is only evaluated at append time, so the server's
    /// flusher thread calls this periodically — otherwise a burst
    /// followed by idle traffic would leave the tail unsynced until
    /// shutdown.
    ///
    /// # Errors
    /// Propagates the fsync failure.
    pub fn sync_wal_if_due(&self) -> std::io::Result<()> {
        match &self.wal {
            Some(wal) => lock_unpoisoned(wal).sync_if_due(),
            None => Ok(()),
        }
    }

    /// Logs `record` ahead of applying it. Must be called with the index
    /// write lock held so log order equals apply order.
    fn wal_append(&self, record: &WalRecord) -> Result<(), MutationError> {
        let Some(wal) = &self.wal else { return Ok(()) };
        lock_unpoisoned(wal)
            .append(record)
            .map(|_seq| ())
            .map_err(|e| MutationError::Durability(format!("WAL append failed: {e}")))
    }

    /// Appends `rows` (online encode); returns the assigned id range. In
    /// WAL mode the mutation is logged (and fsynced per policy) before it
    /// is applied, so acknowledgement implies durability.
    ///
    /// # Errors
    /// [`MutationError::Rejected`] on a dimension mismatch,
    /// [`MutationError::Durability`] when the WAL refuses the append
    /// (nothing is applied in either case; never panics).
    pub fn upsert(&self, rows: &Matrix) -> Result<std::ops::Range<usize>, MutationError> {
        let mut guard = self.current.write().unwrap_or_else(|e| e.into_inner());
        if rows.cols() != guard.dim() {
            return Err(MutationError::Rejected(format!(
                "upsert dimension {} does not match index dimension {}",
                rows.cols(),
                guard.dim()
            )));
        }
        if rows.rows() == 0 {
            return Err(MutationError::Rejected("upsert of zero rows".into()));
        }
        self.wal_append(&WalRecord::Upsert {
            dim: rows.cols() as u32,
            rows: rows.as_slice().to_vec(),
        })?;
        let assigned = Arc::make_mut(&mut guard).append(rows);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(assigned)
    }

    /// Swap-removes item `id`; returns the id that moved into its slot.
    /// In WAL mode the mutation is logged before it is applied.
    ///
    /// # Errors
    /// [`MutationError::Rejected`] on an out-of-bounds id,
    /// [`MutationError::Durability`] when the WAL refuses the append
    /// (nothing is applied in either case; never panics).
    pub fn delete(&self, id: usize) -> Result<Option<usize>, MutationError> {
        let mut guard = self.current.write().unwrap_or_else(|e| e.into_inner());
        if id >= guard.len() {
            return Err(MutationError::Rejected(format!(
                "delete id {id} out of bounds ({} items)",
                guard.len()
            )));
        }
        self.wal_append(&WalRecord::Delete { id: id as u64 })?;
        let moved = Arc::make_mut(&mut guard).swap_remove(id);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(moved)
    }

    /// Writes a checksummed `LTINDEX3` snapshot of the current index to
    /// `path`, atomically (temp file + fsync + rename + parent-dir
    /// fsync). Returns the epoch the snapshot captured.
    ///
    /// # Errors
    /// Propagates I/O errors; the previous snapshot file, if any, is left
    /// untouched on failure.
    pub fn write_snapshot(&self, path: &Path) -> std::io::Result<u64> {
        let observe = lt_obs::enabled() || lt_obs::events_enabled();
        let t0 = observe.then(std::time::Instant::now);
        // One writer at a time: concurrent calls share the temp path, and
        // the snapshot must be taken inside the critical section so the
        // last rename installs the newest captured epoch.
        let _writing = lock_unpoisoned(&self.snapshot_write);
        let (snapshot, epoch) = self.snapshot_with_epoch();
        // Serialize outside any lock: the Arc keeps the image consistent.
        let image = serialize_index(&snapshot);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &image)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // The rename is only durable once the directory entry is synced.
        if let Some(parent) = path.parent() {
            sync_dir(parent);
        }
        if let Some(t0) = t0 {
            let micros = lt_obs::micros_since(t0);
            crate::batch::serve_obs().snapshot_us.record(micros);
            lt_obs::emit(&lt_obs::Event::SnapshotWrite { epoch, micros });
        }
        Ok(epoch)
    }

    /// Writes a durable snapshot into the WAL directory and commits it
    /// through the manifest: `snap-<seq>.ltidx` temp + fsync + rename +
    /// dir fsync, then the manifest (the atomic commit point), then WAL
    /// rotation and pruning. A crash anywhere in between recovers to a
    /// consistent state: before the manifest commit the previous
    /// snapshot's WAL suffix is still intact. Returns the covered seq.
    ///
    /// # Errors
    /// Propagates I/O errors, and refuses with `InvalidInput` when the
    /// state has no WAL.
    pub fn write_durable_snapshot(&self) -> std::io::Result<u64> {
        let (Some(wal), Some(dir)) = (&self.wal, &self.wal_dir) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "durable snapshots require a WAL directory",
            ));
        };
        let observe = lt_obs::enabled() || lt_obs::events_enabled();
        let t0 = observe.then(std::time::Instant::now);
        let _writing = lock_unpoisoned(&self.snapshot_write);
        // The epoch is the seq of the last logged mutation: everything
        // the image contains is covered by seqs `..= epoch`.
        let (snapshot, covered_seq) = self.snapshot_with_epoch();
        let image = serialize_index(&snapshot);
        let name = snapshot_name(covered_seq);
        let path = dir.join(&name);
        let tmp = dir.join(format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &image)?;
            f.sync_all()?;
        }
        crash_point(CrashPoint::MidRename);
        std::fs::rename(&tmp, &path)?;
        sync_dir(dir);
        crash_point(CrashPoint::PostSnapshotPreManifest);
        Manifest { covered_seq, epoch: covered_seq, snapshot_file: name }.write(dir)?;
        // Committed: rotate to a fresh segment and prune what the
        // retained snapshots fully cover.
        lock_unpoisoned(wal).rotate_and_prune()?;
        if let Some(t0) = t0 {
            let micros = lt_obs::micros_since(t0);
            crate::batch::serve_obs().snapshot_us.record(micros);
            lt_obs::emit(&lt_obs::Event::SnapshotWrite { epoch: covered_seq, micros });
        }
        Ok(covered_seq)
    }
}

/// Startup loader with crash-safe snapshot preference.
///
/// Tries `snapshot_path` first (if given): a valid checksummed image there
/// is the most recent durable state, so it wins. A missing or corrupt
/// snapshot (e.g. the process died mid-write on a filesystem without
/// atomic rename, or the file rotted) falls back to `base_path`, counting
/// the `wal.fallbacks` metric and logging a `corrupt_fallback` event.
/// Returns the index and `true` when it came from the snapshot.
///
/// # Errors
/// Returns a message when neither source yields a valid index.
pub fn load_index_with_snapshot(
    base_path: Option<&Path>,
    snapshot_path: Option<&Path>,
) -> Result<(QuantizedIndex, bool), String> {
    if let Some(snap) = snapshot_path {
        if snap.exists() {
            let rejected = |e: &str| {
                wal_obs().fallbacks.inc();
                lt_obs::emit(&lt_obs::Event::CorruptFallback { what: "snapshot", detail: e });
                eprintln!(
                    "warning: snapshot {} rejected ({e}); using base index",
                    snap.display()
                );
            };
            match std::fs::read(snap) {
                Ok(bytes) => match deserialize_index(&bytes) {
                    Ok(index) => return Ok((index, true)),
                    // Corrupt snapshot: fall through to the base image.
                    Err(e) => rejected(&e),
                },
                Err(e) => rejected(&e.to_string()),
            }
        }
    }
    let base = base_path.ok_or("no valid snapshot and no base index path")?;
    let bytes =
        std::fs::read(base).map_err(|e| format!("reading index {}: {e}", base.display()))?;
    let index = deserialize_index(&bytes).map_err(|e| format!("index {}: {e}", base.display()))?;
    Ok((index, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightlt_core::config::CodebookTopology;
    use lightlt_core::dsq::Dsq;
    use lightlt_core::search::adc_search;
    use lt_linalg::random::{randn, rng};
    use lt_linalg::Metric;
    use lt_tensor::ParamStore;

    fn build_index(n: usize, seed: u64) -> QuantizedIndex {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            6,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(n, 6, &mut rng(seed + 1)).scale(0.4);
        QuantizedIndex::build(&dsq, &store, &db)
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lt_serve_state_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshots_are_immutable_under_mutation() {
        let state = IndexState::new(build_index(20, 1));
        let before = state.snapshot();
        let n0 = before.len();
        let rows = randn(3, 6, &mut rng(9)).scale(0.4);
        let assigned = state.upsert(&rows).unwrap();
        assert_eq!(assigned, n0..n0 + 3);
        // The old snapshot is frozen; a fresh one sees the mutation.
        assert_eq!(before.len(), n0);
        assert_eq!(state.snapshot().len(), n0 + 3);
        assert_eq!(state.epoch(), 1);
    }

    #[test]
    fn mutations_match_direct_index_ops() {
        let base = build_index(20, 2);
        let state = IndexState::new(base.clone());
        let mut mirror = base;
        let rows = randn(4, 6, &mut rng(10)).scale(0.4);
        assert_eq!(state.upsert(&rows).unwrap(), mirror.append(&rows));
        assert_eq!(state.delete(2).unwrap(), mirror.swap_remove(2));
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.2, -0.1];
        let a = adc_search(&state.snapshot(), &q, 5);
        let b = adc_search(&mirror, &q, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn bad_mutations_are_typed_errors() {
        let state = IndexState::new(build_index(10, 3));
        let wrong = randn(2, 4, &mut rng(11));
        assert!(matches!(
            state.upsert(&wrong),
            Err(MutationError::Rejected(ref m)) if m.contains("dimension")
        ));
        assert!(matches!(
            state.delete(100),
            Err(MutationError::Rejected(ref m)) if m.contains("out of bounds")
        ));
        assert_eq!(state.epoch(), 0, "failed mutations must not bump the epoch");
    }

    #[test]
    fn snapshot_write_and_preferred_reload() {
        let dir = tmp("reload");
        let base_path = dir.join("base.bin");
        let snap_path = dir.join("live.snap");
        let base = build_index(15, 4);
        std::fs::write(&base_path, serialize_index(&base)).unwrap();

        let state = IndexState::new(base);
        let rows = randn(2, 6, &mut rng(12)).scale(0.4);
        state.upsert(&rows).unwrap();
        let epoch = state.write_snapshot(&snap_path).unwrap();
        assert_eq!(epoch, 1);

        // Reload prefers the snapshot (17 items), not the base (15).
        let (reloaded, from_snap) =
            load_index_with_snapshot(Some(&base_path), Some(&snap_path)).unwrap();
        assert!(from_snap);
        assert_eq!(reloaded.len(), 17);

        // Corrupt snapshot falls back to the base image.
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).unwrap();
        let (fallback, from_snap) =
            load_index_with_snapshot(Some(&base_path), Some(&snap_path)).unwrap();
        assert!(!from_snap);
        assert_eq!(fallback.len(), 15);

        // No valid source at all is a typed error.
        std::fs::remove_file(&base_path).unwrap();
        assert!(load_index_with_snapshot(Some(&base_path), Some(&snap_path)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_mode_logs_before_apply_and_refuses_on_failure() {
        use crate::wal::FsyncPolicy;
        let dir = tmp("wal_mode");
        let writer = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        let state = IndexState::with_wal(build_index(10, 5), 0, writer, dir.clone());
        assert!(state.wal_enabled());

        let rows = randn(2, 6, &mut rng(13)).scale(0.4);
        state.upsert(&rows).unwrap();
        state.delete(0).unwrap();
        assert_eq!(state.epoch(), 2, "epoch tracks the WAL seq");

        // An injected WAL failure refuses the mutation without applying
        // it or bumping the epoch — durability is never silently dropped.
        let len_before = state.snapshot().len();
        state.fail_next_wal_append();
        let err = state.upsert(&rows).unwrap_err();
        assert!(matches!(err, MutationError::Durability(_)), "got {err:?}");
        assert_eq!(state.snapshot().len(), len_before);
        assert_eq!(state.epoch(), 2);

        // The writer recovers: the next mutation succeeds and replays.
        state.upsert(&rows).unwrap();
        assert_eq!(state.epoch(), 3);
        let mut count = 0;
        crate::wal::replay_wal(&dir, 0, |_seq, _rec| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 3, "exactly the acknowledged mutations are logged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_snapshot_commits_manifest_and_rotates() {
        use crate::wal::FsyncPolicy;
        let dir = tmp("durable_snap");
        let writer = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        let state = IndexState::with_wal(build_index(12, 6), 0, writer, dir.clone());
        let rows = randn(3, 6, &mut rng(14)).scale(0.4);
        state.upsert(&rows).unwrap();
        state.delete(1).unwrap();

        let covered = state.write_durable_snapshot().unwrap();
        assert_eq!(covered, 2);
        let manifest = Manifest::read(&dir).unwrap();
        assert_eq!(manifest.covered_seq, 2);
        assert_eq!(manifest.snapshot_file, snapshot_name(2));
        let image = std::fs::read(dir.join(&manifest.snapshot_file)).unwrap();
        let reloaded = deserialize_index(&image).unwrap();
        assert_eq!(serialize_index(&reloaded), serialize_index(&state.snapshot()));

        // Mutations after the snapshot land in the rotated segment and
        // replay on top of it.
        state.upsert(&rows).unwrap();
        let mut replayed = 0;
        crate::wal::replay_wal(&dir, covered, |seq, _rec| {
            assert_eq!(seq, 3);
            replayed += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
