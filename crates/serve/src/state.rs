//! Index-state manager: sharded epoch/snapshot semantics over online
//! mutations.
//!
//! The live index is partitioned into `num_shards` **shards** under the
//! modulo routing rule (global id `g` lives in shard `g % S` at local slot
//! `g / S`; `S = 1` is the unsharded special case). Each shard is an
//! independently locked epoch-versioned COW cell: an `Arc<QuantizedIndex>`
//! behind its own `RwLock` plus an atomic epoch recording the last mutation
//! that touched it. A search batch grabs every shard's `Arc` under the read
//! locks (a consistent **snapshot set**: immutable for the whole batch,
//! even while upserts land concurrently) and scans without holding any
//! lock. A mutation serializes behind the mutation mutex, acquires the
//! shard write locks in ascending order, and `Arc::make_mut`s only the
//! shards it touches — copy-on-write: the clone happens only when a reader
//! still holds the previous snapshot, and consecutive mutations between
//! batches mutate in place. Every mutation bumps the global **epoch** (and
//! stamps it onto the touched shards); a batch formed after a mutation's
//! acknowledgement therefore always observes it.
//!
//! Ordered lock acquisition (mutations and snapshot sets both walk shards
//! ascending, writers holding the mutation mutex) makes the cross-shard
//! view atomic: a snapshot set always reflects a whole number of
//! mutations, so the round-robin partition invariant — shard `i` holds
//! exactly the global ids congruent to `i` — holds in every snapshot.
//! That invariant is what lets the executor map a shard-local hit back to
//! its global id as `local · S + shard` with no id table.
//!
//! Durability has two modes, both speaking **unsharded** artifacts (a
//! snapshot image is one global `LTINDEX3` index, split back into shards
//! on load, so legacy single-shard images serve sharded and vice versa):
//!
//! * **Snapshot-only** ([`IndexState::new`]): [`IndexState::write_snapshot`]
//!   serializes the merged index as a checksummed `LTINDEX3` image to a
//!   temp file and atomically renames it into place (fsyncing the parent
//!   directory so the rename itself survives power loss).
//!   [`load_index_with_snapshot`] is the startup path: prefer the newest
//!   valid snapshot, fall back to the base image.
//! * **WAL** ([`IndexState::with_wal`], built by [`crate::recovery::recover`]):
//!   every mutation is appended to a CRC-framed write-ahead log **before**
//!   it is applied or acknowledged, per the configured
//!   [`crate::wal::FsyncPolicy`]. A WAL I/O failure refuses the mutation
//!   with [`MutationError::Durability`] — the server never acknowledges
//!   state it cannot recover. In this mode the epoch **is** the WAL
//!   sequence number (per shard: the seq of the last record that touched
//!   it), and [`IndexState::write_durable_snapshot`] commits
//!   `snap-<seq>.ltidx` images through the manifest (see [`crate::wal`]).
//!
//! Lock poisoning is recovered, not propagated: a panicking writer thread
//! leaves the shards in whatever consistent state its last completed
//! mutation produced (mutations validate before touching any shard), so
//! later requests proceed instead of cascading panics.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockWriteGuard};

use lightlt_core::index::{merge_modulo, split_modulo, QuantizedIndex};
use lightlt_core::persist::{deserialize_index, serialize_index};
use lightlt_core::route::RoutedIndex;
use lightlt_core::search::SearchError;
use lt_linalg::{Matrix, Metric};

use crate::wal::{
    crash_point, snapshot_name, sync_dir, wal_obs, CrashPoint, Manifest, WalRecord, WalWriter,
};

/// Why a mutation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The request itself is invalid (dimension mismatch, id out of
    /// bounds). Nothing was logged or applied; retrying is pointless.
    Rejected(String),
    /// The request is valid but could not be made durable (WAL I/O
    /// failure). Nothing was applied or acknowledged; retrying may
    /// succeed once the disk recovers.
    Durability(String),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Rejected(m) => write!(f, "{m}"),
            MutationError::Durability(m) => write!(f, "durability failure: {m}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// Recovers a possibly-poisoned `Mutex` guard: the protected state is
/// kept consistent by construction (see module docs), so a panicking
/// previous holder must not wedge every later request into a panic.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One shard: an independently locked epoch-versioned COW cell plus its
/// lock-free stats mirrors and per-shard obs handles.
#[derive(Debug)]
struct ShardCell {
    cell: RwLock<Arc<QuantizedIndex>>,
    /// Epoch of the last mutation that touched this shard (WAL mode: the
    /// seq of that record).
    epoch: AtomicU64,
    /// Lock-free mirror of the shard's item count, maintained under the
    /// mutation mutex; serves `Stats` and the items gauge without taking
    /// shard locks.
    items: AtomicU64,
    /// `serve.shard_items.<i>` — live item count (delta-maintained: the
    /// gauge API is add/sub only).
    items_gauge: Arc<lt_obs::Gauge>,
    /// `serve.shard_mutations.<i>` — mutations that touched this shard.
    mutations: Arc<lt_obs::Counter>,
}

impl ShardCell {
    fn new(index: QuantizedIndex, shard_idx: usize) -> Self {
        let reg = lt_obs::Registry::global();
        let items = index.len() as u64;
        Self {
            cell: RwLock::new(Arc::new(index)),
            epoch: AtomicU64::new(0),
            items: AtomicU64::new(items),
            items_gauge: reg.gauge(&format!("serve.shard_items.{shard_idx}")),
            mutations: reg.counter(&format!("serve.shard_mutations.{shard_idx}")),
        }
    }
}

/// Coarse-routing overlay: a partitioned view of the same corpus, kept in
/// lockstep with the shard cells under the mutation mutex. Searches grab
/// the `Arc` under the read lock and scan without holding it (COW, same
/// discipline as the shard cells); `nprobe` is fixed at enablement.
#[derive(Debug)]
struct RouteCell {
    view: RwLock<Arc<RoutedIndex>>,
    nprobe: usize,
}

/// Concurrent owner of the live, possibly sharded [`QuantizedIndex`].
#[derive(Debug)]
pub struct IndexState {
    shards: Vec<ShardCell>,
    epoch: AtomicU64,
    /// Lock-free mirror of the total item count (sum of shard counts),
    /// maintained under the mutation mutex.
    total_items: AtomicU64,
    // Immutable shape metadata, so admission checks and `Stats` never
    // need a merged snapshot.
    dim: usize,
    num_codebooks: usize,
    num_codewords: usize,
    metric: Metric,
    /// Serializes mutations: WAL log order equals apply order, and the
    /// per-shard write locks are always taken in ascending order under
    /// this mutex, so snapshot sets are cross-shard consistent.
    mutation: Mutex<()>,
    /// Serializes [`IndexState::write_snapshot`] calls: the background
    /// snapshotter and inline `Snapshot` requests share one temp path, and
    /// an unserialized pair can rename a half-written temp file over the
    /// previous valid snapshot.
    snapshot_write: Mutex<()>,
    /// Write-ahead log (WAL mode only). Locked under the mutation mutex
    /// and never the other way, so log order equals apply order.
    wal: Option<Mutex<WalWriter>>,
    /// Directory holding WAL segments, `snap-*.ltidx` images, and the
    /// manifest (WAL mode only).
    wal_dir: Option<PathBuf>,
    /// Coarse-routing overlay (None = exhaustive scans). Enabled before
    /// the state is shared; mutations keep it in lockstep afterwards.
    route: Option<RouteCell>,
}

impl IndexState {
    /// Wraps an index at epoch 0 with no write-ahead log (snapshot-only
    /// durability), unsharded.
    pub fn new(index: QuantizedIndex) -> Self {
        Self::new_sharded(index, 1)
    }

    /// Wraps an index at epoch 0 partitioned into `num_shards` modulo-routed
    /// shards (snapshot-only durability).
    ///
    /// # Panics
    /// Panics when `num_shards == 0`.
    pub fn new_sharded(index: QuantizedIndex, num_shards: usize) -> Self {
        Self::build(index, num_shards, 0, None, None)
    }

    /// Wraps a recovered index at `epoch` with a live WAL writer whose
    /// next seq must be `epoch + 1` (in WAL mode the epoch is the seq of
    /// the last logged mutation). Built by [`crate::recovery::recover`].
    pub fn with_wal(
        index: QuantizedIndex,
        epoch: u64,
        writer: WalWriter,
        wal_dir: PathBuf,
    ) -> Self {
        Self::with_wal_sharded(index, 1, epoch, writer, wal_dir)
    }

    /// [`IndexState::with_wal`] partitioned into `num_shards` shards.
    /// Every shard's epoch seeds to `epoch`; recovery refines them to the
    /// actual last-touch seqs via [`IndexState::set_shard_epochs`].
    pub fn with_wal_sharded(
        index: QuantizedIndex,
        num_shards: usize,
        epoch: u64,
        writer: WalWriter,
        wal_dir: PathBuf,
    ) -> Self {
        debug_assert_eq!(writer.next_seq(), epoch + 1, "WAL seq must continue the epoch");
        Self::build(index, num_shards, epoch, Some(writer), Some(wal_dir))
    }

    fn build(
        index: QuantizedIndex,
        num_shards: usize,
        epoch: u64,
        writer: Option<WalWriter>,
        wal_dir: Option<PathBuf>,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let dim = index.dim();
        let num_codebooks = index.num_codebooks();
        let num_codewords = index.num_codewords();
        let metric = index.metric();
        let total_items = index.len() as u64;
        let shards: Vec<ShardCell> = split_modulo(&index, num_shards)
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let cell = ShardCell::new(shard, i);
                cell.epoch.store(epoch, Ordering::SeqCst);
                cell.items_gauge.add(cell.items.load(Ordering::Relaxed) as i64);
                cell
            })
            .collect();
        Self {
            shards,
            epoch: AtomicU64::new(epoch),
            total_items: AtomicU64::new(total_items),
            dim,
            num_codebooks,
            num_codewords,
            metric,
            mutation: Mutex::new(()),
            snapshot_write: Mutex::new(()),
            wal: writer.map(Mutex::new),
            wal_dir,
            route: None,
        }
    }

    /// Enables coarse routing: trains `nlist` centroids (seeded by `seed`,
    /// bitwise-reproducible at any thread count) over the current corpus
    /// and installs the routed overlay. Takes `&mut self`, so it must run
    /// before the state is shared; online mutations keep the overlay in
    /// lockstep with the shard cells afterwards.
    pub fn enable_routing(&mut self, nlist: usize, nprobe: usize, seed: u64) {
        let routed = RoutedIndex::from_index(&self.snapshot(), nlist, seed);
        self.install_routing(routed, nprobe);
    }

    /// Installs a pre-built routing overlay (e.g. loaded from an
    /// `LTINDEX4` image), clamping `nprobe` into `1..=nlist`.
    ///
    /// # Panics
    /// Panics when the overlay's item count does not match the corpus —
    /// an overlay describing different items would return wrong ids.
    pub fn install_routing(&mut self, routed: RoutedIndex, nprobe: usize) {
        assert_eq!(
            routed.len() as u64,
            self.total_items.load(Ordering::SeqCst),
            "routing overlay must cover exactly the live corpus"
        );
        let nprobe = nprobe.clamp(1, routed.nlist().max(1));
        self.route = Some(RouteCell { view: RwLock::new(Arc::new(routed)), nprobe });
    }

    /// The routed overlay and its `nprobe`, when routing is enabled. The
    /// `Arc` is an immutable snapshot: mutations copy-on-write, so the
    /// executor scans it without holding any lock.
    pub fn route_view(&self) -> Option<(Arc<RoutedIndex>, usize)> {
        self.route.as_ref().map(|r| {
            let guard = r.view.read().unwrap_or_else(|e| e.into_inner());
            ((*guard).clone(), r.nprobe)
        })
    }

    /// `(nlist, nprobe)` when routing is enabled (for `Stats`).
    pub fn route_params(&self) -> Option<(usize, usize)> {
        self.route.as_ref().map(|r| {
            let guard = r.view.read().unwrap_or_else(|e| e.into_inner());
            (guard.nlist(), r.nprobe)
        })
    }

    /// Seeds the per-shard epochs (recovery: the seq of the last replayed
    /// record that touched each shard). Must be called before the state is
    /// shared; values above the global epoch are a caller bug.
    pub(crate) fn set_shard_epochs(&self, epochs: &[u64]) {
        debug_assert_eq!(epochs.len(), self.shards.len());
        for (shard, &e) in self.shards.iter().zip(epochs) {
            debug_assert!(e <= self.epoch.load(Ordering::SeqCst));
            shard.epoch.store(e, Ordering::SeqCst);
        }
    }

    /// True when mutations are logged to a WAL before acknowledgement.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Number of shards the index is partitioned into (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total live item count across shards (lock-free mirror).
    pub fn items(&self) -> u64 {
        self.total_items.load(Ordering::SeqCst)
    }

    /// Per-shard live item counts (lock-free mirrors), in shard order.
    pub fn shard_items(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.items.load(Ordering::SeqCst)).collect()
    }

    /// Per-shard epochs: the global epoch (WAL mode: seq) of the last
    /// mutation that touched each shard.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch.load(Ordering::SeqCst)).collect()
    }

    /// Embedding dimensionality of the index.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of codebooks `M`.
    pub fn num_codebooks(&self) -> usize {
        self.num_codebooks
    }

    /// Codewords per codebook `K`.
    pub fn num_codewords(&self) -> usize {
        self.num_codewords
    }

    /// Validates a search request against the index shape without taking
    /// any shard lock (admission control: reject before enqueueing).
    ///
    /// # Errors
    /// The same typed [`SearchError`]s
    /// [`lightlt_core::search::validate_search_request`] returns.
    pub fn validate_search(&self, query_dim: usize, k: usize) -> Result<(), SearchError> {
        if query_dim != self.dim {
            return Err(SearchError::DimMismatch { expected: self.dim, got: query_dim });
        }
        if k == 0 {
            return Err(SearchError::ZeroK);
        }
        if self.items() == 0 {
            return Err(SearchError::EmptyIndex);
        }
        Ok(())
    }

    /// All shard `Arc`s, captured under the read locks in ascending shard
    /// order: a cross-shard-consistent snapshot set (every mutation is
    /// either fully visible or not at all — see the module docs). The
    /// executor scans these without holding any lock.
    pub fn shard_snapshots(&self) -> Vec<Arc<QuantizedIndex>> {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.cell.read().unwrap_or_else(|e| e.into_inner()))
            .collect();
        guards.iter().map(|g| (*g).clone()).collect()
    }

    /// An immutable snapshot of the current index **merged into the
    /// unsharded global layout**. Cheap for one shard (`Arc` clone);
    /// `O(n·M)` for more — use [`IndexState::shard_snapshots`] on hot
    /// paths. The snapshot stays valid and unchanged for as long as the
    /// caller holds it, regardless of concurrent mutations.
    pub fn snapshot(&self) -> Arc<QuantizedIndex> {
        self.snapshot_with_epoch().0
    }

    /// The current mutation epoch (bumps on every successful
    /// upsert/delete; in WAL mode it equals the last logged seq).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// A consistent `(merged snapshot, epoch)` pair (captured under the
    /// shard read locks; the merge itself runs outside them).
    pub fn snapshot_with_epoch(&self) -> (Arc<QuantizedIndex>, u64) {
        let (arcs, epoch) = {
            let guards: Vec<_> = self
                .shards
                .iter()
                .map(|s| s.cell.read().unwrap_or_else(|e| e.into_inner()))
                .collect();
            let arcs: Vec<Arc<QuantizedIndex>> = guards.iter().map(|g| (*g).clone()).collect();
            (arcs, self.epoch.load(Ordering::SeqCst))
        };
        if arcs.len() == 1 {
            let mut arcs = arcs;
            return (arcs.pop().expect("one shard"), epoch);
        }
        let refs: Vec<&QuantizedIndex> = arcs.iter().map(|a| a.as_ref()).collect();
        (Arc::new(merge_modulo(&refs)), epoch)
    }

    /// Test hook: make the next WAL append fail with an injected I/O
    /// error (no-op without a WAL), exercising the typed durability
    /// refusal without real disk faults.
    pub fn fail_next_wal_append(&self) {
        if let Some(wal) = &self.wal {
            lock_unpoisoned(wal).fail_next_append();
        }
    }

    /// Forces an fsync of the WAL (no-op without one). Used at graceful
    /// shutdown so a `never`/group tail is not left to the OS.
    ///
    /// # Errors
    /// Propagates the fsync failure.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        match &self.wal {
            Some(wal) => lock_unpoisoned(wal).sync(),
            None => Ok(()),
        }
    }

    /// The WAL's fsync policy, when one is configured.
    pub fn wal_policy(&self) -> Option<crate::wal::FsyncPolicy> {
        self.wal.as_ref().map(|w| lock_unpoisoned(w).policy())
    }

    /// Flushes an overdue group-commit tail (no-op without a WAL, under
    /// `always`/`never`, or with nothing pending). The group policy's
    /// time threshold is only evaluated at append time, so the server's
    /// flusher thread calls this periodically — otherwise a burst
    /// followed by idle traffic would leave the tail unsynced until
    /// shutdown.
    ///
    /// # Errors
    /// Propagates the fsync failure.
    pub fn sync_wal_if_due(&self) -> std::io::Result<()> {
        match &self.wal {
            Some(wal) => lock_unpoisoned(wal).sync_if_due(),
            None => Ok(()),
        }
    }

    /// Logs `record` ahead of applying it. Must be called with the
    /// mutation mutex held so log order equals apply order.
    fn wal_append(&self, record: &WalRecord) -> Result<(), MutationError> {
        let Some(wal) = &self.wal else { return Ok(()) };
        lock_unpoisoned(wal)
            .append(record)
            .map(|_seq| ())
            .map_err(|e| MutationError::Durability(format!("WAL append failed: {e}")))
    }

    /// Every shard's write guard, acquired in ascending shard order (the
    /// same order readers use, so the cross-shard view stays atomic).
    fn write_all(&self) -> Vec<RwLockWriteGuard<'_, Arc<QuantizedIndex>>> {
        self.shards
            .iter()
            .map(|s| s.cell.write().unwrap_or_else(|e| e.into_inner()))
            .collect()
    }

    /// Bumps the global epoch and stamps it (plus the obs counters) onto
    /// the touched shards. Call with the mutation mutex and write guards
    /// held.
    fn commit_mutation(&self, touched: &[usize]) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        for &i in touched {
            self.shards[i].epoch.store(epoch, Ordering::SeqCst);
            self.shards[i].mutations.inc();
        }
        epoch
    }

    /// Appends `rows` (online encode); returns the assigned id range. In
    /// WAL mode the mutation is logged (and fsynced per policy) before it
    /// is applied, so acknowledgement implies durability. New ids route
    /// round-robin: id `g` lands in shard `g % S`, so the encode cost
    /// spreads and the partition stays balanced.
    ///
    /// # Errors
    /// [`MutationError::Rejected`] on a dimension mismatch,
    /// [`MutationError::Durability`] when the WAL refuses the append
    /// (nothing is applied in either case; never panics).
    pub fn upsert(&self, rows: &Matrix) -> Result<std::ops::Range<usize>, MutationError> {
        let _order = lock_unpoisoned(&self.mutation);
        if rows.cols() != self.dim {
            return Err(MutationError::Rejected(format!(
                "upsert dimension {} does not match index dimension {}",
                rows.cols(),
                self.dim
            )));
        }
        if rows.rows() == 0 {
            return Err(MutationError::Rejected("upsert of zero rows".into()));
        }
        let s = self.shards.len();
        let start = self.total_items.load(Ordering::SeqCst) as usize;
        // Mutation spans land on the connection's ambient trace; the two
        // clock reads per phase only happen while a trace is active.
        let traced = lt_obs::trace::ambient_active();
        let wal_t0 = (traced && self.wal.is_some()).then(lt_obs::now_us);
        self.wal_append(&WalRecord::Upsert {
            dim: rows.cols() as u32,
            rows: rows.as_slice().to_vec(),
            shard: Some((start % s) as u32),
        })?;
        if let Some(start_us) = wal_t0 {
            lt_obs::trace::ambient_record(
                lt_obs::trace::stage::WAL_APPEND,
                start_us,
                lt_obs::now_us().saturating_sub(start_us),
                rows.rows() as u64,
                0,
            );
        }
        let apply_t0 = traced.then(lt_obs::now_us);
        let mut guards = self.write_all();
        let mut touched = Vec::with_capacity(rows.rows().min(s));
        let mut encoded: Vec<(Vec<u16>, f32)> = Vec::new();
        for r in 0..rows.rows() {
            let target = (start + r) % s;
            // Shards share one set of codebooks, so which one encodes is
            // immaterial: the greedy residual encode depends only on the
            // row and the codebooks.
            let (codes, norm_sq) = guards[target].encode_item(rows.row(r));
            Arc::make_mut(&mut guards[target]).push_encoded(&codes, norm_sq);
            self.shards[target].items.fetch_add(1, Ordering::SeqCst);
            self.shards[target].items_gauge.inc();
            if !touched.contains(&target) {
                touched.push(target);
            }
            if self.route.is_some() {
                encoded.push((codes, norm_sq));
            }
        }
        if let Some(route) = &self.route {
            // Same codes, same global ids: the overlay assigns each item
            // to its partition as a pure function of (codes, centroids),
            // so it stays a relabeling of the shard cells.
            let mut view = route.view.write().unwrap_or_else(|e| e.into_inner());
            let routed = Arc::make_mut(&mut view);
            for (r, (codes, norm_sq)) in encoded.into_iter().enumerate() {
                let id = routed.push_encoded(&codes, norm_sq);
                debug_assert_eq!(id, start + r);
            }
        }
        self.total_items.fetch_add(rows.rows() as u64, Ordering::SeqCst);
        self.commit_mutation(&touched);
        if let Some(start_us) = apply_t0 {
            lt_obs::trace::ambient_record(
                lt_obs::trace::stage::APPLY,
                start_us,
                lt_obs::now_us().saturating_sub(start_us),
                rows.rows() as u64,
                0,
            );
        }
        Ok(start..start + rows.rows())
    }

    /// Swap-removes item `id` (global slot semantics: the last global id
    /// moves into `id`'s slot); returns the id that moved. Across shards
    /// that is one `O(M)` code move — the last item's codes are copied
    /// verbatim into the target slot, never re-encoded, so scores cannot
    /// change bits. In WAL mode the mutation is logged before it is
    /// applied.
    ///
    /// # Errors
    /// [`MutationError::Rejected`] on an out-of-bounds id,
    /// [`MutationError::Durability`] when the WAL refuses the append
    /// (nothing is applied in either case; never panics).
    pub fn delete(&self, id: usize) -> Result<Option<usize>, MutationError> {
        let _order = lock_unpoisoned(&self.mutation);
        let n = self.total_items.load(Ordering::SeqCst) as usize;
        if id >= n {
            return Err(MutationError::Rejected(format!(
                "delete id {id} out of bounds ({n} items)"
            )));
        }
        let s = self.shards.len();
        let traced = lt_obs::trace::ambient_active();
        let wal_t0 = (traced && self.wal.is_some()).then(lt_obs::now_us);
        self.wal_append(&WalRecord::Delete { id: id as u64, shard: Some((id % s) as u32) })?;
        if let Some(start_us) = wal_t0 {
            lt_obs::trace::ambient_record(
                lt_obs::trace::stage::WAL_APPEND,
                start_us,
                lt_obs::now_us().saturating_sub(start_us),
                1,
                0,
            );
        }
        let apply_t0 = traced.then(lt_obs::now_us);
        let mut guards = self.write_all();
        let last = n - 1;
        let (dst_shard, dst_local) = (id % s, id / s);
        // The last global id is always the last local item of its shard.
        let (src_shard, src_local) = (last % s, last / s);
        let moved = if id == last {
            Arc::make_mut(&mut guards[dst_shard]).swap_remove(dst_local);
            None
        } else {
            let codes = guards[src_shard].item_codes(src_local);
            let norm_sq = guards[src_shard].recon_norm_sq(src_local);
            Arc::make_mut(&mut guards[src_shard]).swap_remove(src_local);
            Arc::make_mut(&mut guards[dst_shard]).set_encoded(dst_local, &codes, norm_sq);
            Some(last)
        };
        if let Some(route) = &self.route {
            // The overlay mirrors the flat swap-remove relabeling (the
            // last global id takes the deleted slot), so both views keep
            // agreeing on what every id means.
            let mut view = route.view.write().unwrap_or_else(|e| e.into_inner());
            let routed_moved = Arc::make_mut(&mut view).swap_remove(id);
            debug_assert_eq!(routed_moved, moved);
        }
        self.shards[src_shard].items.fetch_sub(1, Ordering::SeqCst);
        self.shards[src_shard].items_gauge.dec();
        self.total_items.fetch_sub(1, Ordering::SeqCst);
        let touched: Vec<usize> = if dst_shard == src_shard {
            vec![dst_shard]
        } else {
            vec![dst_shard.min(src_shard), dst_shard.max(src_shard)]
        };
        self.commit_mutation(&touched);
        if let Some(start_us) = apply_t0 {
            lt_obs::trace::ambient_record(
                lt_obs::trace::stage::APPLY,
                start_us,
                lt_obs::now_us().saturating_sub(start_us),
                1,
                0,
            );
        }
        Ok(moved)
    }

    /// Writes a checksummed `LTINDEX3` snapshot of the current index to
    /// `path`, atomically (temp file + fsync + rename + parent-dir
    /// fsync). Sharded state serializes as one merged global image, so
    /// snapshots written at any shard count load at any other. Returns
    /// the epoch the snapshot captured.
    ///
    /// # Errors
    /// Propagates I/O errors; the previous snapshot file, if any, is left
    /// untouched on failure.
    pub fn write_snapshot(&self, path: &Path) -> std::io::Result<u64> {
        let observe = lt_obs::enabled() || lt_obs::events_enabled();
        let t0 = observe.then(std::time::Instant::now);
        // One writer at a time: concurrent calls share the temp path, and
        // the snapshot must be taken inside the critical section so the
        // last rename installs the newest captured epoch.
        let _writing = lock_unpoisoned(&self.snapshot_write);
        let (snapshot, epoch) = self.snapshot_with_epoch();
        // Serialize outside any lock: the Arc keeps the image consistent.
        let image = serialize_index(&snapshot);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &image)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // The rename is only durable once the directory entry is synced.
        if let Some(parent) = path.parent() {
            sync_dir(parent);
        }
        if let Some(t0) = t0 {
            let micros = lt_obs::micros_since(t0);
            crate::batch::serve_obs().snapshot_us.record(micros);
            lt_obs::emit(&lt_obs::Event::SnapshotWrite { epoch, micros });
        }
        Ok(epoch)
    }

    /// Writes a durable snapshot into the WAL directory and commits it
    /// through the manifest: `snap-<seq>.ltidx` temp + fsync + rename +
    /// dir fsync, then the manifest (the atomic commit point), then WAL
    /// rotation and pruning. A crash anywhere in between recovers to a
    /// consistent state: before the manifest commit the previous
    /// snapshot's WAL suffix is still intact. The image is the merged
    /// global index regardless of shard count. Returns the covered seq.
    ///
    /// # Errors
    /// Propagates I/O errors, and refuses with `InvalidInput` when the
    /// state has no WAL.
    pub fn write_durable_snapshot(&self) -> std::io::Result<u64> {
        let (Some(wal), Some(dir)) = (&self.wal, &self.wal_dir) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "durable snapshots require a WAL directory",
            ));
        };
        let observe = lt_obs::enabled() || lt_obs::events_enabled();
        let t0 = observe.then(std::time::Instant::now);
        let _writing = lock_unpoisoned(&self.snapshot_write);
        // The epoch is the seq of the last logged mutation: everything
        // the image contains is covered by seqs `..= epoch`.
        let (snapshot, covered_seq) = self.snapshot_with_epoch();
        let image = serialize_index(&snapshot);
        let name = snapshot_name(covered_seq);
        let path = dir.join(&name);
        let tmp = dir.join(format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &image)?;
            f.sync_all()?;
        }
        crash_point(CrashPoint::MidRename);
        std::fs::rename(&tmp, &path)?;
        sync_dir(dir);
        crash_point(CrashPoint::PostSnapshotPreManifest);
        Manifest { covered_seq, epoch: covered_seq, snapshot_file: name }.write(dir)?;
        // Committed: rotate to a fresh segment and prune what the
        // retained snapshots fully cover.
        lock_unpoisoned(wal).rotate_and_prune()?;
        if let Some(t0) = t0 {
            let micros = lt_obs::micros_since(t0);
            crate::batch::serve_obs().snapshot_us.record(micros);
            lt_obs::emit(&lt_obs::Event::SnapshotWrite { epoch: covered_seq, micros });
        }
        Ok(covered_seq)
    }

    /// Metric the index ranks by (shared by every shard).
    pub fn metric(&self) -> Metric {
        self.metric
    }
}

/// Startup loader with crash-safe snapshot preference.
///
/// Tries `snapshot_path` first (if given): a valid checksummed image there
/// is the most recent durable state, so it wins. A missing or corrupt
/// snapshot (e.g. the process died mid-write on a filesystem without
/// atomic rename, or the file rotted) falls back to `base_path`, counting
/// the `wal.fallbacks` metric and logging a `corrupt_fallback` event.
/// Returns the index and `true` when it came from the snapshot.
///
/// # Errors
/// Returns a message when neither source yields a valid index.
pub fn load_index_with_snapshot(
    base_path: Option<&Path>,
    snapshot_path: Option<&Path>,
) -> Result<(QuantizedIndex, bool), String> {
    if let Some(snap) = snapshot_path {
        if snap.exists() {
            let rejected = |e: &str| {
                wal_obs().fallbacks.inc();
                lt_obs::emit(&lt_obs::Event::CorruptFallback { what: "snapshot", detail: e });
                eprintln!(
                    "warning: snapshot {} rejected ({e}); using base index",
                    snap.display()
                );
            };
            match std::fs::read(snap) {
                Ok(bytes) => match deserialize_index(&bytes) {
                    Ok(index) => return Ok((index, true)),
                    // Corrupt snapshot: fall through to the base image.
                    Err(e) => rejected(&e),
                },
                Err(e) => rejected(&e.to_string()),
            }
        }
    }
    let base = base_path.ok_or("no valid snapshot and no base index path")?;
    let bytes =
        std::fs::read(base).map_err(|e| format!("reading index {}: {e}", base.display()))?;
    let index = deserialize_index(&bytes).map_err(|e| format!("index {}: {e}", base.display()))?;
    Ok((index, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightlt_core::config::CodebookTopology;
    use lightlt_core::dsq::Dsq;
    use lightlt_core::search::adc_search;
    use lt_linalg::random::{randn, rng};
    use lt_linalg::Metric;
    use lt_tensor::ParamStore;

    fn build_index(n: usize, seed: u64) -> QuantizedIndex {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            6,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(n, 6, &mut rng(seed + 1)).scale(0.4);
        QuantizedIndex::build(&dsq, &store, &db)
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lt_serve_state_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshots_are_immutable_under_mutation() {
        let state = IndexState::new(build_index(20, 1));
        let before = state.snapshot();
        let n0 = before.len();
        let rows = randn(3, 6, &mut rng(9)).scale(0.4);
        let assigned = state.upsert(&rows).unwrap();
        assert_eq!(assigned, n0..n0 + 3);
        // The old snapshot is frozen; a fresh one sees the mutation.
        assert_eq!(before.len(), n0);
        assert_eq!(state.snapshot().len(), n0 + 3);
        assert_eq!(state.epoch(), 1);
    }

    #[test]
    fn mutations_match_direct_index_ops() {
        let base = build_index(20, 2);
        let state = IndexState::new(base.clone());
        let mut mirror = base;
        let rows = randn(4, 6, &mut rng(10)).scale(0.4);
        assert_eq!(state.upsert(&rows).unwrap(), mirror.append(&rows));
        assert_eq!(state.delete(2).unwrap(), mirror.swap_remove(2));
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.2, -0.1];
        let a = adc_search(&state.snapshot(), &q, 5);
        let b = adc_search(&mirror, &q, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn sharded_mutations_mirror_unsharded_bitwise() {
        // The same mutation schedule against 1-shard and 4-shard states
        // must produce byte-identical merged images at every step.
        let base = build_index(21, 7);
        let state = IndexState::new_sharded(base.clone(), 4);
        let mut mirror = base;
        assert_eq!(state.num_shards(), 4);
        assert_eq!(state.items(), 21);
        assert_eq!(state.shard_items(), vec![6, 5, 5, 5]);

        let rows = randn(5, 6, &mut rng(71)).scale(0.4);
        assert_eq!(state.upsert(&rows).unwrap(), mirror.append(&rows));
        assert_eq!(
            serialize_index(&state.snapshot()),
            serialize_index(&mirror),
            "after upsert"
        );

        // Delete from the middle (cross-shard move), the very last id
        // (local pop: 26 items before the first delete, so 24 is last
        // after it), and id 0.
        for id in [9usize, 24, 0] {
            assert_eq!(state.delete(id).unwrap(), mirror.swap_remove(id), "delete {id}");
            assert_eq!(
                serialize_index(&state.snapshot()),
                serialize_index(&mirror),
                "after delete {id}"
            );
        }
        assert_eq!(state.items(), mirror.len() as u64);
        assert_eq!(
            state.shard_items().iter().sum::<u64>(),
            mirror.len() as u64,
            "shard counts stay a partition"
        );
        // Epochs: 4 mutations total, every touched shard stamped.
        assert_eq!(state.epoch(), 4);
        assert!(state.shard_epochs().iter().all(|&e| e <= 4));
    }

    #[test]
    fn sharded_routing_places_ids_round_robin() {
        let state = IndexState::new_sharded(build_index(10, 8), 3);
        let rows = randn(4, 6, &mut rng(81)).scale(0.4);
        // Ids 10..14 route to shards 1, 2, 0, 1.
        let before = state.shard_items();
        state.upsert(&rows).unwrap();
        let after = state.shard_items();
        assert_eq!(after[0] - before[0], 1);
        assert_eq!(after[1] - before[1], 2);
        assert_eq!(after[2] - before[2], 1);
        // The shard snapshots themselves hold the routed codes verbatim.
        let shards = state.shard_snapshots();
        let merged = state.snapshot();
        for g in [10usize, 11, 12, 13] {
            assert_eq!(
                shards[g % 3].item_codes(g / 3),
                merged.item_codes(g),
                "id {g}"
            );
        }
    }

    #[test]
    fn validate_search_checks_shape_without_locks() {
        use lightlt_core::search::SearchError;
        let state = IndexState::new_sharded(build_index(12, 9), 2);
        assert!(state.validate_search(6, 3).is_ok());
        assert_eq!(
            state.validate_search(4, 3).unwrap_err(),
            SearchError::DimMismatch { expected: 6, got: 4 }
        );
        assert_eq!(state.validate_search(6, 0).unwrap_err(), SearchError::ZeroK);
        // Drain the index: empty becomes a typed error.
        for _ in 0..12 {
            state.delete(0).unwrap();
        }
        assert_eq!(state.validate_search(6, 3).unwrap_err(), SearchError::EmptyIndex);
    }

    #[test]
    fn bad_mutations_are_typed_errors() {
        let state = IndexState::new(build_index(10, 3));
        let wrong = randn(2, 4, &mut rng(11));
        assert!(matches!(
            state.upsert(&wrong),
            Err(MutationError::Rejected(ref m)) if m.contains("dimension")
        ));
        assert!(matches!(
            state.delete(100),
            Err(MutationError::Rejected(ref m)) if m.contains("out of bounds")
        ));
        assert_eq!(state.epoch(), 0, "failed mutations must not bump the epoch");
    }

    #[test]
    fn snapshot_write_and_preferred_reload() {
        let dir = tmp("reload");
        let base_path = dir.join("base.bin");
        let snap_path = dir.join("live.snap");
        let base = build_index(15, 4);
        std::fs::write(&base_path, serialize_index(&base)).unwrap();

        let state = IndexState::new(base);
        let rows = randn(2, 6, &mut rng(12)).scale(0.4);
        state.upsert(&rows).unwrap();
        let epoch = state.write_snapshot(&snap_path).unwrap();
        assert_eq!(epoch, 1);

        // Reload prefers the snapshot (17 items), not the base (15).
        let (reloaded, from_snap) =
            load_index_with_snapshot(Some(&base_path), Some(&snap_path)).unwrap();
        assert!(from_snap);
        assert_eq!(reloaded.len(), 17);

        // Corrupt snapshot falls back to the base image.
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).unwrap();
        let (fallback, from_snap) =
            load_index_with_snapshot(Some(&base_path), Some(&snap_path)).unwrap();
        assert!(!from_snap);
        assert_eq!(fallback.len(), 15);

        // No valid source at all is a typed error.
        std::fs::remove_file(&base_path).unwrap();
        assert!(load_index_with_snapshot(Some(&base_path), Some(&snap_path)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_snapshot_reloads_at_any_shard_count() {
        // A snapshot written by a 4-shard state is one global image: it
        // must reload byte-identically into 1-, 2-, and 8-shard states.
        let dir = tmp("shard_reload");
        let snap_path = dir.join("live.snap");
        let state = IndexState::new_sharded(build_index(19, 13), 4);
        let rows = randn(3, 6, &mut rng(14)).scale(0.4);
        state.upsert(&rows).unwrap();
        state.write_snapshot(&snap_path).unwrap();
        let expect = serialize_index(&state.snapshot());
        for s in [1usize, 2, 8] {
            let (reloaded, from_snap) =
                load_index_with_snapshot(None, Some(&snap_path)).unwrap();
            assert!(from_snap);
            let restate = IndexState::new_sharded(reloaded, s);
            assert_eq!(serialize_index(&restate.snapshot()), expect, "shards={s}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_mode_logs_before_apply_and_refuses_on_failure() {
        use crate::wal::FsyncPolicy;
        let dir = tmp("wal_mode");
        let writer = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        let state = IndexState::with_wal(build_index(10, 5), 0, writer, dir.clone());
        assert!(state.wal_enabled());

        let rows = randn(2, 6, &mut rng(13)).scale(0.4);
        state.upsert(&rows).unwrap();
        state.delete(0).unwrap();
        assert_eq!(state.epoch(), 2, "epoch tracks the WAL seq");

        // An injected WAL failure refuses the mutation without applying
        // it or bumping the epoch — durability is never silently dropped.
        let len_before = state.snapshot().len();
        state.fail_next_wal_append();
        let err = state.upsert(&rows).unwrap_err();
        assert!(matches!(err, MutationError::Durability(_)), "got {err:?}");
        assert_eq!(state.snapshot().len(), len_before);
        assert_eq!(state.epoch(), 2);

        // The writer recovers: the next mutation succeeds and replays.
        state.upsert(&rows).unwrap();
        assert_eq!(state.epoch(), 3);
        let mut count = 0;
        crate::wal::replay_wal(&dir, 0, |_seq, _rec| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 3, "exactly the acknowledged mutations are logged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_wal_mode_tags_records_and_stamps_shard_epochs() {
        use crate::wal::FsyncPolicy;
        let dir = tmp("wal_sharded");
        let writer = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        let state =
            IndexState::with_wal_sharded(build_index(8, 15), 4, 0, writer, dir.clone());
        let rows = randn(1, 6, &mut rng(16)).scale(0.4);
        state.upsert(&rows).unwrap(); // seq 1: id 8 -> shard 0
        state.delete(3).unwrap(); // seq 2: slot 3 -> shard 3 (last id 8 -> shard 0)
        assert_eq!(state.epoch(), 2);
        let epochs = state.shard_epochs();
        assert_eq!(epochs[0], 2, "shard 0 last touched by the delete's source move");
        assert_eq!(epochs[3], 2, "shard 3 holds the deleted slot");
        assert_eq!(epochs[1], 0);
        assert_eq!(epochs[2], 0);

        // The logged records carry their shard tags.
        let mut tags = Vec::new();
        crate::wal::replay_wal(&dir, 0, |_seq, rec| {
            tags.push(match rec {
                WalRecord::Upsert { shard, .. } => shard,
                WalRecord::Delete { shard, .. } => shard,
            });
            Ok(())
        })
        .unwrap();
        assert_eq!(tags, vec![Some(0), Some(3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_snapshot_commits_manifest_and_rotates() {
        use crate::wal::FsyncPolicy;
        let dir = tmp("durable_snap");
        let writer = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        let state = IndexState::with_wal(build_index(12, 6), 0, writer, dir.clone());
        let rows = randn(3, 6, &mut rng(14)).scale(0.4);
        state.upsert(&rows).unwrap();
        state.delete(1).unwrap();

        let covered = state.write_durable_snapshot().unwrap();
        assert_eq!(covered, 2);
        let manifest = Manifest::read(&dir).unwrap();
        assert_eq!(manifest.covered_seq, 2);
        assert_eq!(manifest.snapshot_file, snapshot_name(2));
        let image = std::fs::read(dir.join(&manifest.snapshot_file)).unwrap();
        let reloaded = deserialize_index(&image).unwrap();
        assert_eq!(serialize_index(&reloaded), serialize_index(&state.snapshot()));

        // Mutations after the snapshot land in the rotated segment and
        // replay on top of it.
        state.upsert(&rows).unwrap();
        let mut replayed = 0;
        crate::wal::replay_wal(&dir, covered, |seq, _rec| {
            assert_eq!(seq, 3);
            replayed += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
