//! Index-state manager: epoch/snapshot semantics over online mutations.
//!
//! Readers never block writers and vice versa beyond an `Arc` clone: the
//! live index is an `Arc<QuantizedIndex>` behind an `RwLock`. A search
//! batch grabs the `Arc` (a **snapshot**: immutable for the whole batch,
//! even while upserts land concurrently) and scans without holding any
//! lock. A mutation takes the write lock and `Arc::make_mut`s the index —
//! copy-on-write: the clone happens only when a reader still holds the
//! previous snapshot, and consecutive mutations between batches mutate in
//! place. Every mutation bumps the **epoch**; a batch formed after a
//! mutation's acknowledgement therefore always observes it.
//!
//! Durability: [`IndexState::write_snapshot`] serializes the current
//! snapshot as a checksummed `LTINDEX3` index image to a temp file and
//! atomically renames it into place, so a crash mid-write leaves the
//! previous snapshot intact. [`load_index_with_snapshot`] is the startup
//! path: prefer the newest valid snapshot, fall back to the base image
//! when the snapshot is missing or fails its checksum.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use lightlt_core::index::QuantizedIndex;
use lightlt_core::persist::{deserialize_index, serialize_index};
use lt_linalg::Matrix;

/// Concurrent owner of the live [`QuantizedIndex`].
#[derive(Debug)]
pub struct IndexState {
    current: RwLock<Arc<QuantizedIndex>>,
    epoch: AtomicU64,
    /// Serializes [`IndexState::write_snapshot`] calls: the background
    /// snapshotter and inline `Snapshot` requests share one temp path, and
    /// an unserialized pair can rename a half-written temp file over the
    /// previous valid snapshot.
    snapshot_write: Mutex<()>,
}

impl IndexState {
    /// Wraps an index at epoch 0.
    pub fn new(index: QuantizedIndex) -> Self {
        Self {
            current: RwLock::new(Arc::new(index)),
            epoch: AtomicU64::new(0),
            snapshot_write: Mutex::new(()),
        }
    }

    /// An immutable snapshot of the current index. Cheap (`Arc` clone);
    /// the snapshot stays valid and unchanged for as long as the caller
    /// holds it, regardless of concurrent mutations.
    pub fn snapshot(&self) -> Arc<QuantizedIndex> {
        self.current.read().expect("index lock poisoned").clone()
    }

    /// The current mutation epoch (bumps on every successful
    /// upsert/delete).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// A consistent `(snapshot, epoch)` pair (taken under one read lock).
    pub fn snapshot_with_epoch(&self) -> (Arc<QuantizedIndex>, u64) {
        let guard = self.current.read().expect("index lock poisoned");
        (guard.clone(), self.epoch.load(Ordering::SeqCst))
    }

    /// Appends `rows` (online encode); returns the assigned id range.
    ///
    /// # Errors
    /// Rejects a dimension mismatch with a message (never panics).
    pub fn upsert(&self, rows: &Matrix) -> Result<std::ops::Range<usize>, String> {
        let mut guard = self.current.write().expect("index lock poisoned");
        if rows.cols() != guard.dim() {
            return Err(format!(
                "upsert dimension {} does not match index dimension {}",
                rows.cols(),
                guard.dim()
            ));
        }
        let assigned = Arc::make_mut(&mut guard).append(rows);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(assigned)
    }

    /// Swap-removes item `id`; returns the id that moved into its slot.
    ///
    /// # Errors
    /// Rejects an out-of-bounds id with a message (never panics).
    pub fn delete(&self, id: usize) -> Result<Option<usize>, String> {
        let mut guard = self.current.write().expect("index lock poisoned");
        if id >= guard.len() {
            return Err(format!("delete id {id} out of bounds ({} items)", guard.len()));
        }
        let moved = Arc::make_mut(&mut guard).swap_remove(id);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(moved)
    }

    /// Writes a checksummed `LTINDEX3` snapshot of the current index to
    /// `path`, atomically (temp file + rename + fsync). Returns the epoch
    /// the snapshot captured.
    ///
    /// # Errors
    /// Propagates I/O errors; the previous snapshot file, if any, is left
    /// untouched on failure.
    pub fn write_snapshot(&self, path: &Path) -> std::io::Result<u64> {
        let observe = lt_obs::enabled() || lt_obs::events_enabled();
        let t0 = observe.then(std::time::Instant::now);
        // One writer at a time: concurrent calls share the temp path, and
        // the snapshot must be taken inside the critical section so the
        // last rename installs the newest captured epoch.
        let _writing = self.snapshot_write.lock().expect("snapshot write lock poisoned");
        let (snapshot, epoch) = self.snapshot_with_epoch();
        // Serialize outside any lock: the Arc keeps the image consistent.
        let image = serialize_index(&snapshot);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &image)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(t0) = t0 {
            let micros = lt_obs::micros_since(t0);
            crate::batch::serve_obs().snapshot_us.record(micros);
            lt_obs::emit(&lt_obs::Event::SnapshotWrite { epoch, micros });
        }
        Ok(epoch)
    }
}

/// Startup loader with crash-safe snapshot preference.
///
/// Tries `snapshot_path` first (if given): a valid checksummed image there
/// is the most recent durable state, so it wins. A missing or corrupt
/// snapshot (e.g. the process died mid-write on a filesystem without
/// atomic rename, or the file rotted) falls back to `base_path`. Returns
/// the index and `true` when it came from the snapshot.
///
/// # Errors
/// Returns a message when neither source yields a valid index.
pub fn load_index_with_snapshot(
    base_path: Option<&Path>,
    snapshot_path: Option<&Path>,
) -> Result<(QuantizedIndex, bool), String> {
    if let Some(snap) = snapshot_path {
        if snap.exists() {
            match std::fs::read(snap) {
                Ok(bytes) => match deserialize_index(&bytes) {
                    Ok(index) => return Ok((index, true)),
                    Err(e) => {
                        // Corrupt snapshot: fall through to the base image.
                        eprintln!("warning: snapshot {} rejected ({e}); using base index", snap.display());
                    }
                },
                Err(e) => {
                    eprintln!("warning: snapshot {} unreadable ({e}); using base index", snap.display());
                }
            }
        }
    }
    let base = base_path.ok_or("no valid snapshot and no base index path")?;
    let bytes =
        std::fs::read(base).map_err(|e| format!("reading index {}: {e}", base.display()))?;
    let index = deserialize_index(&bytes).map_err(|e| format!("index {}: {e}", base.display()))?;
    Ok((index, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightlt_core::config::CodebookTopology;
    use lightlt_core::dsq::Dsq;
    use lightlt_core::search::adc_search;
    use lt_linalg::random::{randn, rng};
    use lt_linalg::Metric;
    use lt_tensor::ParamStore;

    fn build_index(n: usize, seed: u64) -> QuantizedIndex {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            6,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(n, 6, &mut rng(seed + 1)).scale(0.4);
        QuantizedIndex::build(&dsq, &store, &db)
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lt_serve_state_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshots_are_immutable_under_mutation() {
        let state = IndexState::new(build_index(20, 1));
        let before = state.snapshot();
        let n0 = before.len();
        let rows = randn(3, 6, &mut rng(9)).scale(0.4);
        let assigned = state.upsert(&rows).unwrap();
        assert_eq!(assigned, n0..n0 + 3);
        // The old snapshot is frozen; a fresh one sees the mutation.
        assert_eq!(before.len(), n0);
        assert_eq!(state.snapshot().len(), n0 + 3);
        assert_eq!(state.epoch(), 1);
    }

    #[test]
    fn mutations_match_direct_index_ops() {
        let base = build_index(20, 2);
        let state = IndexState::new(base.clone());
        let mut mirror = base;
        let rows = randn(4, 6, &mut rng(10)).scale(0.4);
        assert_eq!(state.upsert(&rows).unwrap(), mirror.append(&rows));
        assert_eq!(state.delete(2).unwrap(), mirror.swap_remove(2));
        let q = [0.1f32, -0.2, 0.3, 0.0, 0.2, -0.1];
        let a = adc_search(&state.snapshot(), &q, 5);
        let b = adc_search(&mirror, &q, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn bad_mutations_are_typed_errors() {
        let state = IndexState::new(build_index(10, 3));
        let wrong = randn(2, 4, &mut rng(11));
        assert!(state.upsert(&wrong).unwrap_err().contains("dimension"));
        assert!(state.delete(100).unwrap_err().contains("out of bounds"));
        assert_eq!(state.epoch(), 0, "failed mutations must not bump the epoch");
    }

    #[test]
    fn snapshot_write_and_preferred_reload() {
        let dir = tmp("reload");
        let base_path = dir.join("base.bin");
        let snap_path = dir.join("live.snap");
        let base = build_index(15, 4);
        std::fs::write(&base_path, serialize_index(&base)).unwrap();

        let state = IndexState::new(base);
        let rows = randn(2, 6, &mut rng(12)).scale(0.4);
        state.upsert(&rows).unwrap();
        let epoch = state.write_snapshot(&snap_path).unwrap();
        assert_eq!(epoch, 1);

        // Reload prefers the snapshot (17 items), not the base (15).
        let (reloaded, from_snap) =
            load_index_with_snapshot(Some(&base_path), Some(&snap_path)).unwrap();
        assert!(from_snap);
        assert_eq!(reloaded.len(), 17);

        // Corrupt snapshot falls back to the base image.
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).unwrap();
        let (fallback, from_snap) =
            load_index_with_snapshot(Some(&base_path), Some(&snap_path)).unwrap();
        assert!(!from_snap);
        assert_eq!(fallback.len(), 15);

        // No valid source at all is a typed error.
        std::fs::remove_file(&base_path).unwrap();
        assert!(load_index_with_snapshot(Some(&base_path), Some(&snap_path)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
