//! CRC-framed, sequence-numbered write-ahead log for online mutations.
//!
//! Durability in lt-serve used to be "whatever the last snapshot saw": an
//! acknowledged upsert landing between background snapshots was silently
//! lost on crash. The WAL closes that window — every `Upsert`/`Delete` is
//! appended (and, per [`FsyncPolicy`], fsynced) **before** the mutation is
//! applied and acknowledged, so startup = newest valid snapshot + replay
//! of the WAL suffix reconstructs the pre-crash state exactly.
//!
//! ## On-disk layout (inside the WAL directory)
//!
//! - `wal-<firstseq:020>.log` — log **segments**. Each starts with the
//!   magic `LTWAL001` and then holds back-to-back frames:
//!
//!   ```text
//!   ┌─────────────┬─────────────┬────────────────────┬─────────────────────────────┐
//!   │ len: u32 LE │ seq: u64 LE │ payload: len bytes │ crc32(seq ∥ payload): u32 LE│
//!   └─────────────┴─────────────┴────────────────────┴─────────────────────────────┘
//!   ```
//!
//!   `seq` numbers are contiguous across segments (the filename records
//!   the first seq a segment holds). The CRC covers the seq bytes too, so
//!   a frame pasted at the wrong position fails loudly.
//! - `snap-<coveredseq:020>.ltidx` — checksummed `LTINDEX3` index images;
//!   the name records the last WAL seq the image includes.
//! - `MANIFEST` — the atomic commit pointer: which snapshot file is
//!   current, the seq it covers, and the epoch it captured, CRC-framed
//!   and written temp + fsync + rename + directory fsync. A crash after
//!   the snapshot rename but **before** the manifest write leaves the
//!   manifest pointing at the previous snapshot, whose WAL suffix is
//!   still intact — replay just covers more records. Snapshots are never
//!   installed by renaming over a live file, so there is no window where
//!   half-committed state can be preferred.
//!
//! ## Torn writes
//!
//! [`replay_wal`] stops cleanly at the first frame that is truncated,
//! fails its CRC, or breaks the seq chain: the valid prefix is applied
//! and the torn tail is truncated off the segment. Segments that become
//! unreachable past the break — and whole segments skipped by a seq gap,
//! e.g. after every retained snapshot failed validation and recovery had
//! to fall back to the base image — are moved aside as `*.orphan` files,
//! never deleted: their frames may hold acknowledged mutations a manual
//! snapshot repair could still recover. Replay never panics on corrupt
//! bytes.
//!
//! ## Crash injection
//!
//! [`CrashPoint`]s name the interesting instants (pre-append,
//! post-append-pre-fsync, torn tail, post-snapshot-pre-manifest,
//! mid-rename). A child process armed via the `LT_CRASH_POINT`
//! environment variable (`point` or `point:n` for the n-th hit) aborts at
//! that instant, so `tests/wal_recovery.rs` and the ci.sh smoke can prove
//! every acknowledged mutation survives a kill at every point.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use lightlt_core::checksum::crc32;
use lt_obs::{Counter, Histogram};

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"LTWAL001";

/// Magic bytes opening the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"LTMANIF1";

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Name of the manifest file inside a WAL directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Hard cap on one WAL frame payload (matches the wire-protocol cap): a
/// corrupt length field must not drive an arbitrary allocation.
pub const MAX_WAL_FRAME_BYTES: usize = 64 << 20;

/// How many durable snapshots (and the WAL segments reaching back to the
/// older of them) are retained for corrupt-snapshot fallback.
pub const SNAPSHOT_RETAIN: usize = 2;

// ---- observability -------------------------------------------------------

/// WAL metric handles, resolved once per process. Counter/histogram calls
/// are no-ops while the global lt-obs toggle is off, so these are safe to
/// bump ungated; only `Instant::now()` timing is wrapped.
pub(crate) struct WalObs {
    /// Records appended (acknowledged into the log).
    pub append_records: Arc<Counter>,
    /// Frame bytes appended.
    pub append_bytes: Arc<Counter>,
    /// Appends refused because of an I/O failure (each one surfaced as a
    /// typed `ServerError`, never a silent ack).
    pub append_errors: Arc<Counter>,
    /// Wall time of one WAL fsync.
    pub fsync_us: Arc<Histogram>,
    /// Records replayed at startup.
    pub replay_records: Arc<Counter>,
    /// Bytes truncated off torn / corrupt WAL tails.
    pub truncated_bytes: Arc<Counter>,
    /// Startup fallbacks past a corrupt snapshot or manifest.
    pub fallbacks: Arc<Counter>,
}

pub(crate) fn wal_obs() -> &'static WalObs {
    static OBS: OnceLock<WalObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = lt_obs::Registry::global();
        WalObs {
            append_records: r.counter("wal.append_records"),
            append_bytes: r.counter("wal.append_bytes"),
            append_errors: r.counter("wal.append_errors"),
            fsync_us: r.histogram("wal.fsync_us"),
            replay_records: r.counter("wal.replay_records"),
            truncated_bytes: r.counter("wal.truncated_bytes"),
            fallbacks: r.counter("wal.fallbacks"),
        }
    })
}

// ---- crash injection -----------------------------------------------------

/// Named instants where a crash is interesting for durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the mutation's frame is written: the mutation was never
    /// logged and never acknowledged.
    PreAppend,
    /// After the frame bytes reached the file, before any fsync.
    PostAppendPreFsync,
    /// Mid-frame: only a prefix of the frame's bytes reach the file,
    /// leaving a torn tail for replay to truncate.
    TornTail,
    /// After the snapshot image is renamed into place, before the
    /// manifest commits it — the manifest must still point at the old
    /// snapshot.
    PostSnapshotPreManifest,
    /// After the snapshot temp file is written and fsynced, before the
    /// rename — the temp file must be ignored at startup.
    MidRename,
}

impl CrashPoint {
    /// All points, in the order tests iterate them.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::PreAppend,
        CrashPoint::PostAppendPreFsync,
        CrashPoint::TornTail,
        CrashPoint::PostSnapshotPreManifest,
        CrashPoint::MidRename,
    ];

    /// The `LT_CRASH_POINT` name of this point.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::PreAppend => "pre_append",
            CrashPoint::PostAppendPreFsync => "post_append_pre_fsync",
            CrashPoint::TornTail => "torn_tail",
            CrashPoint::PostSnapshotPreManifest => "post_snapshot_pre_manifest",
            CrashPoint::MidRename => "mid_rename",
        }
    }

    fn parse(s: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// A deterministic crash plan, armed from the `LT_CRASH_POINT`
/// environment variable (`<point>` or `<point>:<n>` to fire on the n-th
/// hit, 1-based). In the spirit of core's `FaultPlan`, but for whole-
/// process kills: when the armed point is hit the process **aborts**, so
/// only a child process spawned by a test (or the ci.sh smoke) should
/// ever run with the variable set.
#[derive(Debug)]
pub struct CrashPlan {
    point: Option<CrashPoint>,
    fire_on_hit: u32,
    hits: AtomicU32,
}

impl CrashPlan {
    /// Parses the plan from `LT_CRASH_POINT` (unarmed when unset or
    /// malformed — a typo must not make production code abort).
    pub fn from_env() -> CrashPlan {
        let spec = std::env::var("LT_CRASH_POINT").unwrap_or_default();
        let (name, nth) = match spec.split_once(':') {
            Some((name, n)) => (name, n.parse().unwrap_or(1)),
            None => (spec.as_str(), 1),
        };
        CrashPlan {
            point: CrashPoint::parse(name),
            fire_on_hit: nth,
            hits: AtomicU32::new(0),
        }
    }

    /// True when this hit of `point` is the armed one (consumes a hit).
    fn triggered(&self, point: CrashPoint) -> bool {
        if self.point != Some(point) {
            return false;
        }
        self.hits.fetch_add(1, Ordering::SeqCst) + 1 == self.fire_on_hit
    }
}

fn global_plan() -> &'static CrashPlan {
    static PLAN: OnceLock<CrashPlan> = OnceLock::new();
    PLAN.get_or_init(CrashPlan::from_env)
}

/// Aborts the process if the environment-armed [`CrashPlan`] fires at
/// `point`. A no-op in any process without `LT_CRASH_POINT` set.
pub fn crash_point(point: CrashPoint) {
    if global_plan().triggered(point) {
        eprintln!("LT_CRASH_POINT: aborting at {}", point.name());
        let _ = io::stderr().flush();
        std::process::abort();
    }
}

/// True when the environment-armed plan fires at `point` on this hit,
/// without aborting — for points that need bespoke behaviour first (the
/// torn-tail point writes half a frame before dying).
fn crash_armed_now(point: CrashPoint) -> bool {
    global_plan().triggered(point)
}

// ---- records -------------------------------------------------------------

/// One logged mutation. The payload encoding is tagged little-endian,
/// mirroring the wire protocol's `Upsert`/`Delete` requests.
///
/// The optional `shard` tag is a trailing field (same evolution trick as
/// the wire protocol's `Stats` reply): a tagged record grows 4 extra
/// bytes, an untagged record decodes as `shard: None`, so logs written
/// before sharding replay unchanged. The tag is **diagnostic only** — it
/// names the shard the mutation first touched at log time, but replay
/// routing is always re-derived from the running item count, so a log can
/// legally be replayed into a different shard count.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Append `rows.len() / dim` embeddings of dimensionality `dim`.
    Upsert {
        /// Dimensionality of each row.
        dim: u32,
        /// Row-major embedding data (`n · dim` floats).
        rows: Vec<f32>,
        /// Shard the first appended id routed to at log time (diagnostic).
        shard: Option<u32>,
    },
    /// Swap-remove item `id`.
    Delete {
        /// Id of the removed item.
        id: u64,
        /// Shard the deleted slot lived in at log time (diagnostic).
        shard: Option<u32>,
    },
}

const REC_UPSERT: u8 = 1;
const REC_DELETE: u8 = 2;

impl WalRecord {
    /// Encodes the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let shard = match self {
            WalRecord::Upsert { dim, rows, shard } => {
                buf.push(REC_UPSERT);
                buf.extend_from_slice(&dim.to_le_bytes());
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for &v in rows {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                shard
            }
            WalRecord::Delete { id, shard } => {
                buf.push(REC_DELETE);
                buf.extend_from_slice(&id.to_le_bytes());
                shard
            }
        };
        if let Some(shard) = shard {
            buf.extend_from_slice(&shard.to_le_bytes());
        }
        buf
    }

    /// Decodes a record payload.
    ///
    /// # Errors
    /// Returns a message on an unknown tag, truncation, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, String> {
        let take = |data: &mut &[u8], n: usize| -> Result<Vec<u8>, String> {
            if data.len() < n {
                return Err(format!("truncated record: wanted {n} bytes, have {}", data.len()));
            }
            let (head, tail) = data.split_at(n);
            *data = tail;
            Ok(head.to_vec())
        };
        let mut data = payload;
        let tag = take(&mut data, 1)?[0];
        let mut rec = match tag {
            REC_UPSERT => {
                let dim =
                    u32::from_le_bytes(take(&mut data, 4)?.try_into().expect("4 bytes"));
                let count =
                    u32::from_le_bytes(take(&mut data, 4)?.try_into().expect("4 bytes")) as usize;
                let bytes = take(&mut data, count.checked_mul(4).ok_or("float count overflow")?)?;
                let rows = bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                WalRecord::Upsert { dim, rows, shard: None }
            }
            REC_DELETE => WalRecord::Delete {
                id: u64::from_le_bytes(take(&mut data, 8)?.try_into().expect("8 bytes")),
                shard: None,
            },
            other => return Err(format!("unknown WAL record tag {other}")),
        };
        // Optional trailing shard tag (records logged before sharding end
        // here and stay `shard: None`).
        if data.len() == 4 {
            let tag = u32::from_le_bytes(take(&mut data, 4)?.try_into().expect("4 bytes"));
            match &mut rec {
                WalRecord::Upsert { shard, .. } | WalRecord::Delete { shard, .. } => {
                    *shard = Some(tag);
                }
            }
        }
        if !data.is_empty() {
            return Err(format!("{} trailing bytes after WAL record", data.len()));
        }
        Ok(rec)
    }
}

/// Builds one framed record: `len | seq | payload | crc32(seq ∥ payload)`.
fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(payload);
    let mut frame = Vec::with_capacity(4 + 8 + payload.len() + 4);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc_input);
    frame.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    frame
}

// ---- fsync policy --------------------------------------------------------

/// When WAL appends are fsynced relative to acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before every acknowledgement: a `kill -9` after the ack can
    /// never lose the mutation.
    Always,
    /// Group commit: fsync once at least `records` appends or `micros`
    /// microseconds have accumulated since the last sync. Acks between
    /// syncs are durable against process kills (the bytes reached the
    /// kernel) but not against power loss. Both thresholds are evaluated
    /// at append time — after a burst followed by idle traffic the tail
    /// stays unsynced until something calls [`WalWriter::sync_if_due`]
    /// (lt-serve runs a background flusher for exactly this) or
    /// [`WalWriter::sync`] at shutdown.
    Group {
        /// Records per sync.
        records: u64,
        /// Microseconds between syncs.
        micros: u64,
    },
    /// Never fsync: the OS flushes on its own schedule. Cheapest; a
    /// power failure may lose an acknowledged tail, but replay still
    /// recovers the longest valid prefix.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `group`, `group:<records>`, or
    /// `group:<records>:<micros>`.
    ///
    /// # Errors
    /// Returns a message for anything else.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        let mut parts = s.split(':');
        match parts.next() {
            Some("always") => Ok(FsyncPolicy::Always),
            Some("never") => Ok(FsyncPolicy::Never),
            Some("group") => {
                let records = match parts.next() {
                    None | Some("") => 8,
                    Some(n) => n.parse().map_err(|_| format!("bad group record count in {s:?}"))?,
                };
                let micros = match parts.next() {
                    None | Some("") => 1_000,
                    Some(n) => n.parse().map_err(|_| format!("bad group interval in {s:?}"))?,
                };
                Ok(FsyncPolicy::Group { records: records.max(1), micros })
            }
            _ => Err(format!(
                "unknown fsync policy {s:?} (expected always | group[:N[:MICROS]] | never)"
            )),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Group { records, micros } => write!(f, "group:{records}:{micros}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

// ---- writer --------------------------------------------------------------

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// The seq a segment file name claims to start at, if it is one.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Canonical name of the snapshot image covering WAL seqs `..= seq`.
pub fn snapshot_name(covered_seq: u64) -> String {
    format!("snap-{covered_seq:020}.ltidx")
}

/// The covered seq a snapshot file name claims, if it is one.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?.strip_suffix(".ltidx")?.parse().ok()
}

/// Opens `dir` itself and fsyncs it, making renames/creates in it
/// durable. Best-effort on platforms where directories cannot be synced.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Appender over the current WAL segment.
///
/// Not internally synchronized: callers (the `IndexState` mutation path)
/// wrap it in a mutex and hold the index write lock across append +
/// apply, so log order always equals apply order.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    next_seq: u64,
    segment_first: u64,
    /// Bytes of the current segment known good (for truncate-repair
    /// after a failed write).
    offset: u64,
    policy: FsyncPolicy,
    pending_records: u64,
    last_sync: Instant,
    /// Set after an unrepairable I/O failure: every later append is
    /// refused rather than risking an inconsistent log.
    broken: Option<String>,
    /// Test hook: fail the next append with an injected I/O error.
    fail_next_append: bool,
    /// Test hook: fail the next fsync with an injected I/O error.
    fail_next_sync: bool,
}

impl WalWriter {
    /// Creates (or truncates) the segment starting at `next_seq` and
    /// returns a writer positioned to append it. Truncation is safe:
    /// recovery has already replayed everything durable, so a pre-existing
    /// file of this name can only hold an empty or torn tail.
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn create(dir: &Path, policy: FsyncPolicy, next_seq: u64) -> io::Result<WalWriter> {
        fs::create_dir_all(dir)?;
        let path = dir.join(segment_name(next_seq));
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        file.write_all(WAL_MAGIC)?;
        if policy != FsyncPolicy::Never {
            file.sync_data()?;
            sync_dir(dir);
        }
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            next_seq,
            segment_first: next_seq,
            offset: WAL_MAGIC.len() as u64,
            policy,
            pending_records: 0,
            last_sync: Instant::now(),
            broken: None,
            fail_next_append: false,
            fail_next_sync: false,
        })
    }

    /// The seq the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Test hook: make the next [`WalWriter::append`] fail with an
    /// injected I/O error (exercises the typed-refusal degradation path
    /// without real disk faults).
    pub fn fail_next_append(&mut self) {
        self.fail_next_append = true;
    }

    /// Test hook: make the next fsync fail with an injected I/O error
    /// (exercises the sync-failure rollback in [`WalWriter::append`]).
    pub fn fail_next_sync(&mut self) {
        self.fail_next_sync = true;
    }

    /// Appends one record, fsyncing per the policy, and returns the seq
    /// it was assigned. Must complete before the mutation is applied or
    /// acknowledged.
    ///
    /// # Errors
    /// Propagates I/O failures. A failed write is repaired by truncating
    /// back to the last good frame; if even that fails the writer is
    /// permanently broken and refuses all later appends.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        if let Some(why) = &self.broken {
            wal_obs().append_errors.inc();
            return Err(io::Error::other(format!("WAL writer is broken: {why}")));
        }
        crash_point(CrashPoint::PreAppend);
        let seq = self.next_seq;
        let payload = record.encode();
        let frame = encode_frame(seq, &payload);
        if crash_armed_now(CrashPoint::TornTail) {
            // Write only half the frame, push it to the kernel so the
            // torn bytes actually land in the file, then die.
            let half = &frame[..frame.len() / 2];
            let _ = self.file.write_all(half);
            let _ = self.file.sync_data();
            eprintln!("LT_CRASH_POINT: aborting at torn_tail");
            let _ = io::stderr().flush();
            std::process::abort();
        }
        let write_result = if self.fail_next_append {
            self.fail_next_append = false;
            Err(io::Error::other("injected WAL append failure"))
        } else {
            self.file.write_all(&frame)
        };
        if let Err(e) = write_result {
            wal_obs().append_errors.inc();
            self.repair_after_failed_write();
            return Err(e);
        }
        self.offset += frame.len() as u64;
        crash_point(CrashPoint::PostAppendPreFsync);
        self.pending_records += 1;
        if let Err(e) = self.maybe_sync() {
            wal_obs().append_errors.inc();
            // The frame reached the file but could not be made durable,
            // and the caller will refuse the mutation — leaving the frame
            // in place would replay a refused mutation at recovery, and
            // the next append would reuse its seq (two frames, one seq:
            // replay stops and drops the later, acknowledged one). Roll
            // the frame back so the log holds exactly the acknowledged
            // prefix; if even the rollback fails the writer is broken.
            self.offset -= frame.len() as u64;
            self.pending_records -= 1;
            self.repair_after_failed_write();
            return Err(e);
        }
        self.next_seq += 1;
        wal_obs().append_records.inc();
        wal_obs().append_bytes.add(frame.len() as u64);
        Ok(seq)
    }

    /// Truncates the segment back to the last fully-written frame after a
    /// failed append, so a partial frame cannot linger in the middle of
    /// the live log. Marks the writer broken when the repair itself fails.
    fn repair_after_failed_write(&mut self) {
        let repaired = self
            .file
            .set_len(self.offset)
            .and_then(|()| self.file.seek(SeekFrom::Start(self.offset)).map(|_| ()));
        if let Err(e) = repaired {
            self.broken = Some(format!("truncate-repair after failed append failed: {e}"));
        }
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Group { records, micros } => {
                self.pending_records >= records
                    || self.last_sync.elapsed().as_micros() as u64 >= micros
            }
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Syncs only when a [`FsyncPolicy::Group`] interval has elapsed with
    /// records still pending — the time threshold in [`WalWriter::append`]
    /// is evaluated at the *next* append, so without a periodic caller an
    /// idle tail would stay unsynced indefinitely. A no-op under
    /// `always`/`never` or with nothing pending, so it is safe to call on
    /// a timer regardless of policy (lt-serve's flusher thread does).
    ///
    /// # Errors
    /// Propagates the fsync failure.
    pub fn sync_if_due(&mut self) -> io::Result<()> {
        if let FsyncPolicy::Group { micros, .. } = self.policy {
            if self.pending_records > 0 && self.last_sync.elapsed().as_micros() as u64 >= micros {
                self.sync()?;
            }
        }
        Ok(())
    }

    /// Forces an fsync of the current segment.
    ///
    /// # Errors
    /// Propagates the fsync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.fail_next_sync {
            self.fail_next_sync = false;
            return Err(io::Error::other("injected WAL fsync failure"));
        }
        let traced = lt_obs::trace::ambient_active();
        let observe = lt_obs::enabled() || traced;
        let t0 = observe.then(Instant::now);
        let span_t0 = traced.then(lt_obs::now_us);
        self.file.sync_data()?;
        self.pending_records = 0;
        self.last_sync = Instant::now();
        if let Some(start_us) = span_t0 {
            // Nested inside the request's wal-append span when the sync
            // happens at append time (fsync=always / group threshold).
            lt_obs::trace::ambient_record(
                lt_obs::trace::stage::FSYNC,
                start_us,
                lt_obs::now_us().saturating_sub(start_us),
                1,
                0,
            );
        }
        if let Some(t0) = t0 {
            // Internally a no-op when the metrics toggle is off (the timing
            // may have been taken for the trace span alone).
            wal_obs().fsync_us.record(lt_obs::micros_since(t0));
        }
        Ok(())
    }

    /// Rotates to a fresh segment (named for the next seq) after a
    /// durable snapshot, then prunes snapshots beyond the retention count
    /// and every WAL segment fully covered by the oldest retained one.
    ///
    /// # Errors
    /// Propagates segment-creation failures; pruning is best-effort.
    pub fn rotate_and_prune(&mut self) -> io::Result<()> {
        self.sync()?;
        let fresh = WalWriter::create(&self.dir, self.policy, self.next_seq)?;
        let old_first = self.segment_first;
        let broken = self.broken.take();
        *self = fresh;
        self.broken = broken;
        let _ = old_first; // previous segment stays until pruned below
        prune(&self.dir);
        Ok(())
    }
}

/// Moves a WAL segment aside as `<name>.orphan` instead of deleting it:
/// its frames may hold acknowledged mutations that a manual snapshot
/// repair could still recover. Orphans are invisible to replay, pruning,
/// and the writer (their names no longer parse as segments). Best-effort.
fn orphan_segment(dir: &Path, first_seq: u64, report: &mut ReplayReport) {
    let name = segment_name(first_seq);
    let _ = fs::rename(dir.join(&name), dir.join(format!("{name}.orphan")));
    report.orphaned_segments += 1;
}

/// Removes stale `*.tmp` files (snapshot or manifest temps left behind by
/// a crash between write and rename). Safe wherever snapshot writes are
/// serialized: at startup recovery (single-threaded) and inside the
/// snapshot-write critical section, where any live temp has already been
/// renamed into place. Best-effort.
pub(crate) fn sweep_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Deletes snapshots beyond [`SNAPSHOT_RETAIN`] and WAL segments whose
/// every record is covered by the oldest retained snapshot, and sweeps
/// stale temp files. Best-effort: pruning failures cost disk, never
/// correctness.
fn prune(dir: &Path) {
    sweep_tmp(dir);
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut snaps: Vec<u64> = Vec::new();
    let mut segments: Vec<u64> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_snapshot_name(name) {
            snaps.push(seq);
        } else if let Some(first) = parse_segment_name(name) {
            segments.push(first);
        }
    }
    snaps.sort_unstable();
    segments.sort_unstable();
    if snaps.len() > SNAPSHOT_RETAIN {
        for &seq in &snaps[..snaps.len() - SNAPSHOT_RETAIN] {
            let _ = fs::remove_file(dir.join(snapshot_name(seq)));
        }
        snaps.drain(..snaps.len() - SNAPSHOT_RETAIN);
    }
    let Some(&keep_from) = snaps.first() else { return };
    // Segment i holds seqs [first_i, first_{i+1}); it is deletable when
    // everything it holds is <= keep_from, i.e. first_{i+1} <= keep_from+1.
    // The newest segment is never deleted.
    for w in segments.windows(2) {
        if w[1] <= keep_from + 1 {
            let _ = fs::remove_file(dir.join(segment_name(w[0])));
        }
    }
}

// ---- manifest ------------------------------------------------------------

/// The atomic commit record: which snapshot is current and what it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Last WAL seq the snapshot includes (0 = none).
    pub covered_seq: u64,
    /// Mutation epoch the snapshot captured.
    pub epoch: u64,
    /// File name (inside the WAL dir) of the snapshot image.
    pub snapshot_file: String,
}

impl Manifest {
    /// Encodes the manifest with magic, version, and CRC32 footer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.covered_seq.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.snapshot_file.len() as u32).to_le_bytes());
        out.extend_from_slice(self.snapshot_file.as_bytes());
        out.extend_from_slice(&crc32(&out).to_le_bytes());
        out
    }

    /// Decodes and integrity-checks a manifest.
    ///
    /// # Errors
    /// Rejects bad magic, truncation, version or checksum mismatches.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, String> {
        const HEADER: usize = 8 + 4 + 8 + 8 + 4;
        if bytes.len() < HEADER + 4 {
            return Err("manifest truncated".into());
        }
        if &bytes[..8] != MANIFEST_MAGIC {
            return Err("bad manifest magic".into());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let covered_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let epoch = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let name_len = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes")) as usize;
        let Some(total) = HEADER.checked_add(name_len).and_then(|n| n.checked_add(4)) else {
            return Err("manifest name length overflow".into());
        };
        if bytes.len() != total {
            return Err(format!("manifest length {} != expected {total}", bytes.len()));
        }
        let body_end = HEADER + name_len;
        let stored = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(format!(
                "manifest checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ));
        }
        let snapshot_file = String::from_utf8(bytes[HEADER..body_end].to_vec())
            .map_err(|_| "manifest snapshot name is not UTF-8".to_string())?;
        Ok(Manifest { covered_seq, epoch, snapshot_file })
    }

    /// Writes the manifest atomically (temp + fsync + rename + dir fsync).
    ///
    /// # Errors
    /// Propagates I/O failures; an existing manifest is untouched on
    /// failure.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let path = dir.join(MANIFEST_NAME);
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        sync_dir(dir);
        Ok(())
    }

    /// Reads and validates the manifest of a WAL directory.
    ///
    /// # Errors
    /// Returns a message when the file is missing, unreadable, or fails
    /// validation.
    pub fn read(dir: &Path) -> Result<Manifest, String> {
        let path = dir.join(MANIFEST_NAME);
        let bytes = fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        Manifest::decode(&bytes)
    }
}

// ---- replay --------------------------------------------------------------

/// What [`replay_wal`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records applied (seq > the replay floor).
    pub replayed: u64,
    /// Seq the writer should continue from.
    pub next_seq: u64,
    /// Bytes truncated off a torn or corrupt tail.
    pub truncated_bytes: u64,
    /// Whole segments moved aside as `*.orphan` because the seq chain
    /// broke (or gapped) before them — preserved for manual repair,
    /// never deleted.
    pub orphaned_segments: usize,
    /// Why replay stopped early, if it did (torn frame, checksum, gap).
    pub stopped: Option<String>,
}

/// Replays every record with seq > `from_seq` from the segments in `dir`,
/// in seq order, calling `apply` for each.
///
/// Stops cleanly — never panics — at the first torn frame, checksum
/// failure, seq gap, seq-chain break, or `apply` rejection; the offending
/// tail is truncated off its segment and unreachable segments are moved
/// aside as `*.orphan` (never deleted — a seq gap can mean the segment is
/// intact but the snapshot bridging to it was lost, and its acknowledged
/// frames may still matter to a manual repair). The live log afterwards
/// is exactly the applied prefix and the writer can continue from
/// `next_seq`.
///
/// # Errors
/// Propagates only real I/O failures (unreadable directory/file);
/// corruption is reported in the `ReplayReport`, not as an error.
pub fn replay_wal(
    dir: &Path,
    from_seq: u64,
    mut apply: impl FnMut(u64, WalRecord) -> Result<(), String>,
) -> io::Result<ReplayReport> {
    let mut report = ReplayReport { next_seq: from_seq + 1, ..ReplayReport::default() };
    let mut segments: Vec<u64> = Vec::new();
    if dir.exists() {
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            if let Some(first) = name.to_str().and_then(parse_segment_name) {
                segments.push(first);
            }
        }
    }
    segments.sort_unstable();

    let mut expected = from_seq + 1;
    // (segment index we stopped in, byte offset of the valid prefix,
    //  gap: the segment is intact but unreachable, not corrupt)
    let mut stop: Option<(usize, u64, bool, String)> = None;

    'segments: for (si, &first) in segments.iter().enumerate() {
        if si + 1 < segments.len() && segments[si + 1] <= expected {
            // The next segment starts at or before what we still need:
            // everything here is covered by the snapshot. Skip the bytes
            // entirely — they may even have been half-pruned.
            continue;
        }
        if first > expected {
            stop = Some((
                si,
                0,
                true,
                format!("seq gap: segment starts at {first}, expected {expected}"),
            ));
            break;
        }
        let path = dir.join(segment_name(first));
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != *WAL_MAGIC {
            stop = Some((si, 0, false, format!("bad segment magic in {}", path.display())));
            break;
        }
        let mut off = WAL_MAGIC.len();
        let mut seg_expected = first;
        loop {
            if off == bytes.len() {
                break; // clean end of segment
            }
            let Some(frame_end) = frame_end_at(&bytes, off) else {
                stop = Some((si, off as u64, false, "torn frame (truncated)".into()));
                break 'segments;
            };
            let len =
                u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            let seq = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("8 bytes"));
            let body = &bytes[off + 4..off + 12 + len];
            let stored =
                u32::from_le_bytes(bytes[frame_end - 4..frame_end].try_into().expect("4 bytes"));
            if crc32(body) != stored {
                stop = Some((si, off as u64, false, format!("frame checksum mismatch at seq {seq}")));
                break 'segments;
            }
            if seq != seg_expected {
                stop = Some((
                    si,
                    off as u64,
                    false,
                    format!("seq chain broken: frame {seq}, expected {seg_expected}"),
                ));
                break 'segments;
            }
            if seq >= expected {
                let record = match WalRecord::decode(&body[8..]) {
                    Ok(r) => r,
                    Err(e) => {
                        stop = Some((si, off as u64, false, format!("bad record at seq {seq}: {e}")));
                        break 'segments;
                    }
                };
                if let Err(e) = apply(seq, record) {
                    stop = Some((si, off as u64, false, format!("replay of seq {seq} rejected: {e}")));
                    break 'segments;
                }
                report.replayed += 1;
                expected = seq + 1;
            }
            seg_expected = seq + 1;
            off = frame_end;
        }
    }

    if let Some((si, valid_prefix, gap, why)) = stop {
        // The offending segment: a seq gap means it is intact but
        // unreachable (e.g. every snapshot bridging to it was lost), so
        // it is moved aside whole; a torn/corrupt stop truncates it back
        // to its valid prefix, orphaning it when nothing valid is left.
        // Later segments are unreachable past the break either way, and
        // are orphaned too — never deleted, so acknowledged frames stay
        // available to a manual snapshot repair.
        let path = dir.join(segment_name(segments[si]));
        if gap {
            orphan_segment(dir, segments[si], &mut report);
        } else if let Ok(meta) = fs::metadata(&path) {
            let keep = if valid_prefix == 0 { 0 } else { valid_prefix.max(WAL_MAGIC.len() as u64) };
            if keep == 0 {
                orphan_segment(dir, segments[si], &mut report);
            } else if meta.len() > keep {
                report.truncated_bytes += meta.len() - keep;
                if let Ok(f) = OpenOptions::new().write(true).open(&path) {
                    let _ = f.set_len(keep);
                    let _ = f.sync_all();
                }
            }
        }
        for &later in &segments[si + 1..] {
            orphan_segment(dir, later, &mut report);
        }
        sync_dir(dir);
        report.stopped = Some(why);
    }

    report.next_seq = expected;
    wal_obs().replay_records.add(report.replayed);
    wal_obs().truncated_bytes.add(report.truncated_bytes);
    Ok(report)
}

/// End offset of the frame starting at `off`, or `None` if it overruns
/// the buffer (torn) or claims an absurd length.
fn frame_end_at(bytes: &[u8], off: usize) -> Option<usize> {
    let header_end = off.checked_add(4)?;
    if bytes.len() < header_end {
        return None;
    }
    let len = u32::from_le_bytes(bytes[off..header_end].try_into().expect("4 bytes")) as usize;
    if len > MAX_WAL_FRAME_BYTES {
        return None;
    }
    let end = header_end.checked_add(8)?.checked_add(len)?.checked_add(4)?;
    (bytes.len() >= end).then_some(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lt_wal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn collect(dir: &Path, from: u64) -> (Vec<(u64, WalRecord)>, ReplayReport) {
        let mut got = Vec::new();
        let report = replay_wal(dir, from, |seq, rec| {
            got.push((seq, rec));
            Ok(())
        })
        .unwrap();
        (got, report)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Upsert { dim: 3, rows: vec![1.0, -2.5, 0.0, 4.0, 5.0, -6.0], shard: None },
            WalRecord::Delete { id: 7, shard: Some(3) },
            WalRecord::Upsert { dim: 3, rows: vec![0.25, 0.5, 0.75], shard: Some(1) },
        ]
    }

    #[test]
    fn record_encoding_roundtrips() {
        for rec in sample_records() {
            assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
        }
        // The shard tag is a strict trailing extension of the legacy
        // layout: pre-sharding logs decode unchanged as `shard: None`.
        let legacy = WalRecord::Delete { id: 7, shard: None }.encode();
        let tagged = WalRecord::Delete { id: 7, shard: Some(3) }.encode();
        assert_eq!(&tagged[..legacy.len()], &legacy[..]);
        assert_eq!(tagged.len(), legacy.len() + 4);
        assert_eq!(
            WalRecord::decode(&legacy).unwrap(),
            WalRecord::Delete { id: 7, shard: None }
        );
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[9]).is_err());
        let mut torn = sample_records()[0].encode();
        torn.truncate(torn.len() - 2);
        assert!(WalRecord::decode(&torn).is_err());
        let mut trailing = sample_records()[1].encode();
        trailing.push(0);
        assert!(WalRecord::decode(&trailing).is_err());
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmp("roundtrip");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        for (i, rec) in sample_records().iter().enumerate() {
            assert_eq!(w.append(rec).unwrap(), 1 + i as u64);
        }
        let (got, report) = collect(&dir, 0);
        assert_eq!(report.replayed, 3);
        assert_eq!(report.next_seq, 4);
        assert!(report.stopped.is_none());
        assert_eq!(got.len(), 3);
        for ((seq, rec), (i, expected)) in got.iter().zip(sample_records().iter().enumerate()) {
            assert_eq!(*seq, 1 + i as u64);
            assert_eq!(rec, expected);
        }
        // Replay from a floor skips covered records.
        let (tail, report) = collect(&dir, 2);
        assert_eq!(report.replayed, 1);
        assert_eq!(tail[0].0, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_writer_continues() {
        let dir = tmp("torn");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        drop(w);
        // Tear the last frame: chop a few bytes off the segment.
        let path = dir.join(segment_name(1));
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();

        let (got, report) = collect(&dir, 0);
        assert_eq!(report.replayed, 2, "valid prefix only");
        assert_eq!(report.next_seq, 3);
        assert!(report.stopped.is_some());
        assert!(report.truncated_bytes > 0);
        assert_eq!(got.len(), 2);

        // The tail is gone from disk: a second replay is clean.
        let (_, again) = collect(&dir, 0);
        assert_eq!(again.replayed, 2);
        assert!(again.stopped.is_none());

        // And a writer opened at next_seq continues the chain.
        let mut w = WalWriter::create(&dir, FsyncPolicy::Always, report.next_seq).unwrap();
        w.append(&WalRecord::Delete { id: 99, shard: None }).unwrap();
        let (got, report) = collect(&dir, 0);
        assert_eq!(report.replayed, 3);
        assert_eq!(got.last().unwrap().0, 3);
        assert!(report.stopped.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_regions_stop_replay_without_panic() {
        // Flip one byte in each structural region of the middle frame and
        // make sure replay stops at (not before) it, cleanly, every time.
        let base = tmp("flipbase");
        let mut w = WalWriter::create(&base, FsyncPolicy::Always, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        drop(w);
        let pristine = fs::read(base.join(segment_name(1))).unwrap();
        let frame1_start = WAL_MAGIC.len();
        let frame1_end = frame_end_at(&pristine, frame1_start).unwrap();
        // Regions of frame 2: length field, seq field, payload, crc.
        let offsets = [
            frame1_end,      // length
            frame1_end + 5,  // seq
            frame1_end + 13, // payload
            frame_end_at(&pristine, frame1_end).unwrap() - 1, // crc
        ];
        for (i, &flip) in offsets.iter().enumerate() {
            let dir = tmp(&format!("flip{i}"));
            let mut bytes = pristine.clone();
            bytes[flip] ^= 0x5A;
            fs::write(dir.join(segment_name(1)), &bytes).unwrap();
            let (got, report) = collect(&dir, 0);
            assert_eq!(got.len(), 1, "region {i}: only the frame before the flip survives");
            assert!(report.stopped.is_some(), "region {i}: corruption must be reported");
            // Post-truncation replay is clean and idempotent.
            let (again, rep2) = collect(&dir, 0);
            assert_eq!(again.len(), 1);
            assert!(rep2.stopped.is_none(), "region {i}: tail must be truncated away");
            let _ = fs::remove_dir_all(&dir);
        }
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn rotation_spans_segments_and_prunes_covered_ones() {
        let dir = tmp("rotate");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Never, 1).unwrap();
        w.append(&WalRecord::Delete { id: 1, shard: None }).unwrap();
        w.append(&WalRecord::Delete { id: 2, shard: None }).unwrap();
        w.rotate_and_prune().unwrap();
        w.append(&WalRecord::Delete { id: 3, shard: None }).unwrap();
        w.rotate_and_prune().unwrap();
        w.append(&WalRecord::Delete { id: 4, shard: None }).unwrap();
        drop(w);
        // No snapshots exist, so nothing is pruned and replay sees all 4.
        let (got, report) = collect(&dir, 0);
        assert_eq!(report.replayed, 4);
        assert!(report.stopped.is_none());
        assert_eq!(got.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2, 3, 4]);

        // Two snapshot markers covering seq 2 and 3: the first segment
        // (seqs 1-2, fully below the older snapshot) becomes prunable.
        fs::write(dir.join(snapshot_name(2)), b"x").unwrap();
        fs::write(dir.join(snapshot_name(3)), b"x").unwrap();
        prune(&dir);
        assert!(!dir.join(segment_name(1)).exists(), "covered segment must be pruned");
        let (got, report) = collect(&dir, 2);
        assert_eq!(report.replayed, 2);
        assert!(report.stopped.is_none());
        assert_eq!(got.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seq_gap_between_segments_stops_and_orphans_unreachable() {
        let dir = tmp("gap");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Never, 1).unwrap();
        w.append(&WalRecord::Delete { id: 1, shard: None }).unwrap();
        drop(w);
        // Fabricate a segment claiming to start at 5: seqs 2-4 are missing.
        let mut w = WalWriter::create(&dir, FsyncPolicy::Never, 5).unwrap();
        w.append(&WalRecord::Delete { id: 5, shard: None }).unwrap();
        drop(w);
        let gapped = fs::read(dir.join(segment_name(5))).unwrap();
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 1);
        assert_eq!(report.next_seq, 2);
        assert!(report.stopped.unwrap().contains("gap"));
        assert_eq!(report.orphaned_segments, 1);
        // The unreachable segment leaves the live log but is preserved
        // byte-for-byte for manual repair, never deleted.
        assert!(!dir.join(segment_name(5)).exists(), "unreachable segment left the live log");
        let orphan = dir.join(format!("{}.orphan", segment_name(5)));
        assert_eq!(fs::read(&orphan).unwrap(), gapped, "orphan preserves the segment bytes");
        // A second replay no longer sees the orphan: clean and idempotent.
        let (again, rep2) = collect(&dir, 0);
        assert_eq!(again.len(), 1);
        assert!(rep2.stopped.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_failure_is_typed_and_recoverable() {
        let dir = tmp("inject");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        w.append(&WalRecord::Delete { id: 1, shard: None }).unwrap();
        w.fail_next_append();
        let err = w.append(&WalRecord::Delete { id: 2, shard: None }).unwrap_err();
        assert!(err.to_string().contains("injected"));
        // The failed append must not consume a seq or corrupt the log.
        assert_eq!(w.append(&WalRecord::Delete { id: 3, shard: None }).unwrap(), 2);
        drop(w);
        let (got, report) = collect(&dir, 0);
        assert_eq!(report.replayed, 2);
        assert!(report.stopped.is_none());
        assert_eq!(got[1].1, WalRecord::Delete { id: 3, shard: None });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_failure_rolls_back_the_frame() {
        let dir = tmp("syncfail");
        let mut w = WalWriter::create(&dir, FsyncPolicy::Always, 1).unwrap();
        w.append(&WalRecord::Delete { id: 1, shard: None }).unwrap();
        w.fail_next_sync();
        let err = w.append(&WalRecord::Delete { id: 2, shard: None }).unwrap_err();
        assert!(err.to_string().contains("fsync"));
        // The refused mutation's frame must not linger in the log: its
        // seq is reused by the next successful append, and replay must
        // see neither a phantom of the refused record nor a duplicate
        // seq that would truncate off the acknowledged one.
        assert_eq!(w.append(&WalRecord::Delete { id: 3, shard: None }).unwrap(), 2);
        drop(w);
        let (got, report) = collect(&dir, 0);
        assert!(report.stopped.is_none(), "no duplicate-seq chain break: {:?}", report.stopped);
        assert_eq!(report.replayed, 2);
        assert_eq!(got[1], (2, WalRecord::Delete { id: 3, shard: None }), "refused mutation must not replay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_if_due_flushes_idle_group_tail() {
        let dir = tmp("syncdue");
        let mut w =
            WalWriter::create(&dir, FsyncPolicy::Group { records: 100, micros: 20_000 }, 1)
                .unwrap();
        w.append(&WalRecord::Delete { id: 1, shard: None }).unwrap();
        w.sync_if_due().unwrap();
        assert_eq!(w.pending_records, 1, "interval not elapsed: tail still pending");
        std::thread::sleep(std::time::Duration::from_millis(25));
        w.sync_if_due().unwrap();
        assert_eq!(w.pending_records, 0, "idle tail flushed once the interval elapsed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_sweeps_stale_tmp_files() {
        let dir = tmp("sweep");
        let stale_snap = dir.join(format!("{}.tmp", snapshot_name(7)));
        let stale_manifest = dir.join(format!("{MANIFEST_NAME}.tmp"));
        fs::write(&stale_snap, b"half-written").unwrap();
        fs::write(&stale_manifest, b"half-written").unwrap();
        fs::write(dir.join(snapshot_name(7)), b"committed").unwrap();
        prune(&dir);
        assert!(!stale_snap.exists(), "stale snapshot temp swept");
        assert!(!stale_manifest.exists(), "stale manifest temp swept");
        assert!(dir.join(snapshot_name(7)).exists(), "committed files untouched");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = tmp("manifest");
        let m = Manifest { covered_seq: 42, epoch: 42, snapshot_file: snapshot_name(42) };
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), m);
        // Bit-flips anywhere are caught.
        let path = dir.join(MANIFEST_NAME);
        let pristine = fs::read(&path).unwrap();
        for flip in [0, 9, 14, 25, 30, pristine.len() - 2] {
            let mut bytes = pristine.clone();
            bytes[flip] ^= 0xFF;
            fs::write(&path, &bytes).unwrap();
            assert!(Manifest::decode(&bytes).is_err(), "flip at {flip} accepted");
            assert!(Manifest::read(&dir).is_err());
        }
        // Truncations too.
        for cut in [0, 7, 19, pristine.len() - 1] {
            assert!(Manifest::decode(&pristine[..cut]).is_err(), "cut at {cut} accepted");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("group").unwrap(),
            FsyncPolicy::Group { records: 8, micros: 1_000 }
        );
        assert_eq!(
            FsyncPolicy::parse("group:32").unwrap(),
            FsyncPolicy::Group { records: 32, micros: 1_000 }
        );
        assert_eq!(
            FsyncPolicy::parse("group:4:250").unwrap(),
            FsyncPolicy::Group { records: 4, micros: 250 }
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("group:x").is_err());
        for p in ["always", "never", "group:4:250"] {
            assert_eq!(FsyncPolicy::parse(p).unwrap().to_string(), p);
        }
    }

    #[test]
    fn group_policy_syncs_on_record_threshold() {
        let dir = tmp("group");
        let mut w =
            WalWriter::create(&dir, FsyncPolicy::Group { records: 2, micros: u64::MAX }, 1)
                .unwrap();
        w.append(&WalRecord::Delete { id: 1, shard: None }).unwrap();
        assert_eq!(w.pending_records, 1, "below threshold: no sync yet");
        w.append(&WalRecord::Delete { id: 2, shard: None }).unwrap();
        assert_eq!(w.pending_records, 0, "threshold reached: synced");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_plan_parses_env_forms() {
        // from_env reads the real environment; exercise the parser pieces.
        assert_eq!(CrashPoint::parse("torn_tail"), Some(CrashPoint::TornTail));
        assert_eq!(CrashPoint::parse("bogus"), None);
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.name()), Some(p));
        }
        let plan = CrashPlan { point: Some(CrashPoint::PreAppend), fire_on_hit: 2, hits: AtomicU32::new(0) };
        assert!(!plan.triggered(CrashPoint::PostAppendPreFsync));
        assert!(!plan.triggered(CrashPoint::PreAppend), "first hit: not yet");
        assert!(plan.triggered(CrashPoint::PreAppend), "second hit fires");
        assert!(!plan.triggered(CrashPoint::PreAppend), "fires exactly once");
    }
}
