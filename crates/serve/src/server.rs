//! TCP front end: accept loop, per-connection reader threads, dispatch.
//!
//! Thread topology (all `std::thread`, no async runtime):
//!
//! - **accept thread** — blocks on `TcpListener::accept`, spawns one
//!   handler per connection. Never does per-request work, so a slow or
//!   hostile client cannot stall admission of new connections.
//! - **handler threads** (one per live connection) — frame decode, request
//!   validation, dispatch. Searches are enqueued into the shared
//!   [`SubmitQueue`](crate::batch::SubmitQueue) and the handler blocks on
//!   the reply channel; a full queue answers `Overloaded` immediately.
//!   Mutations (`Upsert`/`Delete`) and control ops run inline against the
//!   [`IndexState`], so their acknowledgement orders them before any
//!   later-formed batch.
//! - **executor thread** — the micro-batching loop
//!   ([`crate::batch::run_executor`]).
//! - **snapshot thread** (optional) — periodic checksummed snapshots via
//!   [`IndexState::write_snapshot`].
//!
//! Reads use a poll timeout so handler threads notice the stop flag within
//! ~50 ms even on idle connections. Shutdown order matters and is encoded
//! in [`Server::shutdown`]: stop flag → close queue (executor flushes and
//! exits) → self-connect to unblock `accept` → join threads.

use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use lightlt_core::index::QuantizedIndex;
use lightlt_core::route::RouteSpec;
use lt_linalg::scan::BackendKind;
use lt_linalg::Matrix;
use lt_obs::trace::{stage, Span, TraceCtx, NO_SHARD};

use crate::batch::{run_executor, serve_obs, ExecCounters, SearchJob, SubmitError, SubmitQueue};
use crate::protocol::{read_frame, write_frame, Request, Response, ServeStats, METRICS_VERSION};
use crate::state::{IndexState, MutationError};
use crate::wal::FsyncPolicy;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Batch-size trigger: drain as soon as this many searches wait.
    pub max_batch: usize,
    /// Deadline trigger: drain once the oldest waiting search is this old.
    pub max_delay: Duration,
    /// Admission bound on queued-but-not-executing searches.
    pub queue_cap: usize,
    /// Runtime width for batch execution (0 = leave the global default).
    pub threads: usize,
    /// Shards the index is partitioned into (modulo-routed by id; 0 is
    /// treated as 1). Sharded search merges in fixed shard order, so any
    /// value returns bitwise-identical results; more shards let batch
    /// scans fan out across the worker pool.
    pub shards: usize,
    /// Where to write periodic snapshots (None disables the snapshotter;
    /// explicit `Snapshot` requests still need a path). Ignored in WAL
    /// mode, where snapshots live inside the WAL directory.
    pub snapshot_path: Option<PathBuf>,
    /// Interval between background snapshots (None = only on request).
    pub snapshot_every: Option<Duration>,
    /// Directory for the write-ahead log. When set, every mutation is
    /// logged (and fsynced per `fsync_policy`) before acknowledgement,
    /// and startup recovers from the newest valid snapshot + WAL replay.
    pub wal_dir: Option<PathBuf>,
    /// When WAL appends are fsynced relative to acknowledgement.
    pub fsync_policy: FsyncPolicy,
    /// Turn the lt-obs metrics registry on at startup. The `Metrics` op
    /// answers either way (with zeroed series when off); disabling skips
    /// all hot-path recording.
    pub metrics: bool,
    /// Scan engine for batch execution: exact f32 (the default) or the
    /// Bolt-style u8 quantized engine, optionally with an exact re-rank
    /// depth (`u8:R`). With full re-rank (or f32) results are exact;
    /// un-reranked u8 trades a little recall for scan throughput.
    pub backend: BackendKind,
    /// Coarse routing (`nlist[:nprobe]`): train a deterministic k-means
    /// coarse quantizer over the corpus at startup and scan only the
    /// top-`nprobe` partitions per query. None = exhaustive scans.
    /// Composes with `shards` (routing replaces the shard scan on the
    /// search path; mutations still land in the shard cells) and with
    /// `backend` (each probed partition scans through the same engine).
    pub route: Option<RouteSpec>,
    /// Turn per-request span tracing on at startup. Independent of
    /// `metrics`: traces flow into the tail-sampling reservoir (the
    /// `Traces` op) whether or not the metric registry records. When off,
    /// the trace arena is never touched and the wire replies carry no
    /// trace id.
    pub trace: bool,
    /// Mirror every completed trace to a Chrome `trace_event` JSON file
    /// (open in Perfetto / `chrome://tracing`). Implies nothing about
    /// `trace`: the sink only sees traces, so with tracing off the file
    /// stays an empty event array.
    pub trace_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_delay: Duration::from_micros(500),
            queue_cap: 1024,
            threads: 0,
            shards: 1,
            snapshot_path: None,
            snapshot_every: None,
            wal_dir: None,
            fsync_policy: FsyncPolicy::Always,
            metrics: true,
            backend: BackendKind::F32,
            route: None,
            trace: true,
            trace_out: None,
        }
    }
}

/// Mutation/traffic counters surfaced by the `Stats` op.
#[derive(Debug, Default)]
struct OpCounters {
    rejected: AtomicU64,
    upserts: AtomicU64,
    deletes: AtomicU64,
    snapshots: AtomicU64,
}

/// A running serve instance. Dropping without [`Server::shutdown`] aborts
/// hard (threads are detached at drop); prefer an explicit shutdown.
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<IndexState>,
    queue: Arc<SubmitQueue>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    executor_handle: Option<std::thread::JoinHandle<()>>,
    snapshot_handle: Option<std::thread::JoinHandle<()>>,
    flusher_handle: Option<std::thread::JoinHandle<()>>,
    handler_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the accept/executor/snapshot threads, and returns.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(index: QuantizedIndex, config: ServeConfig) -> io::Result<Server> {
        Server::start_inner(Some(index), config)
    }

    /// Like [`Server::start`] but with no base index: the whole state
    /// comes from the WAL directory (newest valid snapshot + replay).
    ///
    /// # Errors
    /// Refuses when `config.wal_dir` is unset or holds no valid snapshot.
    pub fn start_recovered(config: ServeConfig) -> io::Result<Server> {
        if config.wal_dir.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "starting without a base index requires a WAL directory",
            ));
        }
        Server::start_inner(None, config)
    }

    fn start_inner(index: Option<QuantizedIndex>, config: ServeConfig) -> io::Result<Server> {
        if config.threads > 0 {
            lt_runtime::set_threads(config.threads);
        }
        if config.metrics {
            lt_obs::set_enabled(true);
        }
        lt_obs::set_trace_enabled(config.trace);
        if let Some(path) = &config.trace_out {
            lt_obs::init_trace_out(path)?;
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let mut state = match &config.wal_dir {
            Some(dir) => {
                // Recover: newest valid snapshot in the WAL dir (or the
                // given index as the base) plus WAL-suffix replay.
                let (state, report) =
                    crate::recovery::recover(index, dir, config.fsync_policy, config.shards)
                        .map_err(io::Error::other)?;
                if report.replay.replayed > 0 || report.replay.stopped.is_some() {
                    eprintln!(
                        "wal: recovered epoch {} ({} replayed{})",
                        report.epoch,
                        report.replay.replayed,
                        report
                            .replay
                            .stopped
                            .as_deref()
                            .map(|s| format!("; stopped: {s}"))
                            .unwrap_or_default()
                    );
                }
                state
            }
            None => {
                let index = index.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "no index and no WAL directory")
                })?;
                IndexState::new_sharded(index, config.shards.max(1))
            }
        };
        if let Some(spec) = config.route {
            // Routing is an overlay over whatever state we just built or
            // recovered: the centroids retrain deterministically on the
            // current corpus, so a restart after WAL replay lands on the
            // same partitioning a fresh build of that corpus would.
            state.enable_routing(
                spec.nlist,
                spec.nprobe,
                lightlt_core::route::DEFAULT_TRAIN_SEED,
            );
        }
        let state = Arc::new(state);
        let queue = Arc::new(SubmitQueue::new(config.queue_cap));
        let stop = Arc::new(AtomicBool::new(false));
        let exec_counters = Arc::new(ExecCounters::default());
        let op_counters = Arc::new(OpCounters::default());
        let handler_handles = Arc::new(Mutex::new(Vec::new()));

        let executor_handle = {
            let queue = queue.clone();
            let state = state.clone();
            let stop = stop.clone();
            let counters = exec_counters.clone();
            let (max_batch, max_delay) = (config.max_batch, config.max_delay);
            let backend_kind = config.backend;
            std::thread::Builder::new()
                .name("lt-serve-exec".into())
                .spawn(move || {
                    let backend = backend_kind.create();
                    run_executor(
                        &queue,
                        &state,
                        backend.as_ref(),
                        max_batch,
                        max_delay,
                        &stop,
                        &counters,
                    )
                })?
        };

        // Periodic snapshotter: in WAL mode images go into the WAL
        // directory (manifest-committed); otherwise to `snapshot_path`.
        let snapshot_target = match (state.wal_enabled(), &config.snapshot_path) {
            (true, _) => Some(None),
            (false, Some(path)) => Some(Some(path.clone())),
            (false, None) => None,
        };
        let snapshot_handle = match (snapshot_target, config.snapshot_every) {
            (Some(path), Some(every)) => {
                let state = state.clone();
                let stop = stop.clone();
                let op_counters = op_counters.clone();
                Some(
                    std::thread::Builder::new()
                        .name("lt-serve-snap".into())
                        .spawn(move || {
                            let mut last = Instant::now();
                            let mut last_epoch = state.epoch();
                            while !stop.load(Ordering::SeqCst) {
                                std::thread::sleep(Duration::from_millis(25));
                                if last.elapsed() < every {
                                    continue;
                                }
                                last = Instant::now();
                                let epoch = state.epoch();
                                if epoch == last_epoch {
                                    continue; // nothing changed since the last image
                                }
                                let written = match &path {
                                    Some(path) => state.write_snapshot(path),
                                    None => state.write_durable_snapshot(),
                                };
                                match written {
                                    Ok(captured) => {
                                        last_epoch = captured;
                                        op_counters.snapshots.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(e) => eprintln!("warning: snapshot failed: {e}"),
                                }
                            }
                        })?,
                )
            }
            _ => None,
        };

        // Group-commit flusher: the group policy's time threshold is only
        // evaluated at append time, so after a burst followed by idle
        // traffic the acknowledged tail would otherwise stay unsynced
        // until shutdown. This bounds the idle-tail window to ~10ms past
        // the policy's interval.
        let flusher_handle = match state.wal_policy() {
            Some(FsyncPolicy::Group { .. }) => {
                let state = state.clone();
                let stop = stop.clone();
                Some(
                    std::thread::Builder::new()
                        .name("lt-serve-wal-flush".into())
                        .spawn(move || {
                            while !stop.load(Ordering::SeqCst) {
                                std::thread::sleep(Duration::from_millis(10));
                                if let Err(e) = state.sync_wal_if_due() {
                                    eprintln!("warning: WAL group flush failed: {e}");
                                }
                            }
                        })?,
                )
            }
            _ => None,
        };

        let accept_handle = {
            let ctx = HandlerCtx {
                state: state.clone(),
                queue: queue.clone(),
                stop: stop.clone(),
                exec_counters,
                op_counters,
                snapshot_path: config.snapshot_path.clone(),
            };
            let handler_handles = handler_handles.clone();
            let stop = stop.clone();
            std::thread::Builder::new().name("lt-serve-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(stream) => stream,
                        Err(_) => {
                            // Persistent accept errors (e.g. EMFILE) yield
                            // without blocking; back off instead of
                            // spinning the accept thread at 100% CPU.
                            std::thread::sleep(Duration::from_millis(25));
                            continue;
                        }
                    };
                    // Keep a handle for a best-effort Overloaded reply if
                    // the spawn below fails (the closure consumes `stream`).
                    let reply_stream = stream.try_clone();
                    let ctx = ctx.clone();
                    let spawned = std::thread::Builder::new()
                        .name("lt-serve-conn".into())
                        .spawn(move || handle_connection(stream, &ctx));
                    let handle = match spawned {
                        Ok(handle) => handle,
                        Err(e) => {
                            // Resource exhaustion: shed this connection and
                            // keep accepting. Panicking here would kill
                            // only the accept thread, leaving a server
                            // that looks healthy but admits no one.
                            eprintln!("warning: connection handler spawn failed: {e}");
                            if let Ok(mut s) = reply_stream {
                                let _ = write_frame(&mut s, &Response::Overloaded.encode());
                            }
                            std::thread::sleep(Duration::from_millis(25));
                            continue;
                        }
                    };
                    let mut handles =
                        handler_handles.lock().unwrap_or_else(|e| e.into_inner());
                    // Opportunistically reap finished handlers so a
                    // long-lived server doesn't accumulate join handles.
                    handles.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
                    handles.push(handle);
                }
            })?
        };

        Ok(Server {
            local_addr,
            state,
            queue,
            stop,
            accept_handle: Some(accept_handle),
            executor_handle: Some(executor_handle),
            snapshot_handle: Some(snapshot_handle).flatten(),
            flusher_handle,
            handler_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared index state (for tests and embedding).
    pub fn state(&self) -> &Arc<IndexState> {
        &self.state
    }

    /// Graceful shutdown: stop admission, flush the batch queue (every
    /// admitted search still gets its response), join all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Executor: wakes on close, flushes remaining jobs, exits.
        self.queue.close();
        if let Some(h) = self.executor_handle.take() {
            let _ = h.join();
        }
        // Accept loop: blocked in accept(); a self-connection unblocks it
        // and the stop flag makes it exit before handling the connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.snapshot_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.flusher_handle.take() {
            let _ = h.join();
        }
        // Handlers poll the stop flag on their read timeout.
        let handles =
            std::mem::take(&mut *self.handler_handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        // Group/never fsync policies may hold an unsynced tail; make the
        // acknowledged suffix durable before the process exits.
        if let Err(e) = self.state.sync_wal() {
            eprintln!("warning: final WAL sync failed: {e}");
        }
        // Close the Chrome-trace event array (no-op without --trace-out).
        lt_obs::flush_trace_out();
    }
}

/// Everything a connection handler needs, cheaply cloneable.
#[derive(Clone)]
struct HandlerCtx {
    state: Arc<IndexState>,
    queue: Arc<SubmitQueue>,
    stop: Arc<AtomicBool>,
    exec_counters: Arc<ExecCounters>,
    op_counters: Arc<OpCounters>,
    snapshot_path: Option<PathBuf>,
}

/// Per-connection loop: read frame → dispatch → write frame, until EOF,
/// error, `Shutdown`, or the server stop flag.
fn handle_connection(mut stream: TcpStream, ctx: &HandlerCtx) {
    // Poll-style reads so idle connections notice shutdown promptly.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    // Live-connection gauge, balanced on every exit path. The handle is
    // resolved once per connection; when observability is off at accept
    // time neither side of the pair records.
    struct ConnGauge(Option<&'static crate::batch::ServeObs>);
    impl Drop for ConnGauge {
        fn drop(&mut self) {
            if let Some(o) = self.0 {
                o.connections.dec();
            }
        }
    }
    let gauge = ConnGauge(lt_obs::enabled().then(serve_obs));
    if let Some(o) = gauge.0 {
        o.connections.inc();
    }
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return;
        }
        // One clock read per poll tick, only while tracing: the accept
        // span covers the read attempt that completed the frame.
        let read_t0 = lt_obs::trace_enabled().then(lt_obs::now_us);
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            // read_frame only surfaces these at a frame boundary (zero
            // bytes consumed); mid-frame stalls retry internally or come
            // back as a hard error, so continuing here cannot desync the
            // stream.
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // idle poll tick; loop re-checks the stop flag
            }
            Err(_) => return, // torn frame / hard I/O error: drop the conn
        };
        let decode_t0 = read_t0.map(|_| lt_obs::now_us());
        let response = match Request::decode(&payload) {
            Ok(request) => {
                // Decode end is stamped before begin_trace so the arena's
                // one-time lazy init never inflates the decode span.
                let decode_end = decode_t0.map(|_| lt_obs::now_us());
                let is_shutdown = matches!(request, Request::Shutdown);
                // Trace the data-path ops only; control ops (stats,
                // metrics, snapshot, shutdown, trace retrieval itself)
                // would crowd the tail reservoir with trivia.
                let trace = match &request {
                    Request::Search { .. } | Request::Upsert { .. } | Request::Delete { .. } => {
                        lt_obs::begin_trace()
                    }
                    _ => None,
                };
                // Accept + decode spans are pushed retroactively: the
                // trace id only exists once the op kind is known.
                if let (Some(t), Some(read_t0), Some(decode_t0), Some(decode_end)) =
                    (&trace, read_t0, decode_t0, decode_end)
                {
                    t.push(Span {
                        stage: stage::ACCEPT,
                        shard: NO_SHARD,
                        start_us: read_t0,
                        dur_us: decode_t0.saturating_sub(read_t0),
                        items: payload.len() as u64,
                        reranked: 0,
                    });
                    t.push(Span {
                        stage: stage::DECODE,
                        shard: NO_SHARD,
                        start_us: decode_t0,
                        dur_us: decode_end.saturating_sub(decode_t0),
                        items: payload.len() as u64,
                        reranked: 0,
                    });
                }
                let resp = dispatch(request, ctx, trace);
                let encode_t0 = trace.map(|_| lt_obs::now_us());
                let encoded = resp.encode();
                if let (Some(t), Some(start_us)) = (&trace, encode_t0) {
                    t.push(Span {
                        stage: stage::ENCODE,
                        shard: NO_SHARD,
                        start_us,
                        dur_us: lt_obs::now_us().saturating_sub(start_us),
                        items: encoded.len() as u64,
                        reranked: 0,
                    });
                }
                let reply_t0 = trace.map(|_| lt_obs::now_us());
                let write_ok = write_frame(&mut stream, &encoded).is_ok();
                if let (Some(t), Some(start_us)) = (&trace, reply_t0) {
                    t.push(Span {
                        stage: stage::REPLY,
                        shard: NO_SHARD,
                        start_us,
                        dur_us: lt_obs::now_us().saturating_sub(start_us),
                        items: encoded.len() as u64,
                        reranked: 0,
                    });
                }
                // Completion point: total_us covers everything through the
                // reply write. Executor-side spans all landed before the
                // reply channel send, so none are lost to this finish.
                if let Some(t) = trace {
                    lt_obs::finish_trace(t);
                }
                if !write_ok || is_shutdown {
                    return;
                }
                continue;
            }
            Err(e) => {
                note_bad_request();
                Response::BadRequest { message: format!("malformed request: {e}") }
            }
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Bumps `serve.refused_bad_request`, skipping registry access entirely
/// while observability is off.
fn note_bad_request() {
    if lt_obs::enabled() {
        serve_obs().refused_bad_request.inc();
    }
}

/// Maps a refused mutation to the wire: an invalid request is the
/// client's fault (`BadRequest`), a durability failure is the server's
/// (`ServerError` — the mutation was *not* applied, so the client must
/// not assume it took effect).
fn mutation_refusal(e: MutationError, ctx: &HandlerCtx) -> Response {
    ctx.op_counters.rejected.fetch_add(1, Ordering::Relaxed);
    match e {
        MutationError::Rejected(message) => {
            note_bad_request();
            Response::BadRequest { message }
        }
        MutationError::Durability(message) => Response::ServerError { message },
    }
}

/// Executes one decoded request. Search blocks on the batch executor; all
/// other ops run inline. `trace` is the request's span target when the
/// handler opened one (data-path ops while tracing is on).
fn dispatch(request: Request, ctx: &HandlerCtx, trace: Option<TraceCtx>) -> Response {
    match request {
        Request::Search { k, query } => {
            // Admission checks run against the state's immutable shape
            // metadata — no shard lock, and no merged snapshot just to
            // read dimensions.
            let admission_t0 = trace.map(|_| lt_obs::now_us());
            if let Err(e) = ctx.state.validate_search(query.len(), k as usize) {
                ctx.op_counters.rejected.fetch_add(1, Ordering::Relaxed);
                note_bad_request();
                return Response::BadRequest { message: e.to_string() };
            }
            if let (Some(t), Some(start_us)) = (&trace, admission_t0) {
                // Pushed before submit so every handler-side push strictly
                // precedes any executor-side push for this trace.
                t.push(Span {
                    stage: stage::ADMISSION,
                    shard: NO_SHARD,
                    start_us,
                    dur_us: lt_obs::now_us().saturating_sub(start_us),
                    items: 1,
                    reranked: 0,
                });
            }
            let (tx, rx) = mpsc::channel();
            let job =
                SearchJob { query, k: k as usize, enqueued: Instant::now(), reply: tx, trace };
            match ctx.queue.try_submit(job) {
                Ok(()) => match rx.recv() {
                    Ok(resp) => resp,
                    Err(_) => Response::ServerError { message: "executor dropped job".into() },
                },
                Err(SubmitError::Overloaded) => {
                    ctx.op_counters.rejected.fetch_add(1, Ordering::Relaxed);
                    if lt_obs::enabled() {
                        serve_obs().refused_overloaded.inc();
                    }
                    Response::Overloaded
                }
                Err(SubmitError::Closed) => {
                    Response::ServerError { message: "server shutting down".into() }
                }
            }
        }
        Request::Upsert { dim, rows } => {
            let dim = dim as usize;
            if dim == 0 || rows.is_empty() || rows.len() % dim != 0 {
                ctx.op_counters.rejected.fetch_add(1, Ordering::Relaxed);
                note_bad_request();
                return Response::BadRequest {
                    message: format!(
                        "upsert payload of {} floats is not a positive multiple of dim {dim}",
                        rows.len()
                    ),
                };
            }
            let matrix = Matrix::from_vec(rows.len() / dim, dim, rows);
            // Ambient trace target: state/WAL internals record
            // wal-append / fsync / apply spans against this request.
            let _guard = trace.map(lt_obs::trace::ambient_trace);
            match ctx.state.upsert(&matrix) {
                Ok(range) => {
                    ctx.op_counters.upserts.fetch_add(1, Ordering::Relaxed);
                    Response::Upsert { start: range.start as u64, end: range.end as u64 }
                }
                Err(e) => mutation_refusal(e, ctx),
            }
        }
        Request::Delete { id } => {
            let _guard = trace.map(lt_obs::trace::ambient_trace);
            match ctx.state.delete(id as usize) {
                Ok(moved) => {
                    ctx.op_counters.deletes.fetch_add(1, Ordering::Relaxed);
                    Response::Delete { moved: moved.map(|m| m as u64) }
                }
                Err(e) => mutation_refusal(e, ctx),
            }
        }
        Request::Stats => {
            // All served from metadata and lock-free mirrors: Stats never
            // merges a snapshot or takes a shard lock.
            let epoch = ctx.state.epoch();
            let route = ctx.state.route_params();
            Response::Stats(ServeStats {
                items: ctx.state.items(),
                dim: ctx.state.dim() as u32,
                num_codebooks: ctx.state.num_codebooks() as u32,
                num_codewords: ctx.state.num_codewords() as u32,
                epoch,
                searches: ctx.exec_counters.searches.load(Ordering::Relaxed),
                batches: ctx.exec_counters.batches.load(Ordering::Relaxed),
                rejected: ctx.op_counters.rejected.load(Ordering::Relaxed),
                upserts: ctx.op_counters.upserts.load(Ordering::Relaxed),
                deletes: ctx.op_counters.deletes.load(Ordering::Relaxed),
                snapshots: ctx.op_counters.snapshots.load(Ordering::Relaxed),
                queue_len: ctx.queue.len() as u64,
                max_queue_wait_us: ctx.exec_counters.max_queue_wait_us.load(Ordering::Relaxed),
                // In WAL mode the epoch is the seq of the last *logged*
                // mutation — durable under fsync=always, possibly still
                // unsynced under group/never; without a WAL there is no
                // sequence to report.
                wal_last_seq: if ctx.state.wal_enabled() { epoch } else { 0 },
                shards: ctx.state.num_shards() as u64,
                shard_items: ctx.state.shard_items(),
                route_nlist: route.map_or(0, |(nlist, _)| nlist as u64),
                route_nprobe: route.map_or(0, |(_, nprobe)| nprobe as u64),
            })
        }
        Request::Metrics => Response::Metrics {
            version: METRICS_VERSION,
            snapshot: lt_obs::Registry::global().snapshot(),
        },
        // Tail-sampled traces: the slowest-of-window reservoir plus the
        // uniform 1-in-K sample, already finished and sorted.
        Request::Traces => Response::Traces { traces: lt_obs::sampled_traces() },
        Request::Snapshot => {
            let written = if ctx.state.wal_enabled() {
                Some(ctx.state.write_durable_snapshot())
            } else {
                ctx.snapshot_path.as_ref().map(|path| ctx.state.write_snapshot(path))
            };
            match written {
                Some(Ok(epoch)) => {
                    ctx.op_counters.snapshots.fetch_add(1, Ordering::Relaxed);
                    Response::Snapshot { epoch }
                }
                Some(Err(e)) => {
                    Response::ServerError { message: format!("snapshot failed: {e}") }
                }
                None => {
                    note_bad_request();
                    Response::BadRequest { message: "server has no snapshot path".into() }
                }
            }
        }
        Request::Shutdown => {
            // Flag only; the owner (CLI main / test harness) observes it
            // via `wait_for_stop` and runs the full join sequence.
            ctx.stop.store(true, Ordering::SeqCst);
            ctx.queue.close();
            Response::Shutdown
        }
    }
}

impl Server {
    /// Blocks until a client's `Shutdown` request (or [`Server::shutdown`]
    /// from another thread) sets the stop flag. Returns so the owner can
    /// call [`Server::shutdown`] for the join sequence.
    pub fn wait_for_stop(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Whether a stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}
