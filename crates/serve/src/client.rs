//! Blocking client for the lt-serve wire protocol.
//!
//! One [`ServeClient`] owns one TCP connection and reuses it across
//! requests (requests on a connection are strictly sequential:
//! write frame → read frame). For concurrent load, open one client per
//! thread — the server batches across connections.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Request, Response, ServeStats};

/// A request that did not produce its expected response.
#[derive(Debug)]
pub enum ServeError {
    /// Transport or framing failure (includes CRC mismatches).
    Io(io::Error),
    /// The server refused the request as malformed.
    BadRequest(String),
    /// The server's admission queue was full; retry later.
    Overloaded,
    /// The server reported an internal failure.
    Server(String),
    /// Protocol violation: a response of the wrong type for the request.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::Server(m) => write!(f, "server error: {m}"),
            ServeError::UnexpectedResponse(what) => {
                write!(f, "protocol violation: unexpected {what} response")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Blocking, connection-reusing client.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a server address.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Like [`ServeClient::connect`] but retries for up to `timeout`,
    /// for racing a just-spawned server's bind.
    ///
    /// # Errors
    /// Returns the final connect error once the deadline passes.
    pub fn connect_with_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// One request/response round trip on the reused connection.
    ///
    /// # Errors
    /// Transport failures only; typed server refusals are returned as `Ok`
    /// responses for the typed wrappers to interpret.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection mid-request",
            )),
        }
    }

    /// kNN search: `(id, score)` pairs, best first, scores bit-exact.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when admission refused the request;
    /// [`ServeError::BadRequest`] for malformed queries.
    pub fn search(&mut self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServeError> {
        let req = Request::Search { k: k as u32, query: query.to_vec() };
        match self.roundtrip(&req)? {
            Response::Search { hits } => Ok(hits),
            other => Err(refusal(other, "search")),
        }
    }

    /// Appends rows (row-major, `rows.len() % dim == 0`); returns the
    /// assigned id range `[start, end)`.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for shape errors.
    pub fn upsert(&mut self, dim: usize, rows: &[f32]) -> Result<(u64, u64), ServeError> {
        let req = Request::Upsert { dim: dim as u32, rows: rows.to_vec() };
        match self.roundtrip(&req)? {
            Response::Upsert { start, end } => Ok((start, end)),
            other => Err(refusal(other, "upsert")),
        }
    }

    /// Swap-removes an item; returns the id that moved into its slot.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for out-of-bounds ids.
    pub fn delete(&mut self, id: u64) -> Result<Option<u64>, ServeError> {
        match self.roundtrip(&Request::Delete { id })? {
            Response::Delete { moved } => Ok(moved),
            other => Err(refusal(other, "delete")),
        }
    }

    /// Server statistics snapshot.
    ///
    /// # Errors
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(refusal(other, "stats")),
        }
    }

    /// Full metrics snapshot: `(payload version, registry snapshot)`.
    /// A server with observability disabled still answers, with zeroed or
    /// absent series.
    ///
    /// # Errors
    /// Transport/protocol failures.
    pub fn metrics(&mut self) -> Result<(u32, lt_obs::Snapshot), ServeError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { version, snapshot } => Ok((version, snapshot)),
            other => Err(refusal(other, "metrics")),
        }
    }

    /// Forces a durable snapshot; returns the epoch it captured.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when the server has no snapshot path.
    pub fn snapshot(&mut self) -> Result<u64, ServeError> {
        match self.roundtrip(&Request::Snapshot)? {
            Response::Snapshot { epoch } => Ok(epoch),
            other => Err(refusal(other, "snapshot")),
        }
    }

    /// Asks the server to stop (acknowledged before the server exits).
    ///
    /// # Errors
    /// Transport/protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(refusal(other, "shutdown")),
        }
    }
}

/// Maps a typed refusal response to the matching [`ServeError`].
fn refusal(response: Response, expected: &'static str) -> ServeError {
    match response {
        Response::BadRequest { message } => ServeError::BadRequest(message),
        Response::Overloaded => ServeError::Overloaded,
        Response::ServerError { message } => ServeError::Server(message),
        _ => ServeError::UnexpectedResponse(expected),
    }
}
