//! Blocking client for the lt-serve wire protocol.
//!
//! One [`ServeClient`] owns one TCP connection and reuses it across
//! requests (requests on a connection are strictly sequential:
//! write frame → read frame). For concurrent load, open one client per
//! thread — the server batches across connections.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Request, Response, ServeStats};

/// A search result list plus the server-assigned trace id (`None` from
/// older or tracing-disabled servers).
pub type TracedHits = (Vec<(u64, f32)>, Option<u64>);

/// A request that did not produce its expected response.
#[derive(Debug)]
pub enum ServeError {
    /// Transport or framing failure (includes CRC mismatches).
    Io(io::Error),
    /// The server refused the request as malformed.
    BadRequest(String),
    /// The server's admission queue was full; retry later.
    Overloaded,
    /// The server reported an internal failure.
    Server(String),
    /// Protocol violation: a response of the wrong type for the request.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::Server(m) => write!(f, "server error: {m}"),
            ServeError::UnexpectedResponse(what) => {
                write!(f, "protocol violation: unexpected {what} response")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Blocking, connection-reusing client.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a server address.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Like [`ServeClient::connect`] but retries for up to `timeout`,
    /// for racing a just-spawned server's bind.
    ///
    /// # Errors
    /// Returns the final connect error once the deadline passes.
    pub fn connect_with_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// One request/response round trip on the reused connection.
    ///
    /// # Errors
    /// Transport failures only; typed server refusals are returned as `Ok`
    /// responses for the typed wrappers to interpret.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection mid-request",
            )),
        }
    }

    /// kNN search: `(id, score)` pairs, best first, scores bit-exact.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when admission refused the request;
    /// [`ServeError::BadRequest`] for malformed queries.
    pub fn search(&mut self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServeError> {
        self.search_traced(query, k).map(|(hits, _)| hits)
    }

    /// [`ServeClient::search`] plus the server-assigned trace id, when the
    /// server traced the request (`None` from older or tracing-disabled
    /// servers).
    ///
    /// # Errors
    /// Same as [`ServeClient::search`].
    pub fn search_traced(&mut self, query: &[f32], k: usize) -> Result<TracedHits, ServeError> {
        let req = Request::Search { k: k as u32, query: query.to_vec() };
        match self.roundtrip(&req)? {
            Response::Search { hits, trace_id } => Ok((hits, trace_id)),
            other => Err(refusal(other, "search")),
        }
    }

    /// Tail-sampled traces from the server's reservoir: the slowest
    /// traces of the current window plus a uniform sample.
    ///
    /// # Errors
    /// Transport/protocol failures.
    pub fn traces(&mut self) -> Result<Vec<lt_obs::trace::Trace>, ServeError> {
        match self.roundtrip(&Request::Traces)? {
            Response::Traces { traces } => Ok(traces),
            other => Err(refusal(other, "traces")),
        }
    }

    /// Appends rows (row-major, `rows.len() % dim == 0`); returns the
    /// assigned id range `[start, end)`.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for shape errors.
    pub fn upsert(&mut self, dim: usize, rows: &[f32]) -> Result<(u64, u64), ServeError> {
        let req = Request::Upsert { dim: dim as u32, rows: rows.to_vec() };
        match self.roundtrip(&req)? {
            Response::Upsert { start, end } => Ok((start, end)),
            other => Err(refusal(other, "upsert")),
        }
    }

    /// Swap-removes an item; returns the id that moved into its slot.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for out-of-bounds ids.
    pub fn delete(&mut self, id: u64) -> Result<Option<u64>, ServeError> {
        match self.roundtrip(&Request::Delete { id })? {
            Response::Delete { moved } => Ok(moved),
            other => Err(refusal(other, "delete")),
        }
    }

    /// Server statistics snapshot.
    ///
    /// # Errors
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(refusal(other, "stats")),
        }
    }

    /// Full metrics snapshot: `(payload version, registry snapshot)`.
    /// A server with observability disabled still answers, with zeroed or
    /// absent series.
    ///
    /// # Errors
    /// Transport/protocol failures.
    pub fn metrics(&mut self) -> Result<(u32, lt_obs::Snapshot), ServeError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { version, snapshot } => Ok((version, snapshot)),
            other => Err(refusal(other, "metrics")),
        }
    }

    /// Forces a durable snapshot; returns the epoch it captured.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when the server has no snapshot path.
    pub fn snapshot(&mut self) -> Result<u64, ServeError> {
        match self.roundtrip(&Request::Snapshot)? {
            Response::Snapshot { epoch } => Ok(epoch),
            other => Err(refusal(other, "snapshot")),
        }
    }

    /// Asks the server to stop (acknowledged before the server exits).
    ///
    /// # Errors
    /// Transport/protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(refusal(other, "shutdown")),
        }
    }
}

/// Maps a typed refusal response to the matching [`ServeError`].
fn refusal(response: Response, expected: &'static str) -> ServeError {
    match response {
        Response::BadRequest { message } => ServeError::BadRequest(message),
        Response::Overloaded => ServeError::Overloaded,
        Response::ServerError { message } => ServeError::Server(message),
        _ => ServeError::UnexpectedResponse(expected),
    }
}

/// Bounded retry-with-backoff settings for [`RetryClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per call (connect + request each count one).
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles per retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Total wall-clock budget per call; no retry starts past it.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            deadline: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): exponential,
    /// capped at `max_backoff`.
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.initial_backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

/// A [`ServeClient`] wrapper that rides out transient refusals: connect
/// failures (`ECONNREFUSED` while the server restarts) and `Overloaded`
/// responses are retried with exponential backoff under a total deadline,
/// reconnecting as needed.
///
/// Retry is idempotency-aware. `Overloaded` and connect-phase failures
/// always retry — the server guarantees the request was not applied.
/// A transport error *mid-request* retries only idempotent operations
/// (search, stats, metrics, snapshot): a mutation whose connection died
/// after the frame was sent may already be applied and acknowledged into
/// the WAL, and blindly retrying would apply it twice.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<ServeClient>,
}

impl RetryClient {
    /// Creates a lazily-connecting client for `addr` (e.g.
    /// `"127.0.0.1:7878"`). No I/O happens until the first call.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Self { addr: addr.into(), policy, conn: None }
    }

    /// Runs one operation with retries per the policy.
    fn call<T>(
        &mut self,
        idempotent: bool,
        mut op: impl FnMut(&mut ServeClient) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let started = std::time::Instant::now();
        let mut retry = 0u32;
        loop {
            let result = match &mut self.conn {
                Some(conn) => op(conn),
                None => match ServeClient::connect(self.addr.as_str()) {
                    Ok(mut conn) => {
                        let r = op(&mut conn);
                        self.conn = Some(conn);
                        r
                    }
                    // Connect-phase failure: nothing reached the server,
                    // so even mutations are safe to retry.
                    Err(e) => {
                        retry += 1;
                        if retry >= self.policy.max_attempts
                            || started.elapsed() >= self.policy.deadline
                        {
                            return Err(ServeError::Io(e));
                        }
                        std::thread::sleep(self.policy.backoff(retry));
                        continue;
                    }
                },
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let retryable = match &err {
                ServeError::Overloaded => true,
                ServeError::Io(_) => {
                    // The connection is in an unknown state; drop it so
                    // the next attempt reconnects.
                    self.conn = None;
                    idempotent
                }
                // Typed refusals are deterministic; retrying is pointless.
                _ => false,
            };
            retry += 1;
            if !retryable
                || retry >= self.policy.max_attempts
                || started.elapsed() >= self.policy.deadline
            {
                return Err(err);
            }
            std::thread::sleep(self.policy.backoff(retry));
        }
    }

    /// [`ServeClient::search`] with retries (idempotent).
    ///
    /// # Errors
    /// The final error once attempts or the deadline are exhausted.
    pub fn search(&mut self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServeError> {
        self.call(true, |c| c.search(query, k))
    }

    /// [`ServeClient::stats`] with retries (idempotent).
    ///
    /// # Errors
    /// The final error once attempts or the deadline are exhausted.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        self.call(true, |c| c.stats())
    }

    /// [`ServeClient::metrics`] with retries (idempotent).
    ///
    /// # Errors
    /// The final error once attempts or the deadline are exhausted.
    pub fn metrics(&mut self) -> Result<(u32, lt_obs::Snapshot), ServeError> {
        self.call(true, |c| c.metrics())
    }

    /// [`ServeClient::snapshot`] with retries (idempotent: re-snapshotting
    /// the same state rewrites the same image).
    ///
    /// # Errors
    /// The final error once attempts or the deadline are exhausted.
    pub fn snapshot(&mut self) -> Result<u64, ServeError> {
        self.call(true, |c| c.snapshot())
    }

    /// [`ServeClient::upsert`] with retries on `Overloaded` and
    /// connect-phase failures only (not idempotent: a mid-request
    /// transport error surfaces, since the rows may already be applied).
    ///
    /// # Errors
    /// The final error once attempts or the deadline are exhausted, or
    /// the first mid-request transport error.
    pub fn upsert(&mut self, dim: usize, rows: &[f32]) -> Result<(u64, u64), ServeError> {
        self.call(false, |c| c.upsert(dim, rows))
    }

    /// [`ServeClient::delete`] with retries on `Overloaded` and
    /// connect-phase failures only (not idempotent: swap-remove moves a
    /// different id once applied).
    ///
    /// # Errors
    /// The final error once attempts or the deadline are exhausted, or
    /// the first mid-request transport error.
    pub fn delete(&mut self, id: u64) -> Result<Option<u64>, ServeError> {
        self.call(false, |c| c.delete(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(45),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(45), "capped");
        assert_eq!(p.backoff(40), Duration::from_millis(45), "shift stays bounded");
    }

    #[test]
    fn exhausted_attempts_surface_the_connect_error() {
        // Nothing listens on a freshly bound-then-dropped port; the retry
        // loop must give up by attempt count, quickly.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(5),
        };
        let mut client = RetryClient::new(format!("127.0.0.1:{port}"), policy);
        let err = client.stats().unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "got {err:?}");
    }
}
