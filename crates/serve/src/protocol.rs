//! Length-prefixed binary wire protocol.
//!
//! Every message travels in one frame:
//!
//! ```text
//! ┌──────────────┬───────────────────┬──────────────────────┐
//! │ len: u32 LE  │ payload: len bytes│ crc32(payload): u32 LE│
//! └──────────────┴───────────────────┴──────────────────────┘
//! ```
//!
//! `len` counts only the payload. The CRC32 (IEEE, via
//! [`lightlt_core::checksum`]) is verified on receipt, so a corrupted or
//! desynchronized stream fails loudly instead of decoding garbage into a
//! query. Payloads are capped at [`MAX_FRAME_BYTES`] so a malformed length
//! field cannot drive an allocation of arbitrary size.
//!
//! The payload itself is a tagged little-endian encoding of [`Request`] /
//! [`Response`]; all integers are fixed-width LE, floats are IEEE-754 bit
//! patterns, strings are length-prefixed UTF-8.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use lightlt_core::checksum::crc32;
use lt_obs::trace::{Span, Trace};
use lt_obs::{HistogramSnapshot, MetricValue, Snapshot};

/// Hard cap on a frame payload (64 MiB): large enough for any realistic
/// upsert batch, small enough that a corrupt length field cannot OOM the
/// server.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// How long [`read_frame`] tolerates zero progress *inside* a frame before
/// giving up on the connection. Poll-style read timeouts (50 ms on the
/// server) are far shorter than this, so transient stalls — a TCP
/// retransmit, a slow sender mid-upsert — are retried internally instead
/// of surfacing and desynchronizing the stream.
pub const MID_FRAME_STALL: Duration = Duration::from_secs(5);

/// Operations a client can request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// kNN search: top-`k` over the current index snapshot.
    Search {
        /// Number of results requested (must be ≥ 1).
        k: u32,
        /// Query embedding; its length must equal the index dimension.
        query: Vec<f32>,
    },
    /// Append `rows` new embeddings (row-major, `rows.len() = n·dim`);
    /// the server encodes them online and they become visible to every
    /// search batch formed after the acknowledgement.
    Upsert {
        /// Dimensionality of each row.
        dim: u32,
        /// Row-major embedding data.
        rows: Vec<f32>,
    },
    /// Remove item `id` (swap-remove semantics: the last item moves into
    /// the freed slot; the response names the moved id).
    Delete {
        /// Id of the item to remove.
        id: u64,
    },
    /// Server/index statistics.
    Stats,
    /// Full observability snapshot: every metric in the server's lt-obs
    /// registry (versioned; see [`METRICS_VERSION`]).
    Metrics,
    /// Sampled request traces from the server's tail reservoir: the
    /// slowest complete traces of the current window plus a uniform
    /// sample, each with per-stage spans.
    Traces,
    /// Force a checksummed snapshot to disk now.
    Snapshot,
    /// Graceful shutdown: flush pending batches, write a final snapshot.
    Shutdown,
}

/// Version of the `Metrics` response encoding. Bump when the metric
/// payload layout changes; clients check this before interpreting the
/// snapshot.
pub const METRICS_VERSION: u32 = 1;

/// Server/index statistics reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Items currently indexed.
    pub items: u64,
    /// Embedding dimensionality.
    pub dim: u32,
    /// Number of codebooks `M`.
    pub num_codebooks: u32,
    /// Codewords per codebook `K`.
    pub num_codewords: u32,
    /// Mutation epoch (bumps on every upsert/delete).
    pub epoch: u64,
    /// Searches admitted into the queue so far.
    pub searches: u64,
    /// Batches executed so far.
    pub batches: u64,
    /// Searches rejected with `Overloaded`.
    pub rejected: u64,
    /// Upserted items so far.
    pub upserts: u64,
    /// Deleted items so far.
    pub deletes: u64,
    /// Snapshots written so far.
    pub snapshots: u64,
    /// Jobs sitting in the submission queue right now.
    pub queue_len: u64,
    /// Maximum queue wait observed by any drained search job, in
    /// microseconds. Appended after the twelve legacy fields; the decoder
    /// tolerates its absence (legacy 12-field payloads decode with 0), so
    /// the legacy `Stats` prefix stays byte-compatible.
    pub max_queue_wait_us: u64,
    /// Sequence number of the last WAL-logged mutation (0 when the server
    /// runs without a WAL). Appended after `max_queue_wait_us` with the
    /// same trailing-field tolerance: older payloads decode with 0.
    pub wal_last_seq: u64,
    /// Number of modulo-routed index shards serving searches (≥ 1 on any
    /// sharding-aware server). Appended after `wal_last_seq` with the same
    /// trailing-field tolerance: payloads from pre-sharding servers decode
    /// with 0, which clients read as "unknown / unsharded".
    pub shards: u64,
    /// Per-shard item counts, `shard_items.len() == shards` and summing to
    /// `items`. Encoded together with `shards` as one trailing unit; legacy
    /// payloads decode with an empty vector.
    pub shard_items: Vec<u64>,
    /// Coarse-routing partition count (0 = routing disabled / unknown).
    /// Encoded together with `route_nprobe` as one trailing unit after the
    /// sharding unit; legacy payloads decode with 0.
    pub route_nlist: u64,
    /// Partitions scanned per query when routing is enabled (0 otherwise).
    pub route_nprobe: u64,
}

/// Server replies.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Top-`k` hits, best first: `(item id, score)`.
    Search {
        /// `(id, score)` pairs, descending score.
        hits: Vec<(u64, f32)>,
        /// Server-assigned trace id for this request, present when request
        /// tracing is enabled. Encoded as a trailing field after the hit
        /// list: absent on the wire when `None`, so tracing-off payloads
        /// are byte-identical to the legacy layout and legacy payloads
        /// decode with `None`.
        trace_id: Option<u64>,
    },
    /// Ids assigned to the upserted rows: `start..end`.
    Upsert {
        /// First assigned id.
        start: u64,
        /// One past the last assigned id.
        end: u64,
    },
    /// Delete acknowledgement; `moved` is the id that was relocated into
    /// the freed slot (`None` when the last item was deleted).
    Delete {
        /// Id of the item that moved into the freed slot, if any.
        moved: Option<u64>,
    },
    /// Statistics snapshot.
    Stats(ServeStats),
    /// Observability registry snapshot.
    Metrics {
        /// Encoding version ([`METRICS_VERSION`] for this build).
        version: u32,
        /// Deterministic merged registry snapshot.
        snapshot: Snapshot,
    },
    /// Sampled request traces (slowest-of-window plus uniform sample).
    Traces {
        /// Complete traces, slowest first, then uniform samples.
        traces: Vec<Trace>,
    },
    /// Snapshot written; reports the epoch it captured.
    Snapshot {
        /// Mutation epoch the snapshot captured.
        epoch: u64,
    },
    /// Shutdown acknowledged; the server stops after this reply.
    Shutdown,
    /// The request was structurally valid but semantically rejected
    /// (dimension mismatch, `k == 0`, unknown id, empty index).
    BadRequest {
        /// Human-readable reason.
        message: String,
    },
    /// The submission queue is full; retry later. Admission control
    /// rejects instead of blocking, so the accept loop never stalls.
    Overloaded,
    /// The server failed internally (e.g. snapshot I/O error).
    ServerError {
        /// Human-readable reason.
        message: String,
    },
}

// ---- payload encoding helpers -------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Sequential little-endian reader over a payload slice.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() < n {
            return Err(format!("truncated payload: wanted {n} bytes, have {}", self.data.len()));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let bytes = self.take(n.checked_mul(4).ok_or("float count overflow")?)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))).collect())
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
    }

    fn finish(&self) -> Result<(), String> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after payload", self.data.len()))
        }
    }
}

// Request opcodes.
const OP_SEARCH: u8 = 1;
const OP_UPSERT: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_STATS: u8 = 4;
const OP_SNAPSHOT: u8 = 5;
const OP_SHUTDOWN: u8 = 6;
const OP_METRICS: u8 = 7;
const OP_TRACES: u8 = 8;

// Response opcodes.
const RE_SEARCH: u8 = 0x81;
const RE_UPSERT: u8 = 0x82;
const RE_DELETE: u8 = 0x83;
const RE_STATS: u8 = 0x84;
const RE_SNAPSHOT: u8 = 0x85;
const RE_SHUTDOWN: u8 = 0x86;
const RE_METRICS: u8 = 0x87;
const RE_TRACES: u8 = 0x88;
const RE_BAD_REQUEST: u8 = 0xE0;

// Metric-kind tags inside a `Metrics` payload.
const MK_COUNTER: u8 = 0;
const MK_GAUGE: u8 = 1;
const MK_HISTOGRAM: u8 = 2;

/// Sanity cap on decoded histogram bucket counts (the current layout has
/// [`lt_obs::NUM_BUCKETS`] = 64; the cap leaves room for future layouts
/// without letting a corrupt field drive a huge allocation).
const MAX_DECODED_BUCKETS: usize = 1024;

/// Sanity cap on the decoded per-shard item list (servers run a handful
/// of shards; the cap only guards against a corrupt count field).
const MAX_DECODED_SHARDS: usize = 1 << 16;

/// Sanity cap on decoded traces (the server reservoir holds ≤ 16; the cap
/// only guards against a corrupt count field).
const MAX_DECODED_TRACES: usize = 256;

/// Sanity cap on decoded spans per trace (the span arena holds ≤ 40 per
/// request; the cap only guards against a corrupt count field).
const MAX_DECODED_SPANS: usize = 4096;
const RE_OVERLOADED: u8 = 0xE1;
const RE_SERVER_ERROR: u8 = 0xE2;

/// Encodes a request payload (without framing).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Search { k, query } => {
            buf.push(OP_SEARCH);
            put_u32(&mut buf, *k);
            put_u32(&mut buf, query.len() as u32);
            for &v in query {
                put_f32(&mut buf, v);
            }
        }
        Request::Upsert { dim, rows } => {
            buf.push(OP_UPSERT);
            put_u32(&mut buf, *dim);
            put_u32(&mut buf, rows.len() as u32);
            for &v in rows {
                put_f32(&mut buf, v);
            }
        }
        Request::Delete { id } => {
            buf.push(OP_DELETE);
            put_u64(&mut buf, *id);
        }
        Request::Stats => buf.push(OP_STATS),
        Request::Metrics => buf.push(OP_METRICS),
        Request::Traces => buf.push(OP_TRACES),
        Request::Snapshot => buf.push(OP_SNAPSHOT),
        Request::Shutdown => buf.push(OP_SHUTDOWN),
    }
    buf
}

/// Decodes a request payload.
///
/// # Errors
/// Returns a message on an unknown opcode, truncation, or trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut c = Cursor { data: payload };
    let req = match c.u8()? {
        OP_SEARCH => {
            let k = c.u32()?;
            let dim = c.u32()? as usize;
            Request::Search { k, query: c.f32_vec(dim)? }
        }
        OP_UPSERT => {
            let dim = c.u32()?;
            let count = c.u32()? as usize;
            Request::Upsert { dim, rows: c.f32_vec(count)? }
        }
        OP_DELETE => Request::Delete { id: c.u64()? },
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics,
        OP_TRACES => Request::Traces,
        OP_SNAPSHOT => Request::Snapshot,
        OP_SHUTDOWN => Request::Shutdown,
        other => return Err(format!("unknown request opcode {other:#04x}")),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response payload (without framing).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Search { hits, trace_id } => {
            buf.push(RE_SEARCH);
            put_u32(&mut buf, hits.len() as u32);
            for &(id, score) in hits {
                put_u64(&mut buf, id);
                put_f32(&mut buf, score);
            }
            // Trailing field: omitted entirely when tracing is off, so the
            // payload stays byte-identical to the pre-tracing layout.
            if let Some(id) = trace_id {
                put_u64(&mut buf, *id);
            }
        }
        Response::Upsert { start, end } => {
            buf.push(RE_UPSERT);
            put_u64(&mut buf, *start);
            put_u64(&mut buf, *end);
        }
        Response::Delete { moved } => {
            buf.push(RE_DELETE);
            match moved {
                Some(id) => {
                    buf.push(1);
                    put_u64(&mut buf, *id);
                }
                None => buf.push(0),
            }
        }
        Response::Stats(s) => {
            buf.push(RE_STATS);
            put_u64(&mut buf, s.items);
            put_u32(&mut buf, s.dim);
            put_u32(&mut buf, s.num_codebooks);
            put_u32(&mut buf, s.num_codewords);
            put_u64(&mut buf, s.epoch);
            put_u64(&mut buf, s.searches);
            put_u64(&mut buf, s.batches);
            put_u64(&mut buf, s.rejected);
            put_u64(&mut buf, s.upserts);
            put_u64(&mut buf, s.deletes);
            put_u64(&mut buf, s.snapshots);
            put_u64(&mut buf, s.queue_len);
            put_u64(&mut buf, s.max_queue_wait_us);
            put_u64(&mut buf, s.wal_last_seq);
            put_u64(&mut buf, s.shards);
            put_u32(&mut buf, s.shard_items.len() as u32);
            for &n in &s.shard_items {
                put_u64(&mut buf, n);
            }
            put_u64(&mut buf, s.route_nlist);
            put_u64(&mut buf, s.route_nprobe);
        }
        Response::Metrics { version, snapshot } => {
            buf.push(RE_METRICS);
            put_u32(&mut buf, *version);
            put_u32(&mut buf, snapshot.metrics.len() as u32);
            for (name, value) in &snapshot.metrics {
                put_str(&mut buf, name);
                match value {
                    MetricValue::Counter(v) => {
                        buf.push(MK_COUNTER);
                        put_u64(&mut buf, *v);
                    }
                    MetricValue::Gauge(v) => {
                        buf.push(MK_GAUGE);
                        put_u64(&mut buf, *v as u64);
                    }
                    MetricValue::Histogram(h) => {
                        buf.push(MK_HISTOGRAM);
                        put_u64(&mut buf, h.count);
                        put_u64(&mut buf, h.sum);
                        put_u64(&mut buf, h.max);
                        put_u32(&mut buf, h.buckets.len() as u32);
                        for &b in &h.buckets {
                            put_u64(&mut buf, b);
                        }
                    }
                }
            }
        }
        Response::Traces { traces } => {
            buf.push(RE_TRACES);
            put_u32(&mut buf, traces.len() as u32);
            for t in traces {
                put_u64(&mut buf, t.id);
                put_u64(&mut buf, t.start_us);
                put_u64(&mut buf, t.total_us);
                match t.tail_q {
                    Some(q) => {
                        buf.push(1);
                        buf.push(q);
                    }
                    None => {
                        buf.push(0);
                        buf.push(0);
                    }
                }
                put_u32(&mut buf, t.spans.len() as u32);
                for s in &t.spans {
                    buf.push(s.stage);
                    put_u32(&mut buf, s.shard);
                    put_u64(&mut buf, s.start_us);
                    put_u64(&mut buf, s.dur_us);
                    put_u64(&mut buf, s.items);
                    put_u64(&mut buf, s.reranked);
                }
            }
        }
        Response::Snapshot { epoch } => {
            buf.push(RE_SNAPSHOT);
            put_u64(&mut buf, *epoch);
        }
        Response::Shutdown => buf.push(RE_SHUTDOWN),
        Response::BadRequest { message } => {
            buf.push(RE_BAD_REQUEST);
            put_str(&mut buf, message);
        }
        Response::Overloaded => buf.push(RE_OVERLOADED),
        Response::ServerError { message } => {
            buf.push(RE_SERVER_ERROR);
            put_str(&mut buf, message);
        }
    }
    buf
}

/// Decodes a response payload.
///
/// # Errors
/// Returns a message on an unknown opcode, truncation, or trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut c = Cursor { data: payload };
    let resp = match c.u8()? {
        RE_SEARCH => {
            let n = c.u32()? as usize;
            let mut hits = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let id = c.u64()?;
                let score = c.f32()?;
                hits.push((id, score));
            }
            // Trailing trace id: absent in payloads from tracing-off or
            // pre-tracing servers.
            let trace_id = if c.data.is_empty() { None } else { Some(c.u64()?) };
            Response::Search { hits, trace_id }
        }
        RE_UPSERT => Response::Upsert { start: c.u64()?, end: c.u64()? },
        RE_DELETE => {
            let moved = match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                other => return Err(format!("bad moved tag {other}")),
            };
            Response::Delete { moved }
        }
        RE_STATS => {
            let mut stats = ServeStats {
                items: c.u64()?,
                dim: c.u32()?,
                num_codebooks: c.u32()?,
                num_codewords: c.u32()?,
                epoch: c.u64()?,
                searches: c.u64()?,
                batches: c.u64()?,
                rejected: c.u64()?,
                upserts: c.u64()?,
                deletes: c.u64()?,
                snapshots: c.u64()?,
                queue_len: c.u64()?,
                max_queue_wait_us: 0,
                wal_last_seq: 0,
                shards: 0,
                shard_items: Vec::new(),
                route_nlist: 0,
                route_nprobe: 0,
            };
            // Trailing fields appended after the legacy layout: absent in
            // frames from older servers, so tolerate every prefix.
            if !c.data.is_empty() {
                stats.max_queue_wait_us = c.u64()?;
            }
            if !c.data.is_empty() {
                stats.wal_last_seq = c.u64()?;
            }
            if !c.data.is_empty() {
                stats.shards = c.u64()?;
                let n = c.u32()? as usize;
                if n > MAX_DECODED_SHARDS {
                    return Err(format!("shard count {n} exceeds cap"));
                }
                let mut shard_items = Vec::with_capacity(n);
                for _ in 0..n {
                    shard_items.push(c.u64()?);
                }
                stats.shard_items = shard_items;
            }
            if !c.data.is_empty() {
                stats.route_nlist = c.u64()?;
                stats.route_nprobe = c.u64()?;
            }
            Response::Stats(stats)
        }
        RE_METRICS => {
            let version = c.u32()?;
            let count = c.u32()? as usize;
            let mut metrics = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let name = c.str()?;
                let value = match c.u8()? {
                    MK_COUNTER => MetricValue::Counter(c.u64()?),
                    MK_GAUGE => MetricValue::Gauge(c.u64()? as i64),
                    MK_HISTOGRAM => {
                        let count = c.u64()?;
                        let sum = c.u64()?;
                        let max = c.u64()?;
                        let n = c.u32()? as usize;
                        if n > MAX_DECODED_BUCKETS {
                            return Err(format!("histogram bucket count {n} exceeds cap"));
                        }
                        let mut buckets = Vec::with_capacity(n);
                        for _ in 0..n {
                            buckets.push(c.u64()?);
                        }
                        MetricValue::Histogram(HistogramSnapshot { buckets, count, sum, max })
                    }
                    other => return Err(format!("unknown metric kind tag {other}")),
                };
                metrics.push((name, value));
            }
            Response::Metrics { version, snapshot: Snapshot { metrics } }
        }
        RE_TRACES => {
            let n = c.u32()? as usize;
            if n > MAX_DECODED_TRACES {
                return Err(format!("trace count {n} exceeds cap"));
            }
            let mut traces = Vec::with_capacity(n);
            for _ in 0..n {
                let id = c.u64()?;
                let start_us = c.u64()?;
                let total_us = c.u64()?;
                let has_tail_q = c.u8()?;
                let tail_q_raw = c.u8()?;
                let tail_q = match has_tail_q {
                    0 => None,
                    1 => Some(tail_q_raw),
                    other => return Err(format!("bad tail_q tag {other}")),
                };
                let nspans = c.u32()? as usize;
                if nspans > MAX_DECODED_SPANS {
                    return Err(format!("span count {nspans} exceeds cap"));
                }
                let mut spans = Vec::with_capacity(nspans);
                for _ in 0..nspans {
                    spans.push(Span {
                        stage: c.u8()?,
                        shard: c.u32()?,
                        start_us: c.u64()?,
                        dur_us: c.u64()?,
                        items: c.u64()?,
                        reranked: c.u64()?,
                    });
                }
                traces.push(Trace { id, start_us, total_us, tail_q, spans });
            }
            Response::Traces { traces }
        }
        RE_SNAPSHOT => Response::Snapshot { epoch: c.u64()? },
        RE_SHUTDOWN => Response::Shutdown,
        RE_BAD_REQUEST => Response::BadRequest { message: c.str()? },
        RE_OVERLOADED => Response::Overloaded,
        RE_SERVER_ERROR => Response::ServerError { message: c.str()? },
        other => return Err(format!("unknown response opcode {other:#04x}")),
    };
    c.finish()?;
    Ok(resp)
}

impl Request {
    /// Method form of [`encode_request`].
    pub fn encode(&self) -> Vec<u8> {
        encode_request(self)
    }

    /// Method form of [`decode_request`].
    ///
    /// # Errors
    /// See [`decode_request`].
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        decode_request(payload)
    }
}

impl Response {
    /// Method form of [`encode_response`].
    pub fn encode(&self) -> Vec<u8> {
        encode_response(self)
    }

    /// Method form of [`decode_response`].
    ///
    /// # Errors
    /// See [`decode_response`].
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        decode_response(payload)
    }
}

// ---- framing -------------------------------------------------------------

/// Writes one frame (length prefix + payload + CRC32) and flushes.
///
/// # Errors
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds cap {MAX_FRAME_BYTES}", payload.len()),
        ));
    }
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Fills `buf[got..]`, retrying `Interrupted` always and
/// `WouldBlock`/`TimedOut` until [`MID_FRAME_STALL`] passes with no
/// progress. Used only once a frame has started: a poll-style read timeout
/// must never abandon a partially consumed frame (the discarded bytes
/// would desynchronize the stream), so short stalls retry and only a
/// persistent one becomes a hard, connection-fatal error.
fn read_remaining<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    mut got: usize,
    what: &str,
) -> io::Result<()> {
    let mut last_progress = Instant::now();
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("eof inside {what}"),
                ))
            }
            Ok(n) => {
                got += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Deliberately NOT TimedOut/WouldBlock: callers treat those
                // as an idle poll tick, and this stream is no longer
                // resumable.
                if last_progress.elapsed() >= MID_FRAME_STALL {
                    return Err(io::Error::other(format!(
                        "connection stalled {}s inside {what}",
                        MID_FRAME_STALL.as_secs()
                    )));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame, verifying length cap and CRC32. Returns `Ok(None)` on
/// a clean EOF before the first header byte (peer closed between frames).
///
/// On a stream with a read timeout, `WouldBlock`/`TimedOut` escapes only
/// while **zero** bytes of the frame have been consumed (an idle poll
/// tick, safe to retry). Once the first header byte arrives the frame is
/// read to completion, retrying short stalls internally; a stall longer
/// than [`MID_FRAME_STALL`] is a hard error (kind `Other`), because the
/// partially consumed frame makes the stream unrecoverable.
///
/// # Errors
/// `InvalidData` on an oversized length field or CRC mismatch;
/// `UnexpectedEof` on mid-frame truncation; `Other` on a mid-frame stall;
/// other I/O errors as-is.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    // First byte: clean EOF and idle timeouts surface to the caller.
    let mut got = 0;
    while got == 0 {
        match r.read(&mut header) {
            Ok(0) => return Ok(None),
            Ok(n) => got = n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    read_remaining(r, &mut header, got, "frame header")?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_remaining(r, &mut payload, 0, "frame payload")?;
    let mut crc_bytes = [0u8; 4];
    read_remaining(r, &mut crc_bytes, 0, "frame checksum")?;
    let stored = u32::from_le_bytes(crc_bytes);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"),
        ));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Search { k: 10, query: vec![0.5, -1.25, 3.0] });
        roundtrip_request(Request::Upsert { dim: 2, rows: vec![1.0, 2.0, 3.0, 4.0] });
        roundtrip_request(Request::Delete { id: 42 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Snapshot);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Search { hits: vec![(7, 0.5), (3, -0.25)], trace_id: None });
        roundtrip_response(Response::Search { hits: vec![(7, 0.5)], trace_id: Some(42) });
        roundtrip_response(Response::Upsert { start: 100, end: 104 });
        roundtrip_response(Response::Delete { moved: Some(9) });
        roundtrip_response(Response::Delete { moved: None });
        roundtrip_response(Response::Stats(ServeStats {
            items: 10,
            dim: 6,
            num_codebooks: 3,
            num_codewords: 16,
            epoch: 2,
            searches: 5,
            batches: 3,
            rejected: 1,
            upserts: 4,
            deletes: 1,
            snapshots: 2,
            queue_len: 0,
            max_queue_wait_us: 1234,
            wal_last_seq: 9001,
            shards: 4,
            shard_items: vec![3, 3, 2, 2],
            route_nlist: 64,
            route_nprobe: 8,
        }));
        roundtrip_response(Response::Snapshot { epoch: 17 });
        roundtrip_response(Response::Shutdown);
        roundtrip_response(Response::BadRequest { message: "dim mismatch".into() });
        roundtrip_response(Response::Overloaded);
        roundtrip_response(Response::ServerError { message: "disk full".into() });
    }

    #[test]
    fn metrics_frames_roundtrip() {
        roundtrip_request(Request::Metrics);
        roundtrip_response(Response::Metrics { version: METRICS_VERSION, snapshot: Snapshot::default() });
        let snapshot = Snapshot {
            metrics: vec![
                ("serve.connections".into(), MetricValue::Gauge(-2)),
                (
                    "serve.queue_wait_us".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        buckets: (0..lt_obs::NUM_BUCKETS as u64).collect(),
                        count: 2016,
                        sum: 987654321,
                        max: u64::MAX,
                    }),
                ),
                ("serve.searches".into(), MetricValue::Counter(u64::MAX)),
            ],
        };
        roundtrip_response(Response::Metrics { version: METRICS_VERSION, snapshot });
    }

    #[test]
    fn metrics_encoding_is_deterministic() {
        // The acceptance bar: identical snapshots encode to identical
        // bytes, so cross-thread-width determinism is checkable bitwise.
        let snapshot = Snapshot {
            metrics: vec![(
                "scan.scan_us".into(),
                MetricValue::Histogram(HistogramSnapshot {
                    buckets: vec![0; lt_obs::NUM_BUCKETS],
                    count: 0,
                    sum: 0,
                    max: 0,
                }),
            )],
        };
        let a = encode_response(&Response::Metrics { version: 1, snapshot: snapshot.clone() });
        let b = encode_response(&Response::Metrics { version: 1, snapshot });
        assert_eq!(a, b);
    }

    #[test]
    fn legacy_stats_payload_without_queue_wait_still_decodes() {
        // Stats payloads from older servers lack one or more appended
        // trailing fields: strip them from a fresh encoding.
        let stats = ServeStats {
            items: 10,
            dim: 6,
            num_codebooks: 3,
            num_codewords: 16,
            epoch: 2,
            searches: 5,
            batches: 3,
            rejected: 1,
            upserts: 4,
            deletes: 1,
            snapshots: 2,
            queue_len: 0,
            max_queue_wait_us: 777,
            wal_last_seq: 55,
            shards: 2,
            shard_items: vec![6, 4],
            route_nlist: 16,
            route_nprobe: 4,
        };
        let full = encode_response(&Response::Stats(stats.clone()));
        // The routing unit: route_nlist + route_nprobe (two u64s).
        let route_tail = 16;
        // The sharding unit: shards (u64) + count (u32) + two u64 items.
        let shard_tail = 8 + 4 + 16;
        // Pre-routing server: route_nlist/route_nprobe default to 0.
        let mut legacy = full.clone();
        legacy.truncate(full.len() - route_tail);
        let decoded = decode_response(&legacy).unwrap();
        assert_eq!(
            decoded,
            Response::Stats(ServeStats { route_nlist: 0, route_nprobe: 0, ..stats.clone() })
        );
        // 14-field payload (pre-sharding server): shards/shard_items
        // default to 0/empty.
        let mut legacy = full.clone();
        legacy.truncate(full.len() - route_tail - shard_tail);
        let decoded = decode_response(&legacy).unwrap();
        assert_eq!(
            decoded,
            Response::Stats(ServeStats {
                shards: 0,
                shard_items: Vec::new(),
                route_nlist: 0,
                route_nprobe: 0,
                ..stats.clone()
            })
        );
        // 13-field payload (pre-WAL server): wal_last_seq also defaults.
        let mut legacy = full.clone();
        legacy.truncate(full.len() - route_tail - shard_tail - 8);
        let decoded = decode_response(&legacy).unwrap();
        assert_eq!(
            decoded,
            Response::Stats(ServeStats {
                wal_last_seq: 0,
                shards: 0,
                shard_items: Vec::new(),
                route_nlist: 0,
                route_nprobe: 0,
                ..stats.clone()
            })
        );
        // 12-field payload (pre-metrics server): every trailing field
        // defaults.
        let mut oldest = full.clone();
        oldest.truncate(full.len() - route_tail - shard_tail - 16);
        let decoded = decode_response(&oldest).unwrap();
        assert_eq!(
            decoded,
            Response::Stats(ServeStats {
                max_queue_wait_us: 0,
                wal_last_seq: 0,
                shards: 0,
                shard_items: Vec::new(),
                route_nlist: 0,
                route_nprobe: 0,
                ..stats.clone()
            }),
            "legacy payload must decode with the new fields defaulted"
        );
        // A partially present trailing field is still a decode error.
        let mut torn = full.clone();
        torn.truncate(full.len() - 3);
        assert!(decode_response(&torn).is_err());
        // So is a torn shard-items list (count says 2, only 1 present).
        let mut torn_items = full;
        torn_items.truncate(torn_items.len() - 8);
        assert!(decode_response(&torn_items).is_err());
    }

    #[test]
    fn search_trace_id_is_a_trailing_compatible_field() {
        // Tracing-off payloads are byte-identical to the pre-tracing
        // layout: `None` encodes to exactly the legacy bytes, and the
        // legacy bytes decode back to `None`.
        let hits = vec![(7u64, 0.5f32), (3, -0.25)];
        let off = encode_response(&Response::Search { hits: hits.clone(), trace_id: None });
        let on = encode_response(&Response::Search { hits: hits.clone(), trace_id: Some(99) });
        assert_eq!(on.len(), off.len() + 8, "trace id is one trailing u64");
        assert_eq!(&on[..off.len()], &off[..], "prefix identical to legacy layout");
        assert_eq!(
            decode_response(&off).unwrap(),
            Response::Search { hits: hits.clone(), trace_id: None }
        );
        assert_eq!(
            decode_response(&on).unwrap(),
            Response::Search { hits, trace_id: Some(99) }
        );
        // A torn trailing field is still a decode error.
        let mut torn = on;
        torn.truncate(torn.len() - 3);
        assert!(decode_response(&torn).is_err());
    }

    #[test]
    fn traces_frames_roundtrip() {
        roundtrip_request(Request::Traces);
        roundtrip_response(Response::Traces { traces: Vec::new() });
        let span = |stage, shard, start_us, dur_us| Span {
            stage,
            shard,
            start_us,
            dur_us,
            items: 1000,
            reranked: 32,
        };
        roundtrip_response(Response::Traces {
            traces: vec![
                Trace {
                    id: 7,
                    start_us: 100,
                    total_us: 250,
                    tail_q: Some(3),
                    spans: vec![span(1, u32::MAX, 100, 5), span(10, 0, 110, 80), span(10, 1, 111, 90)],
                },
                Trace { id: 9, start_us: 400, total_us: 30, tail_q: None, spans: Vec::new() },
            ],
        });
    }

    #[test]
    fn malformed_traces_payloads_rejected() {
        let good = encode_response(&Response::Traces {
            traces: vec![Trace { id: 1, start_us: 0, total_us: 5, tail_q: Some(0), spans: Vec::new() }],
        });
        // Truncated trace.
        assert!(decode_response(&good[..good.len() - 2]).is_err());
        // Corrupt tail_q tag.
        let mut bad_tag = good.clone();
        bad_tag[1 + 4 + 24] = 7;
        assert!(decode_response(&bad_tag).unwrap_err().contains("tail_q"));
        // Corrupt trace count drives the cap, not an allocation.
        let mut bad_count = good;
        bad_count[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_response(&bad_count).unwrap_err().contains("cap"));
    }

    #[test]
    fn malformed_metrics_payloads_rejected() {
        let snapshot = Snapshot {
            metrics: vec![("a".into(), MetricValue::Counter(1))],
        };
        let good = encode_response(&Response::Metrics { version: 1, snapshot });
        // Corrupt the metric-kind tag.
        let mut bad_kind = good.clone();
        let kind_at = good.len() - 9;
        bad_kind[kind_at] = 0x7F;
        assert!(decode_response(&bad_kind).unwrap_err().contains("metric kind"));
        // Truncated value.
        assert!(decode_response(&good[..good.len() - 2]).is_err());
    }

    #[test]
    fn score_bits_survive_the_wire() {
        // Exact bit patterns matter for the bitwise-identity guarantee.
        let tricky = [f32::MIN_POSITIVE, -0.0, 1.0 + f32::EPSILON, 1e-38];
        let resp = Response::Search {
            hits: tricky.iter().enumerate().map(|(i, &s)| (i as u64, s)).collect(),
            trace_id: None,
        };
        let decoded = decode_response(&encode_response(&resp)).unwrap();
        let Response::Search { hits, .. } = decoded else { panic!("wrong variant") };
        for ((_, a), &b) in hits.iter().zip(&tricky) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn frame_roundtrip_and_crc() {
        let payload = encode_request(&Request::Search { k: 3, query: vec![1.0, 2.0] });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
        // Clean EOF after a whole frame.
        assert!(read_frame(&mut r).unwrap().is_none());

        // A flipped payload bit must be caught by the CRC.
        let mut corrupt = wire.clone();
        corrupt[6] ^= 0x40;
        let err = read_frame(&mut &corrupt[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Mid-frame truncation is UnexpectedEof, not a hang or panic.
        let err = read_frame(&mut &wire[..wire.len() - 2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// Replays a scripted sequence of chunks and error kinds, so tests can
    /// interleave partial reads with poll timeouts deterministically.
    struct StutterReader {
        script: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Read for StutterReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                Some(Ok(chunk)) => {
                    assert!(chunk.len() <= buf.len(), "script chunk larger than read buffer");
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                Some(Err(kind)) => Err(io::Error::new(kind, "scripted error")),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn idle_timeout_surfaces_only_before_the_first_byte() {
        // A poll timeout with no frame bytes consumed is the caller's idle
        // tick: it must escape as-is so poll loops can re-check stop flags.
        let mut r = StutterReader { script: [Err(io::ErrorKind::WouldBlock)].into() };
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn mid_frame_timeouts_are_retried_not_desynchronizing() {
        // Timeouts after the first byte must be retried internally: the
        // old behavior (surface, caller discards partial bytes, re-reads a
        // header) parsed leftover frame bytes as a new header.
        let payload = encode_request(&Request::Search { k: 3, query: vec![1.0, 2.0] });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut script: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>> =
            std::collections::VecDeque::new();
        // One header byte, then stalls sprinkled between single-byte reads.
        for (i, &b) in wire.iter().enumerate() {
            if i % 2 == 1 {
                script.push_back(Err(io::ErrorKind::WouldBlock));
                script.push_back(Err(io::ErrorKind::TimedOut));
            }
            script.push_back(Ok(vec![b]));
        }
        let mut r = StutterReader { script };
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
    }

    #[test]
    fn oversized_length_field_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0xFF]).is_err());
        assert!(decode_response(&[0x07]).is_err());
        // Truncated search request.
        let mut payload = encode_request(&Request::Search { k: 1, query: vec![1.0, 2.0] });
        payload.truncate(payload.len() - 3);
        assert!(decode_request(&payload).is_err());
        // Trailing garbage.
        let mut payload = encode_request(&Request::Stats);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
    }
}
