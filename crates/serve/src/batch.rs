//! Micro-batching executor: bounded submission queue + size-or-deadline
//! batch formation.
//!
//! Search requests are decoupled from their connections: connection
//! handlers enqueue a [`SearchJob`] (query + reply channel) into a bounded
//! [`SubmitQueue`] and block on the reply. A single executor thread forms
//! batches with a **size-or-deadline** trigger: it drains the queue only
//! once `max_batch` jobs are waiting **or** the oldest job has waited
//! `max_delay`, whichever comes first. Jobs stay in the queue until the
//! trigger fires, so queue length is exactly "requests admitted but not
//! yet executing" — which makes admission control (and the overload tests)
//! deterministic.
//!
//! Each drained batch is executed against one immutable index snapshot via
//! `adc_search_batch`, which the core test-suite pins as bitwise identical
//! to per-query `adc_search`. Batching therefore changes throughput
//! (GEMM-amortized LUT construction, one thread-pool hand-off per batch
//! instead of per request) but never results.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use lightlt_core::index::QuantizedIndex;
use lightlt_core::search::{
    adc_scan_shards_topk_traced, adc_search_batch_with_backend_traced, merge_shard_topk,
};
use lt_linalg::scan::ScanBackend;
use lt_linalg::Matrix;
use lt_obs::trace::{stage, Span, SpanSink, TraceCtx, ALL_QUERIES, NO_SHARD};
use lt_obs::{Counter, Gauge, Histogram};

use crate::protocol::Response;
use crate::state::IndexState;

/// Serve-side metric handles, resolved once and cached for the process.
///
/// Grouped in one struct so hot paths pay a single `OnceLock` load rather
/// than one registry lookup per metric. All counters/histograms are no-ops
/// while the global toggle is off, so callers don't need to re-gate simple
/// `record`/`inc` calls — only wrap the `Instant::now()` timing itself.
pub(crate) struct ServeObs {
    /// Age of each job (submit → drain) when its batch is formed.
    pub queue_wait_us: Arc<Histogram>,
    /// Jobs per executed batch.
    pub batch_size: Arc<Histogram>,
    /// Wall time of one `execute_batch` call (all k-groups).
    pub batch_exec_us: Arc<Histogram>,
    /// Per-request submit → reply-sent latency.
    pub service_us: Arc<Histogram>,
    /// `service_us` split by the head/tail quartile of the request's
    /// top-1 result partition (routed executors only): `q0` is the head
    /// (largest) quarter of partitions, `q3` the tail.
    pub service_us_q: [Arc<Histogram>; 4],
    /// Wall time of one snapshot write.
    pub snapshot_us: Arc<Histogram>,
    /// Wall time folding per-shard top-k candidates into the global
    /// answer (sharded executor only; one record per k-group).
    pub shard_merge_us: Arc<Histogram>,
    /// Searches refused with `Overloaded`.
    pub refused_overloaded: Arc<Counter>,
    /// Requests answered with `BadRequest`.
    pub refused_bad_request: Arc<Counter>,
    /// Currently open client connections.
    pub connections: Arc<Gauge>,
}

pub(crate) fn serve_obs() -> &'static ServeObs {
    static OBS: OnceLock<ServeObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = lt_obs::Registry::global();
        ServeObs {
            queue_wait_us: r.histogram("serve.queue_wait_us"),
            batch_size: r.histogram("serve.batch_size"),
            batch_exec_us: r.histogram("serve.batch_exec_us"),
            service_us: r.histogram("serve.service_us"),
            service_us_q: std::array::from_fn(|q| r.histogram(&format!("serve.service_us_q{q}"))),
            snapshot_us: r.histogram("serve.snapshot_us"),
            shard_merge_us: r.histogram("serve.shard_merge_us"),
            refused_overloaded: r.counter("serve.refused_overloaded"),
            refused_bad_request: r.counter("serve.refused_bad_request"),
            connections: r.gauge("serve.connections"),
        }
    })
}

/// One admitted search request waiting for execution.
pub struct SearchJob {
    pub query: Vec<f32>,
    pub k: usize,
    pub enqueued: Instant,
    pub reply: mpsc::Sender<Response>,
    /// Trace handle when the request is being traced. The executor pushes
    /// every span **before** sending the reply — the connection handler
    /// finishes the trace after writing the wire frame, and late pushes
    /// against a finished trace are dropped by the arena's id guard.
    pub trace: Option<TraceCtx>,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity: the caller should answer `Overloaded`.
    Overloaded,
    /// Server shutting down: no new work is accepted.
    Closed,
}

struct QueueInner {
    jobs: VecDeque<SearchJob>,
    closed: bool,
}

/// Bounded MPSC queue between connection handlers and the executor.
pub struct SubmitQueue {
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
    cap: usize,
}

impl SubmitQueue {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "submission queue capacity must be positive");
        Self {
            inner: Mutex::new(QueueInner { jobs: VecDeque::new(), closed: false }),
            nonempty: Condvar::new(),
            cap,
        }
    }

    /// Admission control: enqueues the job or refuses immediately.
    /// Never blocks, so the accept/reader path cannot stall on a slow
    /// executor.
    pub fn try_submit(&self, job: SearchJob) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.jobs.len() >= self.cap {
            return Err(SubmitError::Overloaded);
        }
        inner.jobs.push_back(job);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Requests admitted but not yet draining into a batch.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops admission and wakes the executor so it can flush and exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        self.nonempty.notify_all();
    }
}

/// Throughput/latency counters shared between the executor and the stats
/// endpoint.
#[derive(Debug, Default)]
pub struct ExecCounters {
    /// Queries executed.
    pub searches: AtomicU64,
    /// Batches formed (drain cycles that executed at least one query).
    pub batches: AtomicU64,
    /// Largest observed submit → drain age in microseconds. Maintained
    /// with `fetch_max` even when lt-obs is disabled, because `Stats`
    /// reports it unconditionally.
    pub max_queue_wait_us: AtomicU64,
}

/// Per-shard executor metric handles, resolved once per executor (the
/// shard count is fixed for the process lifetime). Counter bumps are
/// internally gated on the global toggle, so with observability off each
/// one collapses to a single relaxed load.
pub(crate) struct ShardObs {
    /// `serve.shard_scans.<i>` — queries scanned against shard `i`.
    scans: Vec<Arc<Counter>>,
}

impl ShardObs {
    pub(crate) fn new(num_shards: usize) -> Self {
        let r = lt_obs::Registry::global();
        Self {
            scans: (0..num_shards)
                .map(|i| r.counter(&format!("serve.shard_scans.{i}")))
                .collect(),
        }
    }
}

/// Executor loop. Runs until `stop` is set **and** the queue has been
/// flushed; on shutdown every admitted job still gets a response (sends to
/// hung-up clients are ignored).
pub fn run_executor(
    queue: &SubmitQueue,
    state: &IndexState,
    backend: &dyn ScanBackend,
    max_batch: usize,
    max_delay: Duration,
    stop: &AtomicBool,
    counters: &ExecCounters,
) {
    let max_batch = max_batch.max(1);
    let shard_obs = ShardObs::new(state.num_shards());
    loop {
        let batch = next_batch(queue, max_batch, max_delay, stop);
        if batch.is_empty() {
            // Only returned empty when stopping with a flushed queue.
            debug_assert!(stop.load(Ordering::SeqCst));
            return;
        }
        execute_batch(state, backend, batch, counters, &shard_obs);
    }
}

/// Blocks until the size-or-deadline trigger fires, then drains at most
/// `max_batch` jobs. Returns an empty vec only when stopping and flushed.
fn next_batch(
    queue: &SubmitQueue,
    max_batch: usize,
    max_delay: Duration,
    stop: &AtomicBool,
) -> Vec<SearchJob> {
    let mut inner = queue.inner.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let stopping = stop.load(Ordering::SeqCst) || inner.closed;
        if stopping {
            // Flush: drain whatever is left, batch by batch.
            let take = inner.jobs.len().min(max_batch);
            return inner.jobs.drain(..take).collect();
        }
        if inner.jobs.len() >= max_batch {
            return inner.jobs.drain(..max_batch).collect();
        }
        if let Some(oldest) = inner.jobs.front() {
            let age = oldest.enqueued.elapsed();
            if age >= max_delay {
                let take = inner.jobs.len().min(max_batch);
                return inner.jobs.drain(..take).collect();
            }
            // Sleep until the deadline, capped so a set `stop` flag is
            // noticed promptly even if its notify raced with this wait.
            let wait = (max_delay - age).min(Duration::from_millis(50));
            let (guard, _) = queue
                .nonempty
                .wait_timeout(inner, wait)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        } else {
            let (guard, _) = queue
                .nonempty
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }
}

/// Executes one drained batch against a single snapshot set and replies
/// to every job.
fn execute_batch(
    state: &IndexState,
    backend: &dyn ScanBackend,
    batch: Vec<SearchJob>,
    counters: &ExecCounters,
    shard_obs: &ShardObs,
) {
    // One snapshot set for the whole batch: all queries in it observe the
    // same cross-shard-consistent epoch, and mutations acknowledged before
    // batch formation are visible. With one shard this is a plain Arc
    // clone of the unsharded index. With routing enabled the routed
    // overlay (its own COW cell, mutated in lockstep under the same
    // mutation mutex) replaces the shard scan entirely.
    let route = state.route_view();
    let shards = if route.is_some() { Vec::new() } else { state.shard_snapshots() };
    let dim = state.dim();
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters.searches.fetch_add(batch.len() as u64, Ordering::Relaxed);

    // Queue wait is measured at drain time: how long each admitted job sat
    // in the queue before its batch formed. The `Stats` maximum is tracked
    // unconditionally; the histogram only when observability is on.
    let observe = lt_obs::enabled() || lt_obs::events_enabled();
    let obs = lt_obs::enabled().then(serve_obs);
    let any_traced = batch.iter().any(|j| j.trace.is_some());
    let form_t0 = any_traced.then(lt_obs::now_us);
    for job in &batch {
        let waited = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
        counters.max_queue_wait_us.fetch_max(waited, Ordering::Relaxed);
        if let Some(o) = obs {
            o.queue_wait_us.record(waited);
        }
        // Queue span: reconstructed backwards from the drain instant so no
        // clock read is needed at submit time.
        if let Some(ctx) = &job.trace {
            let now = lt_obs::now_us();
            ctx.push(Span {
                stage: stage::QUEUE,
                shard: NO_SHARD,
                start_us: now.saturating_sub(waited),
                dur_us: waited,
                items: 1,
                reranked: 0,
            });
        }
    }
    if let Some(o) = obs {
        o.batch_size.record(batch.len() as u64);
    }
    let exec_t0 = observe.then(Instant::now);
    let batch_len = batch.len();

    // Jobs may carry different k; adc_search_batch takes one k per call,
    // so group by k (stable: queue order preserved within each group).
    let mut groups: Vec<(usize, Vec<SearchJob>)> = Vec::new();
    for job in batch {
        match groups.iter_mut().find(|(k, _)| *k == job.k) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((job.k, vec![job])),
        }
    }
    if let Some(start_us) = form_t0 {
        let dur_us = lt_obs::now_us().saturating_sub(start_us);
        let span = Span {
            stage: stage::BATCH_FORM,
            shard: NO_SHARD,
            start_us,
            dur_us,
            items: batch_len as u64,
            reranked: 0,
        };
        for (_, jobs) in &groups {
            for job in jobs {
                if let Some(ctx) = &job.trace {
                    ctx.push(span);
                }
            }
        }
    }

    for (k, jobs) in groups {
        let mut data = Vec::with_capacity(jobs.len() * dim);
        for job in &jobs {
            debug_assert_eq!(job.query.len(), dim, "handler must validate dim before submit");
            data.extend_from_slice(&job.query);
        }
        let queries = Matrix::from_vec(jobs.len(), dim, data);
        if route.is_none() {
            for scans in &shard_obs.scans {
                scans.add(queries.rows() as u64);
            }
        }
        // One span sink per k-group: core/backend stages tag spans with the
        // query's row index (or ALL_QUERIES for batch-wide work such as LUT
        // construction), and the fan-out below routes each span to the
        // owning job's trace. Sized for the worst case (lut-build + spans
        // per query) so pushes never drop under normal probe counts.
        let group_traced = jobs.iter().any(|j| j.trace.is_some());
        let sink = group_traced.then(|| SpanSink::new(64 + 24 * jobs.len()));
        let results = if let Some((routed, nprobe)) = &route {
            // Non-exhaustive: rank centroids, scan the top-nprobe
            // partitions through the same backend. At nprobe == nlist
            // this is pinned bitwise identical to the exhaustive scan.
            routed.search_batch_traced(backend, &queries, k, *nprobe, sink.as_ref())
        } else if shards.len() == 1 {
            // Single shard: the exact unsharded path (same calls, same
            // bits) — sharding must never perturb the degenerate case.
            adc_search_batch_with_backend_traced(&shards[0], backend, &queries, k, sink.as_ref())
        } else {
            // Scan each shard on the pool, then fold per query in fixed
            // shard order; the core suite pins the merged results bitwise
            // identical to an unsharded scan at any shard/thread count.
            let refs: Vec<&QuantizedIndex> = shards.iter().map(|a| a.as_ref()).collect();
            let parts = adc_scan_shards_topk_traced(&refs, backend, &queries, k, sink.as_ref());
            let merge_t0 = observe.then(Instant::now);
            let merge_us0 = sink.is_some().then(lt_obs::now_us);
            let merged = merge_shard_topk(&parts, queries.rows(), k);
            if let (Some(t0), Some(o)) = (merge_t0, obs) {
                o.shard_merge_us.record(lt_obs::micros_since(t0));
            }
            if let (Some(sink), Some(start_us)) = (sink.as_ref(), merge_us0) {
                sink.push(
                    ALL_QUERIES,
                    Span {
                        stage: stage::MERGE,
                        shard: NO_SHARD,
                        start_us,
                        dur_us: lt_obs::now_us().saturating_sub(start_us),
                        items: (shards.len() * queries.rows() * k) as u64,
                        reranked: 0,
                    },
                );
            }
            merged
        };
        // Fan the collected spans out to the owning traces: batch-wide
        // spans (ALL_QUERIES) go to every traced job in the group,
        // query-tagged spans to that row's job.
        if let Some(sink) = &sink {
            for (q, span) in sink.collect() {
                if q == ALL_QUERIES {
                    for job in &jobs {
                        if let Some(ctx) = &job.trace {
                            ctx.push(span);
                        }
                    }
                } else if let Some(ctx) = jobs.get(q as usize).and_then(|j| j.trace.as_ref()) {
                    ctx.push(span);
                }
            }
        }
        // Tail-class attribution (routed only): tag each traced request
        // with the head/tail quartile of its top-1 result's partition.
        let quartiles = match (&route, group_traced) {
            (Some((routed, _)), true) => Some(routed.partition_quartiles()),
            _ => None,
        };
        for (job, scored) in jobs.into_iter().zip(results) {
            let served_quartile = match (&job.trace, &route, &quartiles) {
                (Some(ctx), Some((routed, _)), Some(quartiles)) => {
                    scored.first().map(|top| {
                        let q = quartiles[routed.partition_of(top.index)];
                        ctx.set_tail_q(q);
                        q
                    })
                }
                _ => None,
            };
            let hits = scored.iter().map(|s| (s.index as u64, s.score)).collect();
            let trace_id = job.trace.as_ref().map(|t| t.id());
            // A hung-up client just discards its answer.
            let _ = job.reply.send(Response::Search { hits, trace_id });
            if let Some(o) = obs {
                // Submit → reply-sent: queue wait plus execution share.
                let served = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
                o.service_us.record(served);
                if let Some(q) = served_quartile {
                    o.service_us_q[q as usize].record(served);
                }
            }
        }
    }

    if let Some(t0) = exec_t0 {
        let micros = lt_obs::micros_since(t0);
        if let Some(o) = obs {
            o.batch_exec_us.record(micros);
        }
        lt_obs::emit(&lt_obs::Event::BatchExecute { batch: batch_len as u64, micros });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use lightlt_core::config::CodebookTopology;
    use lightlt_core::dsq::Dsq;
    use lightlt_core::index::QuantizedIndex;
    use lightlt_core::search::adc_search;
    use lt_linalg::random::{randn, rng};
    use lt_linalg::scan::BackendKind;
    use lt_linalg::Metric;
    use lt_tensor::ParamStore;

    fn build_index(n: usize, seed: u64) -> QuantizedIndex {
        let mut store = ParamStore::new();
        let mut r = rng(seed);
        let dsq = Dsq::new(
            &mut store,
            3,
            16,
            8,
            12,
            CodebookTopology::DoubleSkip,
            0.1,
            Metric::NegSquaredL2,
            &mut r,
        );
        let db = randn(n, 8, &mut rng(seed + 1)).scale(0.4);
        QuantizedIndex::build(&dsq, &store, &db)
    }

    fn build_state(n: usize, seed: u64) -> IndexState {
        IndexState::new(build_index(n, seed))
    }

    fn job(query: Vec<f32>, k: usize) -> (SearchJob, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (SearchJob { query, k, enqueued: Instant::now(), reply: tx, trace: None }, rx)
    }

    fn spawn_executor(
        queue: Arc<SubmitQueue>,
        state: Arc<IndexState>,
        max_batch: usize,
        max_delay: Duration,
        stop: Arc<AtomicBool>,
        counters: Arc<ExecCounters>,
    ) -> std::thread::JoinHandle<()> {
        spawn_executor_with(queue, state, BackendKind::F32, max_batch, max_delay, stop, counters)
    }

    fn spawn_executor_with(
        queue: Arc<SubmitQueue>,
        state: Arc<IndexState>,
        backend: BackendKind,
        max_batch: usize,
        max_delay: Duration,
        stop: Arc<AtomicBool>,
        counters: Arc<ExecCounters>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let backend = backend.create();
            run_executor(&queue, &state, backend.as_ref(), max_batch, max_delay, &stop, &counters)
        })
    }

    #[test]
    fn admission_is_bounded_and_closable() {
        let queue = SubmitQueue::new(2);
        let (j1, _r1) = job(vec![0.0; 8], 3);
        let (j2, _r2) = job(vec![0.0; 8], 3);
        let (j3, _r3) = job(vec![0.0; 8], 3);
        assert!(queue.try_submit(j1).is_ok());
        assert!(queue.try_submit(j2).is_ok());
        assert_eq!(queue.try_submit(j3).unwrap_err(), SubmitError::Overloaded);
        assert_eq!(queue.len(), 2);
        queue.close();
        let (j4, _r4) = job(vec![0.0; 8], 3);
        assert_eq!(queue.try_submit(j4).unwrap_err(), SubmitError::Closed);
    }

    #[test]
    fn batched_execution_is_bitwise_identical_to_adc_search() {
        let state = Arc::new(build_state(200, 7));
        let queue = Arc::new(SubmitQueue::new(64));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ExecCounters::default());
        let handle = spawn_executor(
            queue.clone(),
            state.clone(),
            4,
            Duration::from_millis(5),
            stop.clone(),
            counters.clone(),
        );

        let mut queries = Vec::new();
        let mut receivers = Vec::new();
        let qmat = randn(10, 8, &mut rng(99)).scale(0.3);
        for i in 0..10 {
            let q = qmat.row(i).to_vec();
            // Mixed k values exercise the group-by-k path.
            let k = if i % 3 == 0 { 7 } else { 5 };
            let (j, rx) = job(q.clone(), k);
            queries.push((q, k));
            receivers.push(rx);
            queue.try_submit(j).unwrap();
        }

        let snapshot = state.snapshot();
        for ((q, k), rx) in queries.iter().zip(receivers) {
            let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            let expected = adc_search(&snapshot, q, *k);
            match resp {
                Response::Search { hits, .. } => {
                    assert_eq!(hits.len(), expected.len());
                    for (h, e) in hits.iter().zip(&expected) {
                        assert_eq!(h.0, e.index as u64);
                        assert_eq!(h.1.to_bits(), e.score.to_bits());
                    }
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(counters.searches.load(Ordering::Relaxed), 10);
        assert!(counters.batches.load(Ordering::Relaxed) >= 3);

        stop.store(true, Ordering::SeqCst);
        queue.close();
        handle.join().unwrap();
    }

    #[test]
    fn sharded_execution_is_bitwise_identical_to_unsharded() {
        // The same queries through a 4-shard executor must reproduce the
        // unsharded per-query search bit for bit, including after online
        // mutations.
        let index = build_index(120, 11);
        let state = Arc::new(IndexState::new_sharded(index.clone(), 4));
        let mut mirror = index;
        let rows = randn(5, 8, &mut rng(111)).scale(0.4);
        state.upsert(&rows).unwrap();
        mirror.append(&rows);
        state.delete(7).unwrap();
        mirror.swap_remove(7);

        let queue = Arc::new(SubmitQueue::new(64));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ExecCounters::default());
        let handle = spawn_executor(
            queue.clone(),
            state.clone(),
            4,
            Duration::from_millis(5),
            stop.clone(),
            counters.clone(),
        );

        let qmat = randn(9, 8, &mut rng(112)).scale(0.3);
        let mut expectations = Vec::new();
        for i in 0..9 {
            let q = qmat.row(i).to_vec();
            // Mixed k, including k past the index size.
            let k = [5, 9, 1000][i % 3];
            let (j, rx) = job(q.clone(), k);
            expectations.push((q, k, rx));
            queue.try_submit(j).unwrap();
        }
        for (q, k, rx) in expectations {
            let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            let expected = adc_search(&mirror, &q, k);
            match resp {
                Response::Search { hits, .. } => {
                    assert_eq!(hits.len(), expected.len());
                    for (h, e) in hits.iter().zip(&expected) {
                        assert_eq!(h.0, e.index as u64, "k={k}");
                        assert_eq!(h.1.to_bits(), e.score.to_bits(), "k={k}");
                    }
                }
                other => panic!("unexpected response {other:?}"),
            }
        }

        stop.store(true, Ordering::SeqCst);
        queue.close();
        handle.join().unwrap();
    }

    #[test]
    fn deadline_trigger_fires_for_partial_batches() {
        let state = Arc::new(build_state(50, 8));
        let queue = Arc::new(SubmitQueue::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ExecCounters::default());
        // max_batch far above what we submit: only the deadline can fire.
        let handle = spawn_executor(
            queue.clone(),
            state.clone(),
            1024,
            Duration::from_millis(10),
            stop.clone(),
            counters.clone(),
        );
        let (j, rx) = job(vec![0.05; 8], 3);
        queue.try_submit(j).unwrap();
        let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(resp, Response::Search { .. }));

        stop.store(true, Ordering::SeqCst);
        queue.close();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_flushes_admitted_jobs() {
        let state = Arc::new(build_state(50, 9));
        let queue = Arc::new(SubmitQueue::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ExecCounters::default());
        // Huge deadline and batch: nothing can trigger except shutdown.
        let mut receivers = Vec::new();
        for _ in 0..5 {
            let (j, rx) = job(vec![0.02; 8], 2);
            queue.try_submit(j).unwrap();
            receivers.push(rx);
        }
        let handle = spawn_executor(
            queue.clone(),
            state,
            1024,
            Duration::from_secs(3600),
            stop.clone(),
            counters.clone(),
        );
        stop.store(true, Ordering::SeqCst);
        queue.close();
        handle.join().unwrap();
        for rx in receivers {
            assert!(matches!(rx.try_recv().unwrap(), Response::Search { .. }));
        }
        assert_eq!(counters.searches.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn u8_backend_with_full_rerank_matches_f32_executor_bitwise() {
        // A u8 executor whose rerank depth covers the whole index must
        // reproduce the exact f32 search bit for bit — sharded included.
        for shards in [1usize, 4] {
            let index = build_index(150, 21);
            let state = Arc::new(IndexState::new_sharded(index.clone(), shards));
            let queue = Arc::new(SubmitQueue::new(64));
            let stop = Arc::new(AtomicBool::new(false));
            let counters = Arc::new(ExecCounters::default());
            let handle = spawn_executor_with(
                queue.clone(),
                state.clone(),
                BackendKind::U8 { rerank: Some(usize::MAX) },
                4,
                Duration::from_millis(5),
                stop.clone(),
                counters.clone(),
            );

            let qmat = randn(6, 8, &mut rng(213)).scale(0.3);
            let mut expectations = Vec::new();
            for i in 0..6 {
                let q = qmat.row(i).to_vec();
                let k = [5, 9, 1000][i % 3];
                let (j, rx) = job(q.clone(), k);
                expectations.push((q, k, rx));
                queue.try_submit(j).unwrap();
            }
            for (q, k, rx) in expectations {
                let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
                let expected = adc_search(&index, &q, k);
                match resp {
                    Response::Search { hits, .. } => {
                        assert_eq!(hits.len(), expected.len());
                        for (h, e) in hits.iter().zip(&expected) {
                            assert_eq!(h.0, e.index as u64, "shards={shards} k={k}");
                            assert_eq!(h.1.to_bits(), e.score.to_bits(), "shards={shards} k={k}");
                        }
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }

            stop.store(true, Ordering::SeqCst);
            queue.close();
            handle.join().unwrap();
        }
    }

    #[test]
    fn routed_executor_with_full_probe_matches_adc_search_bitwise() {
        // nprobe == nlist routed serving must reproduce the exhaustive
        // per-query search bit for bit, at any shard count, including
        // after online mutations (the overlay mutates in lockstep).
        for shards in [1usize, 4] {
            let index = build_index(140, 41);
            let mut state = IndexState::new_sharded(index.clone(), shards);
            state.enable_routing(4, 4, lightlt_core::route::DEFAULT_TRAIN_SEED);
            let state = Arc::new(state);
            let mut mirror = index;
            let rows = randn(5, 8, &mut rng(411)).scale(0.4);
            state.upsert(&rows).unwrap();
            mirror.append(&rows);
            assert_eq!(state.delete(3).unwrap(), mirror.swap_remove(3));

            let queue = Arc::new(SubmitQueue::new(64));
            let stop = Arc::new(AtomicBool::new(false));
            let counters = Arc::new(ExecCounters::default());
            let handle = spawn_executor(
                queue.clone(),
                state.clone(),
                4,
                Duration::from_millis(5),
                stop.clone(),
                counters.clone(),
            );

            let qmat = randn(8, 8, &mut rng(412)).scale(0.3);
            let mut expectations = Vec::new();
            for i in 0..8 {
                let q = qmat.row(i).to_vec();
                let k = [5, 9, 1000][i % 3];
                let (j, rx) = job(q.clone(), k);
                expectations.push((q, k, rx));
                queue.try_submit(j).unwrap();
            }
            for (q, k, rx) in expectations {
                let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
                let expected = adc_search(&mirror, &q, k);
                match resp {
                    Response::Search { hits, .. } => {
                        assert_eq!(hits.len(), expected.len());
                        for (h, e) in hits.iter().zip(&expected) {
                            assert_eq!(h.0, e.index as u64, "shards={shards} k={k}");
                            assert_eq!(h.1.to_bits(), e.score.to_bits(), "shards={shards} k={k}");
                        }
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }

            stop.store(true, Ordering::SeqCst);
            queue.close();
            handle.join().unwrap();
        }
    }

    #[test]
    fn pure_u8_backend_serves_k_results_shard_invariantly() {
        // Un-reranked u8 is approximate but shard-invariant: the same
        // quantized table yields the same integer sums whether the items
        // are scanned in one segment or four.
        let index = build_index(130, 31);
        let qmat = randn(5, 8, &mut rng(313)).scale(0.3);
        let mut reference: Option<Vec<Vec<(u64, u32)>>> = None;
        for shards in [1usize, 4] {
            let state = Arc::new(IndexState::new_sharded(index.clone(), shards));
            let queue = Arc::new(SubmitQueue::new(64));
            let stop = Arc::new(AtomicBool::new(false));
            let counters = Arc::new(ExecCounters::default());
            let handle = spawn_executor_with(
                queue.clone(),
                state.clone(),
                BackendKind::U8 { rerank: None },
                4,
                Duration::from_millis(5),
                stop.clone(),
                counters.clone(),
            );
            let mut receivers = Vec::new();
            for i in 0..5 {
                let (j, rx) = job(qmat.row(i).to_vec(), 7);
                receivers.push(rx);
                queue.try_submit(j).unwrap();
            }
            let mut got = Vec::new();
            for rx in receivers {
                match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
                    Response::Search { hits, .. } => {
                        assert_eq!(hits.len(), 7);
                        got.push(
                            hits.iter().map(|&(id, s)| (id, s.to_bits())).collect::<Vec<_>>(),
                        );
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(r, &got, "u8 results changed with shard count"),
            }
            stop.store(true, Ordering::SeqCst);
            queue.close();
            handle.join().unwrap();
        }
    }
}
