//! Startup recovery: newest valid snapshot + WAL-suffix replay.
//!
//! The recovered state is **bitwise-identical** to the pre-crash state at
//! the last durable mutation: snapshots are exact `LTINDEX3` images, and
//! `QuantizedIndex::append` online-encodes deterministically, so replaying
//! the WAL suffix reproduces the same codes, norms, and ids the live
//! process computed before dying.
//!
//! Candidate order (first valid wins, every fallback is counted on the
//! `wal.fallbacks` metric and logged as a `corrupt_fallback` event):
//!
//! 1. The snapshot named by a valid `MANIFEST` — the committed state.
//! 2. Any other `snap-*.ltidx` in the WAL directory, newest first — the
//!    manifest was corrupt or lost, but the images are self-checksummed
//!    and their names record the seq they cover.
//! 3. The base index (if any) at seq 0 — replay the whole log.
//!
//! Replay stops cleanly at the first torn/corrupt frame or seq gap (see
//! [`replay_wal`]); in WAL mode the mutation epoch **is** the WAL
//! sequence number, so the recovered epoch is `covered_seq + replayed`.

use std::path::Path;
use std::time::Instant;

use lightlt_core::index::QuantizedIndex;
use lightlt_core::persist::deserialize_index;
use lt_linalg::Matrix;

use crate::state::IndexState;
use crate::wal::{
    parse_snapshot_name, replay_wal, wal_obs, FsyncPolicy, Manifest, ReplayReport, WalRecord,
    WalWriter,
};

/// Where the recovered base image came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverySource {
    /// The snapshot the manifest committed (the normal path).
    Manifest(String),
    /// A snapshot found by name after the manifest failed validation.
    SnapshotFile(String),
    /// The base index image; the whole WAL was replayed.
    Base,
}

/// What [`recover`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Which image seeded the index.
    pub source: RecoverySource,
    /// WAL seq the seed image covered (replay started after it).
    pub covered_seq: u64,
    /// Mutation epoch after replay.
    pub epoch: u64,
    /// What replay did (records applied, bytes truncated, stop reason).
    pub replay: ReplayReport,
    /// Candidates that failed validation before the winning one.
    pub fallbacks: Vec<String>,
}

/// Recovers the serving state from `wal_dir`: newest valid snapshot (or
/// `base`) plus WAL-suffix replay, then opens a fresh writer segment so
/// the returned [`IndexState`] continues the sequence.
///
/// The state is partitioned into `shards` modulo-routed shards (0 is
/// treated as 1). Replay always reconstructs the **global** index — shard
/// content is a pure function of global ids and the shard count, so a log
/// written at any shard count replays into any other — and each shard's
/// epoch is seeded to the seq of the last replayed record that touched
/// it (or the covered seq), keeping epoch ≡ seq per shard.
///
/// # Errors
/// Returns a message when no candidate image is valid, or on real I/O
/// failures opening the directory or the new segment.
pub fn recover(
    base: Option<QuantizedIndex>,
    wal_dir: &Path,
    policy: FsyncPolicy,
    shards: usize,
) -> Result<(IndexState, RecoveryReport), String> {
    let observe = lt_obs::enabled() || lt_obs::events_enabled();
    let t0 = observe.then(Instant::now);
    let mut fallbacks = Vec::new();

    // Sweep temp files a crash may have left between write and rename
    // (`snap-*.ltidx.tmp`, `MANIFEST.tmp`): never committed, and nothing
    // else ever deletes them.
    crate::wal::sweep_tmp(wal_dir);

    // 1. Manifest-committed snapshot.
    let mut seed: Option<(QuantizedIndex, u64, RecoverySource)> = None;
    if wal_dir.join(crate::wal::MANIFEST_NAME).exists() {
        match Manifest::read(wal_dir) {
            Ok(m) => match load_image(&wal_dir.join(&m.snapshot_file)) {
                Ok(index) => {
                    seed = Some((index, m.covered_seq, RecoverySource::Manifest(m.snapshot_file)));
                }
                Err(e) => fall_back(&mut fallbacks, &m.snapshot_file, &e),
            },
            Err(e) => fall_back(&mut fallbacks, crate::wal::MANIFEST_NAME, &e),
        }
    }

    // 2. Orphan snapshots, newest first.
    if seed.is_none() {
        let mut snaps: Vec<u64> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(wal_dir) {
            for entry in entries.flatten() {
                if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
                    snaps.push(seq);
                }
            }
        }
        snaps.sort_unstable_by(|a, b| b.cmp(a));
        for seq in snaps {
            let name = crate::wal::snapshot_name(seq);
            match load_image(&wal_dir.join(&name)) {
                Ok(index) => {
                    seed = Some((index, seq, RecoverySource::SnapshotFile(name)));
                    break;
                }
                Err(e) => fall_back(&mut fallbacks, &name, &e),
            }
        }
    }

    // 3. The base image at seq 0.
    let (index, covered_seq, source) = match seed {
        Some(s) => s,
        None => {
            let base = base.ok_or_else(|| {
                format!(
                    "no valid snapshot in {} and no base index to recover from",
                    wal_dir.display()
                )
            })?;
            (base, 0, RecoverySource::Base)
        }
    };

    // Replay the WAL suffix. A record the index rejects (wrong dimension,
    // out-of-bounds delete) can only mean corruption — the live process
    // validated before appending — so replay stops and truncates there.
    // Which shards a record touches is derived from the running item
    // count (the record's own tag is diagnostic only), so the per-shard
    // epochs are right even when the shard count changed since logging.
    let shards = shards.max(1);
    let mut index = index;
    let mut shard_epochs = vec![covered_seq; shards];
    let replay = replay_wal(wal_dir, covered_seq, |seq, record| {
        let touched = touched_shards(&record, index.len(), shards);
        apply_record(&mut index, seq, record)?;
        for t in touched {
            shard_epochs[t] = seq;
        }
        Ok(())
    })
    .map_err(|e| format!("replaying WAL in {}: {e}", wal_dir.display()))?;
    if let Some(why) = &replay.stopped {
        lt_obs::emit(&lt_obs::Event::CorruptFallback { what: "wal", detail: why });
    }

    let epoch = covered_seq + replay.replayed;
    let writer = WalWriter::create(wal_dir, policy, epoch + 1)
        .map_err(|e| format!("opening WAL segment in {}: {e}", wal_dir.display()))?;
    let state = IndexState::with_wal_sharded(index, shards, epoch, writer, wal_dir.to_path_buf());
    state.set_shard_epochs(&shard_epochs);

    if let Some(t0) = t0 {
        lt_obs::emit(&lt_obs::Event::WalReplay {
            records: replay.replayed,
            truncated: replay.truncated_bytes,
            micros: lt_obs::micros_since(t0),
        });
    }
    let report = RecoveryReport { source, covered_seq, epoch, replay, fallbacks };
    Ok((state, report))
}

/// Shards a record touches under the modulo routing rule, given the item
/// count `items` before it applies (upsert appends from `items`; delete
/// moves the last item into the deleted slot).
fn touched_shards(record: &WalRecord, items: usize, shards: usize) -> Vec<usize> {
    match record {
        WalRecord::Upsert { dim, rows, .. } => {
            let count = rows.len().checked_div(*dim as usize).unwrap_or(0);
            (0..count.min(shards)).map(|r| (items + r) % shards).collect()
        }
        WalRecord::Delete { id, .. } => {
            if items == 0 {
                return Vec::new();
            }
            let dst = (*id as usize) % shards;
            let src = (items - 1) % shards;
            if dst == src {
                vec![dst]
            } else {
                vec![dst, src]
            }
        }
    }
}

/// Applies one replayed record, re-validating exactly as the live
/// mutation path did before appending it.
fn apply_record(index: &mut QuantizedIndex, seq: u64, record: WalRecord) -> Result<(), String> {
    match record {
        WalRecord::Upsert { dim, rows, .. } => {
            let dim = dim as usize;
            if dim == 0 || dim != index.dim() {
                return Err(format!("seq {seq}: upsert dim {dim} != index dim {}", index.dim()));
            }
            if rows.is_empty() || rows.len() % dim != 0 {
                return Err(format!("seq {seq}: {} floats not a multiple of dim {dim}", rows.len()));
            }
            let n = rows.len() / dim;
            index.append(&Matrix::from_vec(n, dim, rows));
            Ok(())
        }
        WalRecord::Delete { id, .. } => {
            let id = usize::try_from(id).map_err(|_| format!("seq {seq}: delete id overflow"))?;
            if id >= index.len() {
                return Err(format!("seq {seq}: delete id {id} out of bounds ({})", index.len()));
            }
            index.swap_remove(id);
            Ok(())
        }
    }
}

fn load_image(path: &Path) -> Result<QuantizedIndex, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    deserialize_index(&bytes)
}

fn fall_back(fallbacks: &mut Vec<String>, what: &str, why: &str) {
    wal_obs().fallbacks.inc();
    lt_obs::emit(&lt_obs::Event::CorruptFallback { what, detail: why });
    eprintln!("warning: {what} rejected ({why}); trying next recovery candidate");
    fallbacks.push(format!("{what}: {why}"));
}
