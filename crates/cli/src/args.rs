//! Minimal dependency-free argument parsing: `--key value` pairs and flags
//! after a subcommand.

use std::collections::BTreeMap;

/// Parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument vector (excluding the program name).
    ///
    /// # Errors
    /// Returns a message for malformed input (option without a value, or
    /// unexpected positional argument).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        let mut args = Args { command, ..Default::default() };
        while let Some(token) = it.next() {
            if let Some(key) = token.strip_prefix("--") {
                // Treat as flag if the next token is another option or
                // missing; else consume the value.
                match it.peek() {
                    Some(v) if !v.starts_with("--") => match it.next() {
                        Some(value) => {
                            args.options.insert(key.to_string(), value);
                        }
                        None => return Err(format!("missing value for option --{key}")),
                    },
                    _ => args.flags.push(key.to_string()),
                }
            } else {
                return Err(format!("unexpected positional argument: {token}"));
            }
        }
        Ok(args)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| format!("invalid value for --{key}: {v}"))
            }
        }
    }

    /// True when a bare `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("train --data x.ltd --epochs 30 --verbose").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.require("data").unwrap(), "x.ltd");
        assert_eq!(a.get_or("epochs", 0usize).unwrap(), 30);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_required_option_reported() {
        let a = parse("train").unwrap();
        assert!(a.require("data").unwrap_err().contains("--data"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("train").unwrap();
        assert_eq!(a.get_or("epochs", 17usize).unwrap(), 17);
        assert_eq!(a.get("out"), None);
    }

    #[test]
    fn invalid_numeric_value_reported() {
        let a = parse("train --epochs abc").unwrap();
        assert!(a.get_or("epochs", 0usize).is_err());
    }

    #[test]
    fn option_followed_by_option_becomes_flag() {
        let a = parse("train --resume --epochs 3").unwrap();
        assert!(a.flag("resume"));
        assert_eq!(a.get_or("epochs", 0usize).unwrap(), 3);
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(parse("train junk").is_err());
    }

    #[test]
    fn empty_argv_gives_empty_command() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.command, "");
    }
}
