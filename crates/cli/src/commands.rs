//! Subcommand implementations.

use lightlt_core::persist::{deserialize_index, serialize_index, ModelBundle};
use lightlt_core::prelude::*;
use lightlt_core::search::{adc_rank_all_batch, adc_search, adc_search_rerank};
use lt_data::io::{load_split, save_split};
use lt_data::DatasetKind;
use lt_eval::Table;

use crate::args::Args;

fn parse_dataset(name: &str) -> Result<DatasetKind, String> {
    match name.to_lowercase().as_str() {
        "cifar100" => Ok(DatasetKind::Cifar100),
        "imagenet100" => Ok(DatasetKind::ImageNet100),
        "nc" => Ok(DatasetKind::Nc),
        "qba" => Ok(DatasetKind::Qba),
        other => Err(format!(
            "unknown dataset `{other}` (expected cifar100|imagenet100|nc|qba)"
        )),
    }
}

/// `lightlt generate` — synthesize a Table-I split.
pub fn generate(args: &Args) -> Result<(), String> {
    let kind = parse_dataset(args.require("dataset")?)?;
    let iff: u32 = args.get_or("if", 50)?;
    let dim: usize = args.get_or("dim", 32)?;
    let scale: f64 = args.get_or("scale", 0.1)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let out = args.require("out")?;

    let spec = lt_data::spec(kind, iff);
    let split = lt_data::generate(&spec, dim, scale, seed);
    save_split(out, &split).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} train / {} query / {} database items, C={}, dim={}, measured IF={:.1}",
        split.train.len(),
        split.query.len(),
        split.database.len(),
        spec.num_classes,
        dim,
        lt_data::zipf::imbalance_factor(&split.train.class_counts()),
    );
    Ok(())
}

fn config_from_args(args: &Args, split: &lt_data::RetrievalSplit) -> Result<LightLtConfig, String> {
    let fault_defaults = FaultPolicy::default();
    let fault = FaultPolicy {
        max_retries: args.get_or("max-retries", fault_defaults.max_retries)?,
        lr_backoff: args.get_or("lr-backoff", fault_defaults.lr_backoff)?,
        ..fault_defaults
    };
    let config = LightLtConfig {
        input_dim: split.train.dim(),
        backbone_hidden: args.get_or("hidden", (split.train.dim() * 3).max(32))?,
        embed_dim: args.get_or("embed-dim", 32)?,
        num_classes: split.train.num_classes,
        num_codebooks: args.get_or("codebooks", 4)?,
        num_codewords: args.get_or("codewords", 64)?,
        ffn_hidden: args.get_or("embed-dim", 32usize)? * 2,
        epochs: args.get_or("epochs", 30)?,
        batch_size: args.get_or("batch-size", 32)?,
        learning_rate: args.get_or("lr", 5e-3)?,
        alpha: args.get_or("alpha", 0.01)?,
        gamma: args.get_or("gamma", 0.99)?,
        ensemble_size: args.get_or("ensemble", 1)?,
        seed: args.get_or("seed", 17)?,
        fault,
        threads: args.get_or("threads", 0)?,
        ..Default::default()
    };
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

/// True when `dir` already holds `.ckpt` files from an earlier run.
fn has_checkpoints(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .any(|e| e.path().extension().is_some_and(|ext| ext == "ckpt"))
        })
        .unwrap_or(false)
}

/// `lightlt train` — train a LightLT model on a split's training set.
pub fn train(args: &Args) -> Result<(), String> {
    let data = args.require("data")?;
    let out = args.require("out")?;
    let resume = args.flag("resume");
    let checkpoint_dir = args.get("checkpoint-dir").map(std::path::PathBuf::from);
    if resume && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    if let Some(dir) = &checkpoint_dir {
        if !resume && has_checkpoints(dir) {
            return Err(format!(
                "checkpoint directory {} already contains checkpoints; pass --resume to \
                 continue that run, or remove the directory to start over",
                dir.display()
            ));
        }
    }
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;
    let mut config = config_from_args(args, &split)?;

    if args.flag("tune-alpha") {
        let probe = LightLtConfig { epochs: (config.epochs / 2).max(4), ..config.clone() };
        let alpha = tune_alpha(&probe, &split.train, &[0.003, 0.01, 0.03, 0.1])
            .map_err(|e| e.to_string())?;
        println!("grid-searched alpha = {alpha}");
        config.alpha = alpha;
    }

    println!(
        "training: {} items, C={}, M={}, K={}, {} epochs, ensemble={}",
        split.train.len(),
        config.num_classes,
        config.num_codebooks,
        config.num_codewords,
        config.epochs,
        config.ensemble_size,
    );
    let result = match &checkpoint_dir {
        Some(dir) => train_ensemble_resumable(&config, &split.train, dir),
        None => train_ensemble(&config, &split.train),
    }
    .map_err(|e| e.to_string())?;
    for (i, h) in result.base_histories.iter().enumerate() {
        println!("  stage {i}: final loss {:.4}", h.final_loss());
    }
    let bundle = ModelBundle::capture(&result.model, &result.store);
    std::fs::write(out, bundle.to_json()?).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn load_model(path: &str) -> Result<(LightLt, lt_tensor::ParamStore), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    ModelBundle::from_json(&json)?.restore()
}

/// `lightlt index` — encode the split's database into a binary ADC index.
pub fn index(args: &Args) -> Result<(), String> {
    let (model, store) = load_model(args.require("model")?)?;
    let data = args.require("data")?;
    let out = args.require("out")?;
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;

    let db_emb = model.embed(&store, &split.database.features);
    let idx = QuantizedIndex::build(&model.dsq, &store, &db_emb);
    let image = serialize_index(&idx);
    std::fs::write(out, &image).map_err(|e| format!("writing {out}: {e}"))?;
    let c = idx.complexity();
    println!(
        "wrote {out}: {} items, {} bytes ({:.1}x compression vs dense f32)",
        idx.len(),
        image.len(),
        c.compression_ratio(),
    );
    Ok(())
}

fn load_index(path: &str) -> Result<QuantizedIndex, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    deserialize_index(&bytes)
}

/// `lightlt search` — run one query against an index.
pub fn search(args: &Args) -> Result<(), String> {
    let (model, store) = load_model(args.require("model")?)?;
    let idx = load_index(args.require("index")?)?;
    let data = args.require("data")?;
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;
    let query_row: usize = args.get_or("query", 0)?;
    let k: usize = args.get_or("k", 10)?;
    if query_row >= split.query.len() {
        return Err(format!(
            "--query {query_row} out of range ({} queries)",
            split.query.len()
        ));
    }

    let q_emb = model.embed(&store, &split.query.features.select_rows(&[query_row]));
    let hits = match args.get("rerank") {
        Some(shortlist) => {
            let shortlist: usize =
                shortlist.parse().map_err(|_| "invalid --rerank value".to_string())?;
            let db_emb = model.embed(&store, &split.database.features);
            adc_search_rerank(&idx, &db_emb, q_emb.row(0), k, shortlist)
        }
        None => adc_search(&idx, q_emb.row(0), k),
    };

    let mut table = Table::new(
        format!("top-{k} for query {query_row} (true class {})", split.query.labels[query_row]),
        &["rank", "db item", "class", "score"],
    );
    for (rank, hit) in hits.iter().enumerate() {
        table.row(&[
            (rank + 1).to_string(),
            hit.index.to_string(),
            split.database.labels[hit.index].to_string(),
            format!("{:+.4}", hit.score),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// `lightlt eval` — MAP over the split's query set.
pub fn eval(args: &Args) -> Result<(), String> {
    let (model, store) = load_model(args.require("model")?)?;
    let idx = load_index(args.require("index")?)?;
    let data = args.require("data")?;
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;
    if idx.len() != split.database.len() {
        return Err(format!(
            "index has {} items but the split's database has {}",
            idx.len(),
            split.database.len()
        ));
    }

    let q_emb = model.embed(&store, &split.query.features);
    let rankings = adc_rank_all_batch(&idx, &q_emb);
    let map = lt_eval::mean_average_precision(
        &rankings,
        &split.query.labels,
        &split.database.labels,
    );
    let pcm = lt_eval::per_class_map(
        &rankings,
        &split.query.labels,
        &split.database.labels,
        split.train.num_classes,
    );
    println!("MAP over {} queries: {map:.4}", split.query.len());
    let c = split.train.num_classes;
    let head_n = (c / 4).max(1);
    let head: f64 = pcm[..head_n].iter().sum::<f64>() / head_n as f64;
    let tail: f64 = pcm[c - head_n..].iter().sum::<f64>() / head_n as f64;
    println!("head-{head_n} classes: {head:.4}   tail-{head_n} classes: {tail:.4}");
    Ok(())
}

/// `lightlt info` — index statistics.
pub fn info(args: &Args) -> Result<(), String> {
    let idx = load_index(args.require("index")?)?;
    let c = idx.complexity();
    let mut table = Table::new("index", &["property", "value"]);
    table.row(&["items".into(), idx.len().to_string()]);
    table.row(&["codebooks (M)".into(), idx.num_codebooks().to_string()]);
    table.row(&["codewords (K)".into(), idx.num_codewords().to_string()]);
    table.row(&["dimension (d)".into(), idx.dim().to_string()]);
    table.row(&["metric".into(), format!("{:?}", idx.metric())]);
    table.row(&["bits/item".into(), (idx.num_codebooks() * c.bits_per_id()).to_string()]);
    table.row(&["storage bytes".into(), idx.storage_bytes().to_string()]);
    table.row(&["compression".into(), format!("{:.2}x", c.compression_ratio())]);
    table.row(&["theor. speedup".into(), format!("{:.2}x", c.theoretical_speedup())]);
    println!("{}", table.render());
    Ok(())
}
