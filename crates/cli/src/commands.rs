//! Subcommand implementations.

use lightlt_core::persist::{deserialize_index, serialize_index, ModelBundle};
use lightlt_core::prelude::*;
use lightlt_core::search::{
    adc_rank_all_batch, adc_search, adc_search_batch_with_backend, adc_search_rerank,
    adc_search_with_backend, SearchScratch,
};
use lt_data::io::{load_split, save_split};
use lt_data::DatasetKind;
use lt_eval::Table;

use crate::args::Args;

fn parse_dataset(name: &str) -> Result<DatasetKind, String> {
    match name.to_lowercase().as_str() {
        "cifar100" => Ok(DatasetKind::Cifar100),
        "imagenet100" => Ok(DatasetKind::ImageNet100),
        "nc" => Ok(DatasetKind::Nc),
        "qba" => Ok(DatasetKind::Qba),
        other => Err(format!(
            "unknown dataset `{other}` (expected cifar100|imagenet100|nc|qba)"
        )),
    }
}

/// `lightlt generate` — synthesize a Table-I split.
pub fn generate(args: &Args) -> Result<(), String> {
    let kind = parse_dataset(args.require("dataset")?)?;
    let iff: u32 = args.get_or("if", 50)?;
    let dim: usize = args.get_or("dim", 32)?;
    let scale: f64 = args.get_or("scale", 0.1)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let out = args.require("out")?;

    let spec = lt_data::spec(kind, iff);
    let split = lt_data::generate(&spec, dim, scale, seed);
    save_split(out, &split).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} train / {} query / {} database items, C={}, dim={}, measured IF={:.1}",
        split.train.len(),
        split.query.len(),
        split.database.len(),
        spec.num_classes,
        dim,
        lt_data::zipf::imbalance_factor(&split.train.class_counts()),
    );
    Ok(())
}

fn config_from_args(args: &Args, split: &lt_data::RetrievalSplit) -> Result<LightLtConfig, String> {
    let fault_defaults = FaultPolicy::default();
    let fault = FaultPolicy {
        max_retries: args.get_or("max-retries", fault_defaults.max_retries)?,
        lr_backoff: args.get_or("lr-backoff", fault_defaults.lr_backoff)?,
        ..fault_defaults
    };
    let config = LightLtConfig {
        input_dim: split.train.dim(),
        backbone_hidden: args.get_or("hidden", (split.train.dim() * 3).max(32))?,
        embed_dim: args.get_or("embed-dim", 32)?,
        num_classes: split.train.num_classes,
        num_codebooks: args.get_or("codebooks", 4)?,
        num_codewords: args.get_or("codewords", 64)?,
        ffn_hidden: args.get_or("embed-dim", 32usize)? * 2,
        epochs: args.get_or("epochs", 30)?,
        batch_size: args.get_or("batch-size", 32)?,
        learning_rate: args.get_or("lr", 5e-3)?,
        alpha: args.get_or("alpha", 0.01)?,
        gamma: args.get_or("gamma", 0.99)?,
        ensemble_size: args.get_or("ensemble", 1)?,
        seed: args.get_or("seed", 17)?,
        fault,
        threads: args.get_or("threads", 0)?,
        ..Default::default()
    };
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

/// True when `dir` already holds `.ckpt` files from an earlier run.
fn has_checkpoints(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .any(|e| e.path().extension().is_some_and(|ext| ext == "ckpt"))
        })
        .unwrap_or(false)
}

/// `lightlt train` — train a LightLT model on a split's training set.
pub fn train(args: &Args) -> Result<(), String> {
    let data = args.require("data")?;
    let out = args.require("out")?;
    let resume = args.flag("resume");
    let checkpoint_dir = args.get("checkpoint-dir").map(std::path::PathBuf::from);
    if resume && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    if let Some(dir) = &checkpoint_dir {
        if !resume && has_checkpoints(dir) {
            return Err(format!(
                "checkpoint directory {} already contains checkpoints; pass --resume to \
                 continue that run, or remove the directory to start over",
                dir.display()
            ));
        }
    }
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;
    let mut config = config_from_args(args, &split)?;

    if args.flag("tune-alpha") {
        let probe = LightLtConfig { epochs: (config.epochs / 2).max(4), ..config.clone() };
        let alpha = tune_alpha(&probe, &split.train, &[0.003, 0.01, 0.03, 0.1])
            .map_err(|e| e.to_string())?;
        println!("grid-searched alpha = {alpha}");
        config.alpha = alpha;
    }

    println!(
        "training: {} items, C={}, M={}, K={}, {} epochs, ensemble={}",
        split.train.len(),
        config.num_classes,
        config.num_codebooks,
        config.num_codewords,
        config.epochs,
        config.ensemble_size,
    );
    let result = match &checkpoint_dir {
        Some(dir) => train_ensemble_resumable(&config, &split.train, dir),
        None => train_ensemble(&config, &split.train),
    }
    .map_err(|e| e.to_string())?;
    for (i, h) in result.base_histories.iter().enumerate() {
        println!("  stage {i}: final loss {:.4}", h.final_loss());
    }
    let bundle = ModelBundle::capture(&result.model, &result.store);
    std::fs::write(out, bundle.to_json()?).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn load_model(path: &str) -> Result<(LightLt, lt_tensor::ParamStore), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    ModelBundle::from_json(&json)?.restore()
}

/// `lightlt index` — encode the split's database into a binary ADC index.
pub fn index(args: &Args) -> Result<(), String> {
    let (model, store) = load_model(args.require("model")?)?;
    let data = args.require("data")?;
    let out = args.require("out")?;
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;

    let db_emb = model.embed(&store, &split.database.features);
    let idx = QuantizedIndex::build(&model.dsq, &store, &db_emb);
    // `--route nlist` bakes a coarse quantizer into the image (LTINDEX4):
    // consumers read the stored centroids/assignments instead of
    // retraining, and legacy readers still see the flat v3-shaped body.
    let (image, routed_note) = match parse_route(args)? {
        Some(spec) => {
            let routed =
                RoutedIndex::from_index(&idx, spec.nlist, lightlt_core::route::DEFAULT_TRAIN_SEED);
            (serialize_routed_index(&routed), format!(", {} route partitions", routed.nlist()))
        }
        None => (serialize_index(&idx), String::new()),
    };
    std::fs::write(out, &image).map_err(|e| format!("writing {out}: {e}"))?;
    let c = idx.complexity();
    println!(
        "wrote {out}: {} items, {} bytes ({:.1}x compression vs dense f32{routed_note})",
        idx.len(),
        image.len(),
        c.compression_ratio(),
    );
    Ok(())
}

fn load_index(path: &str) -> Result<QuantizedIndex, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    deserialize_index(&bytes)
}

/// Parses `--backend {f32,u8[:rerank]}` (defaults to the exact f32 engine),
/// surfacing the parser's own error message on bad input.
fn parse_backend(args: &Args) -> Result<lt_linalg::scan::BackendKind, String> {
    match args.get("backend") {
        None => Ok(lt_linalg::scan::BackendKind::F32),
        Some(s) => s.parse(),
    }
}

/// Parses `--route nlist[:nprobe]` (None when absent: exhaustive scans).
fn parse_route(args: &Args) -> Result<Option<RouteSpec>, String> {
    args.get("route").map(RouteSpec::parse).transpose()
}

/// Loads a routed view of the index at `path`: an `LTINDEX4` image whose
/// stored partition count matches `nlist` is used as-is (its centroids and
/// assignments are authoritative); anything else — a legacy flat image, or
/// a routed one built at a different nlist — retrains the coarse quantizer
/// deterministically at the default seed.
fn load_routed_index(path: &str, nlist: usize) -> Result<RoutedIndex, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let routed = deserialize_routed_index(&bytes)?;
    if routed.nlist() == nlist {
        Ok(routed)
    } else {
        Ok(RoutedIndex::from_index(
            &routed.flatten(),
            nlist,
            lightlt_core::route::DEFAULT_TRAIN_SEED,
        ))
    }
}

/// `lightlt search` — run one query against an index.
pub fn search(args: &Args) -> Result<(), String> {
    let (model, store) = load_model(args.require("model")?)?;
    let index_path = args.require("index")?;
    let data = args.require("data")?;
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;
    let query_row: usize = args.get_or("query", 0)?;
    let k: usize = args.get_or("k", 10)?;
    if query_row >= split.query.len() {
        return Err(format!(
            "--query {query_row} out of range ({} queries)",
            split.query.len()
        ));
    }

    let backend = parse_backend(args)?;
    let route = parse_route(args)?;
    if route.is_some() && args.get("rerank").is_some() {
        return Err("--route and --rerank are mutually exclusive".into());
    }
    let q_emb = model.embed(&store, &split.query.features.select_rows(&[query_row]));
    let hits = if let Some(spec) = route {
        let routed = load_routed_index(index_path, spec.nlist)?;
        let engine = backend.create();
        let mut results = routed.search_batch(engine.as_ref(), &q_emb, k, spec.nprobe);
        results.pop().expect("one query row")
    } else {
        let idx = load_index(index_path)?;
        match args.get("rerank") {
            Some(shortlist) => {
                if backend != lt_linalg::scan::BackendKind::F32 {
                    return Err(
                        "--rerank (dense re-scoring) and --backend are mutually exclusive; \
                         use --backend u8:<depth> for the LUT-space re-rank"
                            .into(),
                    );
                }
                let shortlist: usize =
                    shortlist.parse().map_err(|_| "invalid --rerank value".to_string())?;
                let db_emb = model.embed(&store, &split.database.features);
                adc_search_rerank(&idx, &db_emb, q_emb.row(0), k, shortlist)
            }
            None => match backend {
                lt_linalg::scan::BackendKind::F32 => adc_search(&idx, q_emb.row(0), k),
                other => {
                    let engine = other.create();
                    let mut scratch = SearchScratch::new();
                    adc_search_with_backend(&idx, engine.as_ref(), q_emb.row(0), k, &mut scratch)
                }
            },
        }
    };

    let mut table = Table::new(
        format!("top-{k} for query {query_row} (true class {})", split.query.labels[query_row]),
        &["rank", "db item", "class", "score"],
    );
    for (rank, hit) in hits.iter().enumerate() {
        table.row(&[
            (rank + 1).to_string(),
            hit.index.to_string(),
            split.database.labels[hit.index].to_string(),
            format!("{:+.4}", hit.score),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// `lightlt eval` — MAP over the split's query set.
///
/// With `--backend u8[:rerank]`, the rankings come from the quantized scan
/// engine and the report additionally includes recall@k against the exact
/// f32 rankings (overall plus per-class tail breakdown), quantifying what
/// the low-precision LUT costs on long-tail classes.
pub fn eval(args: &Args) -> Result<(), String> {
    let (model, store) = load_model(args.require("model")?)?;
    let index_path = args.require("index")?;
    let idx = load_index(index_path)?;
    let data = args.require("data")?;
    let backend = parse_backend(args)?;
    let route = parse_route(args)?;
    let split = load_split(data).map_err(|e| format!("reading {data}: {e}"))?;
    if idx.len() != split.database.len() {
        return Err(format!(
            "index has {} items but the split's database has {}",
            idx.len(),
            split.database.len()
        ));
    }

    let q_emb = model.embed(&store, &split.query.features);
    let f32_rankings = adc_rank_all_batch(&idx, &q_emb);
    let rankings = match backend {
        lt_linalg::scan::BackendKind::F32 => f32_rankings.clone(),
        other => {
            let engine = other.create();
            adc_search_batch_with_backend(&idx, engine.as_ref(), &q_emb, idx.len())
                .into_iter()
                .map(|hits| hits.into_iter().map(|s| s.index).collect())
                .collect()
        }
    };
    let map = lt_eval::mean_average_precision(
        &rankings,
        &split.query.labels,
        &split.database.labels,
    );
    let pcm = lt_eval::per_class_map(
        &rankings,
        &split.query.labels,
        &split.database.labels,
        split.train.num_classes,
    );
    println!(
        "MAP over {} queries ({backend} scan backend): {map:.4}",
        split.query.len()
    );
    let c = split.train.num_classes;
    let head_n = (c / 4).max(1);
    let head: f64 = pcm[..head_n].iter().sum::<f64>() / head_n as f64;
    let tail: f64 = pcm[c - head_n..].iter().sum::<f64>() / head_n as f64;
    println!("head-{head_n} classes: {head:.4}   tail-{head_n} classes: {tail:.4}");

    let recall_k = args
        .get("recall-k")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&k| k > 0)
                .ok_or_else(|| format!("invalid value for --recall-k: `{s}`"))
        })
        .transpose()?
        .unwrap_or(10);
    if backend != lt_linalg::scan::BackendKind::F32 {
        let report = lt_eval::quant_recall_report(
            &f32_rankings,
            &rankings,
            &split.query.labels,
            split.train.num_classes,
            recall_k,
        );
        println!("{}", report.render());
    }

    if let Some(spec) = route {
        // Routed-search recall vs the exhaustive reference: what nprobe
        // costs, overall and on the tail quartile where dropped
        // partitions would hurt the paper's long-tail claim.
        let routed = load_routed_index(index_path, spec.nlist)?;
        let engine = backend.create();
        let routed_rankings: Vec<Vec<usize>> = routed
            .search_batch(engine.as_ref(), &q_emb, recall_k, spec.nprobe)
            .into_iter()
            .map(|hits| hits.into_iter().map(|s| s.index).collect())
            .collect();
        let report = lt_eval::quant_recall_report(
            &f32_rankings,
            &routed_rankings,
            &split.query.labels,
            split.train.num_classes,
            recall_k,
        );
        println!(
            "routed recall@{recall_k} vs exhaustive (nlist={} nprobe={}): \
             overall {:.4}  head-quartile {:.4}  tail-quartile {:.4}",
            spec.nlist, spec.nprobe, report.recall, report.head_recall, report.tail_recall,
        );
        println!("{}", report.render());
    }
    Ok(())
}

/// `lightlt serve` — serve an index over TCP until a client sends
/// `shutdown` (or the process is killed; `--snapshot` or `--wal-dir`
/// makes that survivable).
pub fn serve(args: &Args) -> Result<(), String> {
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    let index_path = args.get("index");
    let snapshot_path: Option<PathBuf> = args.get("snapshot").map(PathBuf::from);
    let wal_dir: Option<PathBuf> = args.get("wal-dir").map(PathBuf::from);
    if wal_dir.is_some() && snapshot_path.is_some() {
        return Err(
            "--wal-dir and --snapshot are mutually exclusive (WAL-mode snapshots \
             live inside the WAL directory)"
                .into(),
        );
    }
    if index_path.is_none() && snapshot_path.is_none() && wal_dir.is_none() {
        return Err("serve needs --index, --snapshot, and/or --wal-dir".into());
    }
    let fsync_policy = match args.get("fsync-policy") {
        Some(s) => {
            if wal_dir.is_none() {
                return Err("--fsync-policy requires --wal-dir".into());
            }
            lt_serve::FsyncPolicy::parse(s)?
        }
        None => lt_serve::FsyncPolicy::Always,
    };
    // In WAL mode the base image is optional: recovery can start from a
    // snapshot already inside the WAL directory.
    let (index, source) = if index_path.is_none() && wal_dir.is_some() {
        (None, "WAL directory")
    } else {
        let (index, from_snapshot) = lt_serve::load_index_with_snapshot(
            index_path.map(Path::new),
            snapshot_path.as_deref(),
        )?;
        (Some(index), if from_snapshot { "snapshot" } else { "index image" })
    };

    let max_delay_us: u64 = args.get_or("max-delay-us", 500)?;
    let snapshot_every_ms: u64 = args.get_or("snapshot-every-ms", 0)?;
    let backend = parse_backend(args)?;
    let config = lt_serve::ServeConfig {
        addr: args.get_or("addr", "127.0.0.1:7878".to_string())?,
        max_batch: args.get_or("max-batch", 16)?,
        max_delay: Duration::from_micros(max_delay_us),
        queue_cap: args.get_or("queue-cap", 1024)?,
        threads: args.get_or("threads", 0)?,
        shards: args.get_or("shards", 1)?,
        snapshot_path,
        snapshot_every: match snapshot_every_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        wal_dir,
        fsync_policy,
        metrics: !args.flag("no-metrics"),
        backend,
        route: parse_route(args)?,
        trace: !args.flag("no-trace"),
        trace_out: args.get("trace-out").map(PathBuf::from),
    };
    if config.max_batch == 0 || config.queue_cap == 0 {
        return Err("--max-batch and --queue-cap must be positive".into());
    }
    if config.shards == 0 {
        return Err("--shards must be positive".into());
    }

    let route_note = config
        .route
        .map(|spec| format!(", routed {spec}"))
        .unwrap_or_default();
    let server = match index {
        Some(index) => lt_serve::Server::start(index, config),
        None => lt_serve::Server::start_recovered(config),
    }
    .map_err(|e| format!("starting server: {e}"))?;
    println!(
        "serving {} items (dim {}) across {} shard(s) on {} (loaded from {source}, {backend} scan backend{route_note})",
        server.state().items(),
        server.state().dim(),
        server.state().num_shards(),
        server.local_addr(),
    );
    server.wait_for_stop();
    server.shutdown();
    println!("server stopped");
    Ok(())
}

/// Parses a comma-separated float list (`0.1,-0.2,3e-1`).
fn parse_vector(s: &str) -> Result<Vec<f32>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<f32>().map_err(|_| format!("invalid float in --vector: {t}")))
        .collect()
}

/// `--check` assertions for `lightlt query --metrics`: the server must
/// have executed at least one search, and the service-time quantiles must
/// be finite and ordered. Used by the CI serving smoke test.
fn check_metrics(snapshot: &lt_obs::Snapshot) -> Result<(), String> {
    let service = snapshot
        .histogram("serve.service_us")
        .ok_or("metrics check: serve.service_us histogram missing")?;
    if service.count == 0 {
        return Err("metrics check: no searches recorded (serve.service_us count is 0)".into());
    }
    let (p50, p95, p99) =
        (service.quantile(0.50), service.quantile(0.95), service.quantile(0.99));
    if !(p50.is_finite() && p95.is_finite() && p99.is_finite()) {
        return Err(format!("metrics check: non-finite quantiles p50={p50} p95={p95} p99={p99}"));
    }
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!("metrics check: quantiles not ordered p50={p50} p95={p95} p99={p99}"));
    }
    // The queue-wait and batch-exec histograms must have recorded too: a
    // search that bypassed the batch executor (or an executor that stopped
    // recording) is a pipeline regression even when service_us looks fine.
    for name in ["serve.queue_wait_us", "serve.batch_exec_us"] {
        let h = snapshot
            .histogram(name)
            .ok_or_else(|| format!("metrics check: {name} histogram missing"))?;
        if h.count == 0 {
            return Err(format!("metrics check: {name} is empty after a search"));
        }
    }
    println!("# serve.service_us p50={p50:.1}us p95={p95:.1}us p99={p99:.1}us");
    Ok(())
}

/// Renders one trace as a per-stage waterfall: each span's bar is placed
/// proportionally inside the request's total duration.
fn render_trace(t: &lt_obs::trace::Trace) -> String {
    use std::fmt::Write as _;
    const WIDTH: u64 = 40;
    let mut out = String::new();
    let tq = t.tail_q.map(|q| q.to_string()).unwrap_or_else(|| "-".into());
    let _ = writeln!(
        out,
        "trace {}  total {}us  tail_q {}  spans {}",
        t.id,
        t.total_us,
        tq,
        t.spans.len()
    );
    let total = t.total_us.max(1);
    for s in &t.spans {
        let name = lt_obs::trace::stage_name(s.stage);
        let label = if s.shard == u32::MAX {
            name.to_string()
        } else {
            format!("{name}[{}]", s.shard)
        };
        let offset = s.start_us.saturating_sub(t.start_us);
        let lo = (offset.min(total) * WIDTH / total) as usize;
        let hi = ((offset.saturating_add(s.dur_us).min(total) * WIDTH / total) as usize)
            .clamp(lo + 1, WIDTH as usize)
            .max(lo + 1);
        let mut bar: Vec<char> = vec![' '; WIDTH as usize];
        for c in bar.iter_mut().take(hi.min(WIDTH as usize)).skip(lo.min(WIDTH as usize - 1)) {
            *c = '#';
        }
        let bar: String = bar.into_iter().collect();
        let _ = writeln!(
            out,
            "  {label:<16} |{bar}| {:>8}us @+{}us items={} reranked={}",
            s.dur_us, offset, s.items, s.reranked
        );
    }
    out
}

/// `lightlt query` — one request against a running server.
pub fn query(args: &Args) -> Result<(), String> {
    use std::time::Duration;

    // `--metrics` is shorthand for `--op metrics`.
    let op = if args.flag("metrics") { "metrics" } else { args.get("op").unwrap_or("search") };
    if !matches!(
        op,
        "search" | "upsert" | "delete" | "stats" | "metrics" | "snapshot" | "traces" | "shutdown"
    ) {
        return Err(format!(
            "unknown --op `{op}` (expected \
             search|upsert|delete|stats|metrics|snapshot|traces|shutdown)"
        ));
    }
    let addr = args.require("addr")?;
    let mut client = lt_serve::ServeClient::connect_with_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;

    match op {
        "search" => {
            let vector = parse_vector(args.require("vector")?)?;
            let k: usize = args.get_or("k", 10)?;
            let hits = client.search(&vector, k).map_err(|e| e.to_string())?;
            let mut table = Table::new(format!("top-{k} from {addr}"), &["rank", "id", "score"]);
            for (rank, (id, score)) in hits.iter().enumerate() {
                table.row(&[(rank + 1).to_string(), id.to_string(), format!("{score:+.4}")]);
            }
            println!("{}", table.render());
        }
        "upsert" => {
            let dim: usize = args.get_or("dim", 0)?;
            if dim == 0 {
                return Err("upsert needs --dim".into());
            }
            let rows = parse_vector(args.require("vector")?)?;
            let (start, end) = client.upsert(dim, &rows).map_err(|e| e.to_string())?;
            println!("upserted ids [{start}, {end})");
        }
        "delete" => {
            let id: u64 = args.get_or("id", u64::MAX)?;
            if id == u64::MAX {
                return Err("delete needs --id".into());
            }
            let moved = client.delete(id).map_err(|e| e.to_string())?;
            match moved {
                Some(m) => println!("deleted {id}; item {m} moved into its slot"),
                None => println!("deleted {id}"),
            }
        }
        "stats" => {
            let s = client.stats().map_err(|e| e.to_string())?;
            let mut table = Table::new(format!("server {addr}"), &["property", "value"]);
            table.row(&["items".into(), s.items.to_string()]);
            table.row(&["dim".into(), s.dim.to_string()]);
            table.row(&["codebooks (M)".into(), s.num_codebooks.to_string()]);
            table.row(&["codewords (K)".into(), s.num_codewords.to_string()]);
            table.row(&["epoch".into(), s.epoch.to_string()]);
            table.row(&["searches".into(), s.searches.to_string()]);
            table.row(&["batches".into(), s.batches.to_string()]);
            table.row(&["rejected".into(), s.rejected.to_string()]);
            table.row(&["upserts".into(), s.upserts.to_string()]);
            table.row(&["deletes".into(), s.deletes.to_string()]);
            table.row(&["snapshots".into(), s.snapshots.to_string()]);
            table.row(&["queue length".into(), s.queue_len.to_string()]);
            table.row(&["max queue wait (us)".into(), s.max_queue_wait_us.to_string()]);
            table.row(&["wal seq".into(), s.wal_last_seq.to_string()]);
            // 0 means a pre-sharding server whose payload lacks the field.
            if s.shards > 0 {
                table.row(&["shards".into(), s.shards.to_string()]);
                for (i, n) in s.shard_items.iter().enumerate() {
                    table.row(&[format!("shard {i} items"), n.to_string()]);
                }
            }
            // 0 means routing disabled (or a pre-routing server).
            if s.route_nlist > 0 {
                table.row(&["route nlist".into(), s.route_nlist.to_string()]);
                table.row(&["route nprobe".into(), s.route_nprobe.to_string()]);
            }
            println!("{}", table.render());
        }
        "metrics" => {
            let (version, snapshot) = client.metrics().map_err(|e| e.to_string())?;
            print!("{}", snapshot.render_prometheus());
            if args.flag("check") {
                check_metrics(&snapshot)?;
                println!("# metrics check passed (payload version {version})");
            }
        }
        "snapshot" => {
            let epoch = client.snapshot().map_err(|e| e.to_string())?;
            println!("snapshot written at epoch {epoch}");
        }
        "traces" => {
            let traces = client.traces().map_err(|e| e.to_string())?;
            if traces.is_empty() {
                println!("no traces sampled yet (is tracing enabled on the server?)");
            }
            for t in &traces {
                print!("{}", render_trace(t));
            }
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server acknowledged shutdown");
        }
        _ => unreachable!("op validated above"),
    }
    Ok(())
}

/// `lightlt info` — index statistics.
pub fn info(args: &Args) -> Result<(), String> {
    let idx = load_index(args.require("index")?)?;
    let c = idx.complexity();
    let mut table = Table::new("index", &["property", "value"]);
    table.row(&["items".into(), idx.len().to_string()]);
    table.row(&["codebooks (M)".into(), idx.num_codebooks().to_string()]);
    table.row(&["codewords (K)".into(), idx.num_codewords().to_string()]);
    table.row(&["dimension (d)".into(), idx.dim().to_string()]);
    table.row(&["metric".into(), format!("{:?}", idx.metric())]);
    table.row(&["bits/item".into(), (idx.num_codebooks() * c.bits_per_id()).to_string()]);
    table.row(&["storage bytes".into(), idx.storage_bytes().to_string()]);
    table.row(&["compression".into(), format!("{:.2}x", c.compression_ratio())]);
    table.row(&["theor. speedup".into(), format!("{:.2}x", c.theoretical_speedup())]);
    println!("{}", table.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_parsing_accepts_floats_and_rejects_junk() {
        assert_eq!(parse_vector("0.1,-0.2, 3e-1").unwrap(), vec![0.1, -0.2, 0.3]);
        assert_eq!(parse_vector("1").unwrap(), vec![1.0]);
        assert!(parse_vector("0.1,abc").unwrap_err().contains("abc"));
        // Trailing commas and stray whitespace are tolerated, not panics.
        assert_eq!(parse_vector("0.5, ,1.5,").unwrap(), vec![0.5, 1.5]);
    }

    #[test]
    fn serve_without_index_or_snapshot_is_an_error() {
        let args = Args::parse(["serve".to_string()]).unwrap();
        assert!(serve(&args).unwrap_err().contains("--index"));
    }

    #[test]
    fn backend_flag_parses_all_engine_spellings() {
        use lt_linalg::scan::BackendKind;
        let parse = |argv: &[&str]| {
            let args =
                Args::parse(argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
            parse_backend(&args)
        };
        assert_eq!(parse(&["search"]).unwrap(), BackendKind::F32);
        assert_eq!(parse(&["search", "--backend", "f32"]).unwrap(), BackendKind::F32);
        assert_eq!(
            parse(&["search", "--backend", "u8"]).unwrap(),
            BackendKind::U8 { rerank: None }
        );
        assert_eq!(
            parse(&["search", "--backend", "u8:32"]).unwrap(),
            BackendKind::U8 { rerank: Some(32) }
        );
        // The FromStr error message passes through verbatim.
        assert!(parse(&["search", "--backend", "i4"])
            .unwrap_err()
            .contains("unknown scan backend"));
        assert!(parse(&["search", "--backend", "u8:0"]).is_err());
    }

    #[test]
    fn query_validates_op_and_required_options() {
        // Unknown op is refused before any connection attempt matters;
        // a missing --addr is the first typed error.
        let args = Args::parse(["query".to_string()]).unwrap();
        assert!(query(&args).unwrap_err().contains("--addr"));
        let args = Args::parse(
            ["query".to_string(), "--op".to_string(), "explode".to_string()]
        )
        .unwrap();
        assert!(query(&args).unwrap_err().contains("unknown --op"));
    }
}
