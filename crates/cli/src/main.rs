//! `lightlt` — command-line interface for the LightLT quantization
//! framework.
//!
//! ```text
//! lightlt generate --dataset cifar100 --if 50 --dim 32 --scale 0.1 --out split.ltd
//! lightlt train    --data split.ltd --epochs 30 --ensemble 4 --out model.json
//! lightlt index    --model model.json --data split.ltd --out index.bin
//! lightlt search   --model model.json --index index.bin --data split.ltd --query 0 --k 10
//! lightlt eval     --model model.json --index index.bin --data split.ltd
//! lightlt info     --index index.bin
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
lightlt — lightweight representation quantization for long-tail data

USAGE: lightlt <COMMAND> [OPTIONS]

COMMANDS:
  generate   synthesize a Table-I long-tail retrieval split (.ltd)
             --dataset cifar100|imagenet100|nc|qba  --if 50|100
             [--dim 32] [--scale 0.1] [--seed 7]  --out <file.ltd>
  train      train a LightLT model on a split
             --data <file.ltd>  --out <model.json>
             [--epochs 30] [--ensemble 1] [--codebooks 4] [--codewords 64]
             [--embed-dim 32] [--alpha 0.01] [--gamma 0.99] [--lr 0.005]
             [--seed 17] [--tune-alpha]
             [--checkpoint-dir <dir>] [--resume]
             [--max-retries 3] [--lr-backoff 0.5]
  index      encode a split's database into a binary ADC index
             --model <model.json>  --data <file.ltd>  --out <index.bin>
             [--route <nlist>]  (bake a coarse quantizer into the image:
             writes LTINDEX4 with stored centroids + partition assignments)
  search     run one query against an index
             --model <model.json>  --index <index.bin>  --data <file.ltd>
             [--query 0] [--k 10] [--rerank <shortlist>]
             [--route nlist[:nprobe]]  (non-exhaustive: scan only the
             nprobe partitions nearest the query; default nprobe nlist/8)
  eval       MAP of the indexed database over the split's query set
             --model <model.json>  --index <index.bin>  --data <file.ltd>
             [--route nlist[:nprobe]] [--recall-k 10]  (adds routed
             recall@k vs the exhaustive reference, head/tail quartiles)
  info       print an index's statistics and complexity model
             --index <index.bin>
  serve      serve an index over TCP with micro-batched search
             --index <index.bin>  [--addr 127.0.0.1:7878]
             [--max-batch 16] [--max-delay-us 500] [--queue-cap 1024]
             [--shards 1] [--snapshot <file.snap>] [--snapshot-every-ms 0]
             [--wal-dir <dir>] [--fsync-policy always|group[:N[:US]]|never]
             [--no-metrics] [--route nlist[:nprobe]]
             [--no-trace] [--trace-out <file.json>]
             (per-request span tracing is on by default; --trace-out
              mirrors every completed trace to a Chrome trace_event JSON
              loadable in Perfetto / chrome://tracing)
             (with --snapshot, a valid snapshot file is preferred over
              --index at startup: crash-safe reload. With --wal-dir, every
              upsert/delete is written ahead to a CRC-framed log before
              acknowledgement and startup replays the newest snapshot +
              WAL suffix: acknowledged mutations survive kill -9.
              --shards N splits the index into N modulo-routed shards
              scanned in parallel; results are bitwise-identical at any
              shard count, and snapshots/WALs reload at any other count)
  query      send one request to a running server
             --addr <host:port>
             [--op search|upsert|delete|stats|metrics|snapshot|traces|shutdown]
             search: --vector 0.1,0.2,...  [--k 10]
             upsert: --vector <floats>  --dim D     delete: --id N
             metrics: [--check]  (--metrics is shorthand for --op metrics;
             prints the registry in Prometheus text format; --check exits
             nonzero unless searches > 0, p50 <= p95 <= p99 are finite,
             and the queue-wait/batch-exec histograms are non-empty)
             traces: print the server's tail-sampled traces as per-stage
             waterfalls (slowest-of-window + uniform sample), each tagged
             with the head/tail quartile (tail_q) of its top-1 result

GLOBAL OPTIONS (any command):
  --threads N      worker threads for the parallel kernels (0 = auto from
                   LT_THREADS or the machine). Speed-only: every kernel is
                   bitwise deterministic with respect to the thread count.
  --events <path>  append structured JSONL events (train steps, fault
                   retries, checkpoints, snapshots, LUT builds, scan
                   blocks, batch executions) to <path>.
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match Args::parse(argv) {
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            2
        }
        Ok(args) => match run(&args) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
    };
    std::process::exit(code);
}

fn run(args: &Args) -> Result<(), String> {
    let threads: usize = args.get_or("threads", 0)?;
    if threads > lt_runtime::MAX_THREADS {
        return Err(format!(
            "--threads {threads} exceeds the supported maximum {} (0 = auto)",
            lt_runtime::MAX_THREADS
        ));
    }
    if threads > 0 {
        lt_runtime::set_threads(threads);
    }
    if let Some(path) = args.get("events") {
        lt_obs::init_events(std::path::Path::new(path))
            .map_err(|e| format!("opening --events {path}: {e}"))?;
    }
    let result = dispatch(args);
    // Flush buffered JSONL events on both success and failure so a failed
    // run still leaves its trace on disk.
    lt_obs::flush_events();
    result
}

fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "generate" => commands::generate(args),
        "train" => commands::train(args),
        "index" => commands::index(args),
        "search" => commands::search(args),
        "eval" => commands::eval(args),
        "info" => commands::info(args),
        "serve" => commands::serve(args),
        "query" => commands::query(args),
        "" | "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}
