//! End-to-end tests of the `lightlt` binary: the full
//! generate → train → index → search → eval → info pipeline in a temp
//! directory, plus error-path behavior.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_lightlt")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn lightlt")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lightlt_cli_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_roundtrip() {
    let dir = tmpdir("pipeline");
    let split = dir.join("split.ltd");
    let model = dir.join("model.json");
    let index = dir.join("index.bin");
    let s = split.to_str().unwrap();
    let m = model.to_str().unwrap();
    let i = index.to_str().unwrap();

    let out = run(&[
        "generate", "--dataset", "nc", "--if", "50", "--dim", "16", "--scale", "0.005",
        "--seed", "3", "--out", s,
    ]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));
    assert!(stdout(&out).contains("wrote"), "{}", stdout(&out));

    let out = run(&[
        "train", "--data", s, "--epochs", "6", "--embed-dim", "8", "--codewords", "8",
        "--codebooks", "2", "--ensemble", "1", "--out", m,
    ]);
    assert!(out.status.success(), "train failed: {}", stderr(&out));
    assert!(model.exists());

    let out = run(&["index", "--model", m, "--data", s, "--out", i]);
    assert!(out.status.success(), "index failed: {}", stderr(&out));
    assert!(stdout(&out).contains("compression"));

    let out = run(&["search", "--model", m, "--index", i, "--data", s, "--query", "1", "--k", "3"]);
    assert!(out.status.success(), "search failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("top-3 for query 1"), "{text}");
    // Three result rows.
    assert!(text.lines().filter(|l| l.trim_start().starts_with(['1', '2', '3'])).count() >= 3);

    // Re-ranked search also works.
    let out = run(&[
        "search", "--model", m, "--index", i, "--data", s, "--query", "1", "--k", "3",
        "--rerank", "20",
    ]);
    assert!(out.status.success(), "rerank search failed: {}", stderr(&out));

    let out = run(&["eval", "--model", m, "--index", i, "--data", s]);
    assert!(out.status.success(), "eval failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MAP over"), "{text}");
    assert!(text.contains("head-"), "{text}");

    let out = run(&["info", "--index", i]);
    assert!(out.status.success(), "info failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("codebooks (M)") && text.contains("compression"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_prints_usage() {
    for args in [vec![], vec!["help"], vec!["--help"]] {
        let out = run(&args);
        assert!(out.status.success());
        assert!(stdout(&out).contains("USAGE: lightlt"));
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn missing_required_option_reported() {
    let out = run(&["generate", "--dataset", "nc"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--out"), "{}", stderr(&out));
}

#[test]
fn bad_dataset_name_reported() {
    let out = run(&["generate", "--dataset", "mnist", "--out", "/tmp/x.ltd"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown dataset"));
}

#[test]
fn corrupt_model_file_reported() {
    let dir = tmpdir("corrupt");
    let model = dir.join("model.json");
    std::fs::write(&model, "{not json").unwrap();
    let out = run(&[
        "index", "--model", model.to_str().unwrap(), "--data", "/nonexistent.ltd",
        "--out", "/tmp/never.bin",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("malformed bundle"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degenerate_config_exits_nonzero_naming_the_field() {
    let dir = tmpdir("degenerate");
    let split = dir.join("split.ltd");
    let s = split.to_str().unwrap();
    assert!(run(&[
        "generate", "--dataset", "nc", "--if", "50", "--dim", "12", "--scale", "0.004",
        "--out", s,
    ])
    .status
    .success());
    let out = run(&[
        "train", "--data", s, "--epochs", "2", "--codebooks", "0",
        "--out", dir.join("model.json").to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "degenerate config accepted");
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("num_codebooks"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_training_resumes_to_identical_model() {
    let dir = tmpdir("ckpt");
    let split = dir.join("split.ltd");
    let ckpts = dir.join("checkpoints");
    let model_a = dir.join("a.json");
    let model_b = dir.join("b.json");
    let s = split.to_str().unwrap();
    let c = ckpts.to_str().unwrap();
    assert!(run(&[
        "generate", "--dataset", "nc", "--if", "50", "--dim", "12", "--scale", "0.004",
        "--out", s,
    ])
    .status
    .success());

    // --resume without --checkpoint-dir is rejected up front.
    let out = run(&["train", "--data", s, "--resume", "--out", model_a.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--checkpoint-dir"), "{}", stderr(&out));

    let base = [
        "train", "--data", s, "--epochs", "2", "--embed-dim", "8", "--codewords", "8",
        "--codebooks", "2", "--checkpoint-dir", c,
    ];
    let mut first = base.to_vec();
    first.extend(["--out", model_a.to_str().unwrap()]);
    let out = run(&first);
    assert!(out.status.success(), "checkpointed train failed: {}", stderr(&out));
    assert!(ckpts.join("shared.ckpt").exists(), "no checkpoint written");

    // Same dir without --resume refuses to clobber the previous run.
    let out = run(&first);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--resume"), "{}", stderr(&out));

    // With --resume the completed run is loaded back; the model written
    // must be byte-identical to the first one.
    let mut second = base.to_vec();
    second.extend(["--resume", "--out", model_b.to_str().unwrap()]);
    let out = run(&second);
    assert!(out.status.success(), "resumed train failed: {}", stderr(&out));
    let a = std::fs::read(&model_a).unwrap();
    let b = std::fs::read(&model_b).unwrap();
    assert_eq!(a, b, "resumed model differs from the original");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_out_of_range_reported() {
    let dir = tmpdir("range");
    let split = dir.join("split.ltd");
    let model = dir.join("model.json");
    let index = dir.join("index.bin");
    let s = split.to_str().unwrap();
    let m = model.to_str().unwrap();
    let i = index.to_str().unwrap();
    assert!(run(&[
        "generate", "--dataset", "nc", "--if", "50", "--dim", "12", "--scale", "0.004",
        "--out", s,
    ])
    .status
    .success());
    assert!(run(&[
        "train", "--data", s, "--epochs", "2", "--embed-dim", "8", "--codewords", "8",
        "--codebooks", "2", "--out", m,
    ])
    .status
    .success());
    assert!(run(&["index", "--model", m, "--data", s, "--out", i]).status.success());
    let out = run(&["search", "--model", m, "--index", i, "--data", s, "--query", "99999"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("out of range"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}
